//! Umbrella crate re-exporting the full TCRM public API.
pub use tcrm_baselines as baselines;
pub use tcrm_core as core;
pub use tcrm_nn as nn;
pub use tcrm_rl as rl;
pub use tcrm_serve as serve;
pub use tcrm_sim as sim;
pub use tcrm_workload as workload;
