#!/usr/bin/env bash
# Run the Criterion bench suite and commit-ready perf snapshot.
#
# Each benchmark emits one JSON line ({"name", "median_ns", "min_ns",
# "max_ns", "samples"}) into a temp file via the CRITERION_MINI_JSON hook of
# the vendored criterion harness; this script wraps the lines into a single
# JSON document with host metadata and writes BENCH_<hostname>.json at the
# repo root. Committing successive snapshots from the same machine gives a
# perf trajectory across PRs.
#
# With --diff-against FILE the fresh run is additionally compared to the
# committed snapshot FILE: any gated entry (nn_forward/, nn_kernels/,
# decision_latency/, sim_scale/, train_throughput/, serve_latency/,
# serve_scale/, ipc_ring/) whose median regresses by more than
# --max-regress percent (default 25) fails the script. The comparison only makes sense
# between runs on the same machine, so it is skipped (with a warning) when
# FILE's host differs from this one — which lets CI wire the invocation
# unconditionally while only dedicated runners enforce it.
#
# Usage:
#   scripts/bench_snapshot.sh                 # full suite
#   scripts/bench_snapshot.sh nn_forward ...  # selected benches
#   scripts/bench_snapshot.sh --diff-against BENCH_vm.json nn_forward
#   scripts/bench_snapshot.sh --diff-against BENCH_vm.json --max-regress 25
#
# The nn benches depend on the kernel backend; set TCRM_KERNEL=scalar|simd
# to pin it (the snapshot records the setting, "auto" when unset).

set -euo pipefail
cd "$(dirname "$0")/.."

DIFF_AGAINST=""
MAX_REGRESS=25
BENCHES=()
while [ $# -gt 0 ]; do
    case "$1" in
        --diff-against)
            [ $# -ge 2 ] || { echo "usage: --diff-against <snapshot.json>" >&2; exit 2; }
            DIFF_AGAINST="$2"
            shift 2
            ;;
        --max-regress)
            [ $# -ge 2 ] || { echo "usage: --max-regress <percent>" >&2; exit 2; }
            MAX_REGRESS="$2"
            shift 2
            ;;
        *)
            BENCHES+=("$1")
            shift
            ;;
    esac
done
if [ ${#BENCHES[@]} -eq 0 ]; then
    BENCHES=(nn_forward training_step train_throughput decision_latency sim_engine sim_scale workload_gen extended_schedulers serve_latency serve_scale ipc_ring)
fi

LINES_FILE="$(mktemp)"
BASELINE_FILE="$(mktemp)"
trap 'rm -f "$LINES_FILE" "$BASELINE_FILE"' EXIT
export CRITERION_MINI_JSON="$LINES_FILE"

# Preserve the baseline before the run: the fresh snapshot overwrites
# BENCH_<host>.json, which is typically the very file being diffed against.
if [ -n "$DIFF_AGAINST" ] && [ -f "$DIFF_AGAINST" ]; then
    cp "$DIFF_AGAINST" "$BASELINE_FILE"
fi

for bench in "${BENCHES[@]}"; do
    echo "== running bench: $bench"
    cargo bench -p tcrm-bench --bench "$bench"
done

HOST="$(hostname -s 2>/dev/null || echo unknown)"
OUT="BENCH_${HOST}.json"
{
    echo '{'
    echo "  \"host\": \"${HOST}\","
    echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
    echo "  \"rustc\": \"$(rustc --version)\","
    echo "  \"kernel\": \"${TCRM_KERNEL:-auto}\","
    echo '  "results": ['
    sed 's/^/    /;$!s/$/,/' "$LINES_FILE"
    echo '  ]'
    echo '}'
} > "$OUT"

echo "wrote $OUT ($(grep -c median_ns "$OUT") benchmarks)"

if [ -n "$DIFF_AGAINST" ]; then
    if [ ! -s "$BASELINE_FILE" ]; then
        echo "diff: baseline $DIFF_AGAINST not found, skipping" >&2
        exit 0
    fi
    BASE_HOST="$(sed -n 's/.*"host": "\([^"]*\)".*/\1/p' "$BASELINE_FILE" | head -1)"
    if [ "$BASE_HOST" != "$HOST" ]; then
        echo "diff: baseline host '$BASE_HOST' != this host '$HOST'," \
             "cross-machine medians are not comparable — skipping" >&2
        exit 0
    fi
    # The nn medians also depend on the kernel backend: comparing a scalar
    # run against a simd baseline (or vice versa) would report a bogus
    # "regression" — or mask a real one. Old snapshots without the field
    # predate the backend split and are treated as "auto".
    BASE_KERNEL="$(sed -n 's/.*"kernel": "\([^"]*\)".*/\1/p' "$BASELINE_FILE" | head -1)"
    if [ "${BASE_KERNEL:-auto}" != "${TCRM_KERNEL:-auto}" ]; then
        echo "diff: baseline kernel backend '${BASE_KERNEL:-auto}' !=" \
             "this run's '${TCRM_KERNEL:-auto}' — skipping" >&2
        exit 0
    fi
    echo "== diffing gated medians against $DIFF_AGAINST (fail > ${MAX_REGRESS}%)"
    # Both files hold one {"name":...,"median_ns":...} object per line.
    awk -v max="$MAX_REGRESS" '
        /"name":/ {
            line = $0
            gsub(/.*"name":"/, "", line); name = line; gsub(/".*/, "", name)
            line = $0
            gsub(/.*"median_ns":/, "", line); gsub(/[,}].*/, "", line)
            if (name !~ /^(nn_forward|nn_kernels|decision_latency|sim_scale|train_throughput|serve_latency|serve_scale|ipc_ring)\//) next
            if (NR == FNR) { base[name] = line + 0; next }
            if (!(name in base) || base[name] <= 0) next
            pct = (line / base[name] - 1) * 100
            printf "  %-55s %12.1f -> %12.1f ns  (%+.1f%%)\n", name, base[name], line, pct
            if (pct > max) { bad++ }
        }
        END {
            if (bad > 0) { printf "%d benchmark(s) regressed more than %s%%\n", bad, max; exit 1 }
        }
    ' "$BASELINE_FILE" "$OUT"
    echo "diff: no regression beyond ${MAX_REGRESS}%"
fi
