#!/usr/bin/env bash
# Run the Criterion bench suite and commit-ready perf snapshot.
#
# Each benchmark emits one JSON line ({"name", "median_ns", "min_ns",
# "max_ns", "samples"}) into a temp file via the CRITERION_MINI_JSON hook of
# the vendored criterion harness; this script wraps the lines into a single
# JSON document with host metadata and writes BENCH_<hostname>.json at the
# repo root. Committing successive snapshots from the same machine gives a
# perf trajectory across PRs.
#
# Usage:
#   scripts/bench_snapshot.sh                 # full suite
#   scripts/bench_snapshot.sh nn_forward ...  # selected benches

set -euo pipefail
cd "$(dirname "$0")/.."

BENCHES=("$@")
if [ ${#BENCHES[@]} -eq 0 ]; then
    BENCHES=(nn_forward training_step decision_latency sim_engine workload_gen extended_schedulers)
fi

LINES_FILE="$(mktemp)"
trap 'rm -f "$LINES_FILE"' EXIT
export CRITERION_MINI_JSON="$LINES_FILE"

for bench in "${BENCHES[@]}"; do
    echo "== running bench: $bench"
    cargo bench -p tcrm-bench --bench "$bench"
done

HOST="$(hostname -s 2>/dev/null || echo unknown)"
OUT="BENCH_${HOST}.json"
{
    echo '{'
    echo "  \"host\": \"${HOST}\","
    echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
    echo "  \"rustc\": \"$(rustc --version)\","
    echo '  "results": ['
    sed 's/^/    /;$!s/$/,/' "$LINES_FILE"
    echo '  ]'
    echo '}'
} > "$OUT"

echo "wrote $OUT ($(grep -c median_ns "$OUT") benchmarks)"
