//! Energy and fairness accounting: run the same time-critical workload under
//! several schedulers and compare (besides deadline misses) the estimated
//! electrical energy the cluster spent and how evenly the queueing pain was
//! spread over jobs (Jain fairness of slowdowns).
//!
//! ```text
//! cargo run --release --example energy_and_fairness
//! ```

use tcrm::baselines::{
    EasyBackfillScheduler, EdfScheduler, FifoScheduler, GreedyElasticScheduler, TetrisScheduler,
};
use tcrm::sim::{ClusterSpec, EnergyReport, Scheduler, SimConfig, Simulator, Summary};
use tcrm::workload::{SyntheticSource, WorkloadSpec};

fn run(
    name: &str,
    scheduler: &mut dyn Scheduler,
    cluster: &ClusterSpec,
    seed: u64,
) -> (Summary, EnergyReport) {
    let workload = WorkloadSpec::icpp_default()
        .with_num_jobs(250)
        .with_load(0.9);
    let jobs = SyntheticSource::new(&workload, cluster, seed)
        .expect("valid workload spec")
        .collect();
    let result = Simulator::new(cluster.clone(), SimConfig::default()).run(jobs, scheduler);
    let energy = result
        .trace
        .energy_report(cluster, result.summary.completed_jobs);
    println!(
        "{name:<16} miss {:>5.1}%   utility {:>4.2}   fairness {:>4.2}   energy {:>6.2} kWh   {:>6.1} kJ/job",
        result.summary.miss_rate * 100.0,
        result.summary.utility_ratio,
        result.summary.slowdown_fairness,
        energy.total_kwh,
        energy.joules_per_completed_job / 1000.0
    );
    (result.summary, energy)
}

fn main() {
    let cluster = ClusterSpec::icpp_default();
    println!(
        "Energy & fairness on {} nodes ({} classes), 250 jobs at offered load 0.9\n",
        cluster.num_nodes(),
        cluster.num_classes()
    );
    println!(
        "{:<16} {:>11}   {:>12}   {:>13}   {:>15}   {:>10}",
        "scheduler", "miss rate", "utility", "fairness", "energy", "energy/job"
    );

    let seed = 7;
    let results = [
        (
            "fifo",
            run("fifo", &mut FifoScheduler::new(), &cluster, seed),
        ),
        ("edf", run("edf", &mut EdfScheduler::new(), &cluster, seed)),
        (
            "greedy-elastic",
            run(
                "greedy-elastic",
                &mut GreedyElasticScheduler::new(),
                &cluster,
                seed,
            ),
        ),
        (
            "backfill",
            run(
                "backfill",
                &mut EasyBackfillScheduler::new(),
                &cluster,
                seed,
            ),
        ),
        (
            "tetris",
            run("tetris", &mut TetrisScheduler::new(), &cluster, seed),
        ),
    ];

    // Per-class energy breakdown for the best deadline-aware scheduler.
    let best = results
        .iter()
        .min_by(|a, b| {
            a.1 .0
                .miss_rate
                .partial_cmp(&b.1 .0.miss_rate)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("at least one scheduler ran");
    println!(
        "\nPer-class energy breakdown for the lowest-miss scheduler ({}):",
        best.0
    );
    for (class, joules) in cluster
        .node_classes
        .iter()
        .zip(best.1 .1.per_class_joules.iter())
    {
        println!(
            "  {:<12} {:>8.2} kWh  ({} × {:.0}–{:.0} W machines)",
            class.name,
            joules / 3.6e6,
            class.count,
            class.power.idle_watts,
            class.power.peak_watts
        );
    }
    println!(
        "\nIdle machines still draw idle power, so finishing the same jobs sooner (or on the\nright node class) shows up directly as fewer joules per completed job."
    );
}
