//! Domain scenario: heterogeneity-aware placement of an ML-training-heavy
//! workload.
//!
//! GPU nodes run ML training 6× faster than CPU nodes in the default cluster.
//! A scheduler that places by speed (EDF's best-class rule) meets far more
//! deadlines than one that only balances load and ignores the speed profile
//! (least-loaded). The same contrast is what the heterogeneity ablation
//! (Figure 7) measures for the DRL agent's class-aware vs class-blind state.
//!
//! ```text
//! cargo run --release --example heterogeneous_placement
//! ```

use tcrm::baselines::{EdfScheduler, LeastLoadedScheduler, TetrisScheduler};
use tcrm::sim::{ClusterSpec, JobClass, Scheduler, SimConfig, Simulator};
use tcrm::workload::{SyntheticSource, WorkloadSpec};

fn ml_heavy_workload() -> WorkloadSpec {
    let mut spec = WorkloadSpec::icpp_default();
    for class in &mut spec.classes {
        class.weight = match class.class {
            JobClass::MlTraining => 0.5,
            JobClass::MlInference => 0.2,
            JobClass::Batch => 0.2,
            JobClass::Stream => 0.1,
        };
    }
    spec.with_num_jobs(300).with_load(0.9).with_slack(1.5, 3.0)
}

fn run(name: &str, scheduler: &mut dyn Scheduler, cluster: &ClusterSpec) {
    let jobs = SyntheticSource::new(&ml_heavy_workload(), cluster, 11)
        .expect("valid workload spec")
        .collect();
    let result = Simulator::new(cluster.clone(), SimConfig::default()).run(jobs, scheduler);
    let s = &result.summary;
    println!(
        "{name:<16} miss {:>5.1}%  (ml-train {:>5.1}%)  mean wait {:>6.1}s  utilisation {:>4.2}",
        s.miss_rate * 100.0,
        s.per_class_miss_rate[JobClass::MlTraining.index()] * 100.0,
        s.mean_wait,
        s.mean_utilization
    );
}

fn main() {
    let hetero = ClusterSpec::icpp_default();
    println!("== Heterogeneous cluster (GPU nodes accelerate ML 6x) ==");
    run("edf", &mut EdfScheduler::new(), &hetero);
    run("tetris", &mut TetrisScheduler::new(), &hetero);
    run("least-loaded", &mut LeastLoadedScheduler::new(), &hetero);

    let homog = hetero.homogenized();
    println!("\n== Homogenised cluster (same aggregate capacity, no speed-ups) ==");
    run("edf", &mut EdfScheduler::new(), &homog);
    run("least-loaded", &mut LeastLoadedScheduler::new(), &homog);

    println!(
        "\nExpected shape: on the heterogeneous cluster the speed-aware placement (EDF)\nbeats load balancing; on the homogenised cluster the gap collapses."
    );
}
