//! Extended heuristic shoot-out: every baseline this repository ships
//! (including the EASY-backfill, HEFT and slack-pack schedulers that go
//! beyond the paper's comparison set) on a bursty, deadline-heavy workload.
//!
//! ```text
//! cargo run --release --example extended_heuristics
//! ```

use tcrm::baselines::{all_baseline_names, by_name};
use tcrm::sim::{ClusterSpec, SimConfig, Simulator, Summary};
use tcrm::workload::{ArrivalProcess, SyntheticSource, WorkloadSpec};

struct Row {
    name: &'static str,
    summary: Summary,
}

fn main() {
    let cluster = ClusterSpec::icpp_default();
    // A bursty arrival process with tight deadlines: the regime where
    // deadline awareness, packing quality and elasticity all matter at once.
    let mut workload = WorkloadSpec::icpp_default()
        .with_num_jobs(300)
        .with_load(1.0);
    workload.arrivals = ArrivalProcess::Bursty {
        burst_factor: 4.0,
        burst_period: 60.0,
    };
    workload.deadlines.slack_min = 1.3;
    workload.deadlines.slack_max = 2.5;

    println!(
        "Extended heuristic comparison: {} jobs, bursty arrivals, tight deadlines, {} nodes\n",
        workload.num_jobs,
        cluster.num_nodes()
    );

    let seeds = [11u64, 12, 13];
    let mut rows: Vec<Row> = Vec::new();
    for name in all_baseline_names() {
        // Average the headline metrics over a few seeds per scheduler.
        let mut summaries = Vec::new();
        for &seed in &seeds {
            let jobs = SyntheticSource::new(&workload, &cluster, seed)
                .expect("valid workload spec")
                .collect();
            let mut scheduler = by_name(name, seed).expect("known baseline");
            let result =
                Simulator::new(cluster.clone(), SimConfig::default()).run(jobs, &mut *scheduler);
            summaries.push(result.summary);
        }
        let mut mean = summaries[0].clone();
        let n = summaries.len() as f64;
        mean.miss_rate = summaries.iter().map(|s| s.miss_rate).sum::<f64>() / n;
        mean.mean_slowdown = summaries.iter().map(|s| s.mean_slowdown).sum::<f64>() / n;
        mean.utility_ratio = summaries.iter().map(|s| s.utility_ratio).sum::<f64>() / n;
        mean.mean_utilization = summaries.iter().map(|s| s.mean_utilization).sum::<f64>() / n;
        mean.slowdown_fairness = summaries.iter().map(|s| s.slowdown_fairness).sum::<f64>() / n;
        rows.push(Row {
            name,
            summary: mean,
        });
    }

    rows.sort_by(|a, b| {
        a.summary
            .miss_rate
            .partial_cmp(&b.summary.miss_rate)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    println!(
        "{:<16} {:>10} {:>12} {:>10} {:>12} {:>10}",
        "scheduler", "miss rate", "slowdown", "utility", "utilisation", "fairness"
    );
    for row in &rows {
        println!(
            "{:<16} {:>9.1}% {:>12.2} {:>10.2} {:>12.2} {:>10.2}",
            row.name,
            row.summary.miss_rate * 100.0,
            row.summary.mean_slowdown,
            row.summary.utility_ratio,
            row.summary.mean_utilization,
            row.summary.slowdown_fairness
        );
    }

    println!(
        "\nDeadline-aware heuristics (edf, greedy-elastic, backfill, heft, slack-pack) should\nsit at the top of this table, and the deadline-blind packing/ordering policies (fifo,\nsjf, tetris, least-loaded, random) at the bottom — the same ordering the paper-style\ncomparison tables (table2/table5 in the benchmark harness) report."
    );
}
