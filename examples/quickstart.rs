//! Quickstart: simulate a small time-critical workload on the default
//! heterogeneous cluster under three schedulers (FIFO, EDF, a fresh DRL
//! agent) and print the headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tcrm::baselines::{EdfScheduler, FifoScheduler};
use tcrm::core::{ActionSpace, AgentConfig, DrlScheduler, StateEncoder};
use tcrm::rl::CategoricalPolicy;
use tcrm::sim::{ClusterSpec, Scheduler, SimConfig, Simulator, Summary};
use tcrm::workload::{SyntheticSource, WorkloadSpec};

fn run(name: &str, scheduler: &mut dyn Scheduler, cluster: &ClusterSpec) -> Summary {
    let workload = WorkloadSpec::icpp_default()
        .with_num_jobs(200)
        .with_load(0.9);
    let jobs = SyntheticSource::new(&workload, cluster, 42)
        .expect("valid workload spec")
        .collect();
    let result = Simulator::new(cluster.clone(), SimConfig::default()).run(jobs, scheduler);
    println!(
        "{name:<12} miss rate {:>5.1}%   mean slowdown {:>5.2}   utility ratio {:>4.2}   utilisation {:>4.2}",
        result.summary.miss_rate * 100.0,
        result.summary.mean_slowdown,
        result.summary.utility_ratio,
        result.summary.mean_utilization
    );
    result.summary
}

fn main() {
    let cluster = ClusterSpec::icpp_default();
    println!(
        "Cluster: {} nodes in {} classes; 200 jobs at offered load 0.9\n",
        cluster.num_nodes(),
        cluster.num_classes()
    );

    run("fifo", &mut FifoScheduler::new(), &cluster);
    run("edf", &mut EdfScheduler::new(), &cluster);

    // An untrained DRL agent (random-ish policy) — see the
    // `train_and_evaluate` example for actual training.
    let config = AgentConfig::default();
    let encoder = StateEncoder::new(&config, cluster.num_classes());
    let actions = ActionSpace::new(&config, cluster.num_classes());
    let policy = CategoricalPolicy::new(
        encoder.observation_dim(),
        &config.policy_hidden,
        actions.action_count(),
        0,
    );
    let mut agent = DrlScheduler::new(policy, config, cluster.num_classes()).with_name("drl-fresh");
    run("drl (fresh)", &mut agent, &cluster);

    println!("\nTrain a real agent with: cargo run --release --example train_and_evaluate");
}
