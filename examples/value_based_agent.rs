//! Value-based control ablation: train a DQN agent (experience replay, target
//! network, masked ε-greedy) directly on the scheduling environment and watch
//! its episode return improve over the random-policy level.
//!
//! The paper-style agent is a policy-gradient learner (see
//! `train_and_evaluate`); this example demonstrates that the RL substrate is
//! algorithm-agnostic — the same `SchedulingEnv` drives a Q-learning agent
//! without any changes to the environment.
//!
//! ```text
//! cargo run --release --example value_based_agent
//! ```

use tcrm::core::{AgentConfig, EpisodeSource, SchedulingEnv};
use tcrm::rl::{DqnAgent, DqnConfig, Environment};
use tcrm::sim::{ClusterSpec, SimConfig};
use tcrm::workload::WorkloadSpec;

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

fn main() {
    let cluster = ClusterSpec::icpp_default();
    let agent_config = AgentConfig::default();
    let workload = WorkloadSpec::icpp_default().with_load(0.9);

    let mut env = SchedulingEnv::new(
        cluster.clone(),
        SimConfig::default(),
        &agent_config,
        EpisodeSource::Generated {
            spec: workload,
            jobs_per_episode: 25,
        },
    );
    let obs_dim = env.observation_dim();
    let action_count = env.action_count();
    println!(
        "Scheduling environment: {}-dimensional observations, {} discrete actions\n",
        obs_dim, action_count
    );

    let dqn_config = DqnConfig {
        buffer_capacity: 50_000,
        batch_size: 64,
        warmup: 512,
        target_sync_interval: 250,
        epsilon_decay_steps: 8_000,
        learning_rate: 5e-4,
        ..DqnConfig::default()
    };
    let mut agent = DqnAgent::new(obs_dim, action_count, &[128, 64], 17, dqn_config);

    // Baseline: the greedy policy of the untrained Q-network.
    let before: Vec<f64> = (0..5)
        .map(|s| agent.run_episode(&mut env, 1_000 + s, false))
        .collect();
    println!(
        "untrained greedy return over 5 evaluation episodes: {:.2}",
        mean(&before)
    );

    // Train for a modest number of episodes (minutes-scale on a laptop).
    let episodes = 60;
    println!("training for {episodes} episodes …");
    let returns = agent.train(&mut env, episodes, 42);
    for chunk in returns.chunks(10).enumerate().map(|(i, c)| (i, mean(c))) {
        println!(
            "  episodes {:>3}–{:>3}: mean return {:>7.2}   ε = {:.2}   replay = {} transitions",
            chunk.0 * 10,
            chunk.0 * 10 + 9,
            chunk.1,
            agent.epsilon(),
            agent.replay_len()
        );
    }

    let after: Vec<f64> = (0..5)
        .map(|s| agent.run_episode(&mut env, 1_000 + s, false))
        .collect();
    println!(
        "\ntrained greedy return over the same 5 evaluation episodes: {:.2} (was {:.2})",
        mean(&after),
        mean(&before)
    );
    println!(
        "gradient steps: {}   final exploration rate: {:.2}",
        agent.updates(),
        agent.epsilon()
    );
    println!(
        "\nThe policy-gradient agent remains the headline learner of the reproduction; this\nexample shows the value-based ablation point the DeepRM/Decima lineage usually reports."
    );
}
