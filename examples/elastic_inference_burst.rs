//! Domain scenario: a latency-critical ML-inference service sharing the
//! cluster with background batch analytics, under bursty arrivals.
//!
//! The inference jobs are small, elastic and carry tight deadlines; the batch
//! jobs are large and loosely constrained. The scenario demonstrates why
//! elasticity-compatible scheduling matters: the elastic heuristic (and the
//! DRL agent's action space) can shrink background jobs during bursts and
//! grow urgent jobs to catch their deadlines, which a rigid scheduler cannot.
//!
//! ```text
//! cargo run --release --example elastic_inference_burst
//! ```

use tcrm::baselines::{EdfScheduler, GreedyElasticScheduler, RigidAdapter};
use tcrm::sim::{ClusterSpec, Scheduler, SimConfig, Simulator};
use tcrm::workload::{ArrivalProcess, SyntheticSource, WorkloadSpec};

fn scenario_workload() -> WorkloadSpec {
    let mut spec = WorkloadSpec::icpp_default();
    // Emphasise the two classes the scenario is about: inference (45%) and
    // batch (40%), plus some stream traffic.
    for class in &mut spec.classes {
        class.weight = match class.class {
            tcrm::sim::JobClass::MlInference => 0.45,
            tcrm::sim::JobClass::Batch => 0.40,
            tcrm::sim::JobClass::Stream => 0.15,
            tcrm::sim::JobClass::MlTraining => 0.0,
        };
    }
    spec.with_num_jobs(400)
        .with_load(1.0)
        .with_slack(1.3, 2.5)
        .with_arrivals(ArrivalProcess::Bursty {
            burst_factor: 5.0,
            burst_period: 90.0,
        })
}

fn run(name: &str, scheduler: &mut dyn Scheduler) {
    let cluster = ClusterSpec::icpp_default();
    let jobs = SyntheticSource::new(&scenario_workload(), &cluster, 7)
        .expect("valid workload spec")
        .collect();
    let result = Simulator::new(cluster, SimConfig::default()).run(jobs, scheduler);
    let s = &result.summary;
    println!(
        "{name:<24} miss {:>5.1}%  (ml-infer {:>5.1}%, batch {:>5.1}%)  p95 slowdown {:>6.2}  scale ops {:>4}",
        s.miss_rate * 100.0,
        s.per_class_miss_rate[tcrm::sim::JobClass::MlInference.index()] * 100.0,
        s.per_class_miss_rate[tcrm::sim::JobClass::Batch.index()] * 100.0,
        s.p95_slowdown,
        s.scale_events
    );
}

fn main() {
    println!("Bursty ML-inference + batch analytics, offered load 1.0, tight deadlines\n");
    run("edf (rigid starts)", &mut EdfScheduler::new());
    run("greedy-elastic", &mut GreedyElasticScheduler::new());
    run(
        "greedy-elastic-rigid",
        &mut RigidAdapter::new(GreedyElasticScheduler::new()),
    );
    println!(
        "\nExpected shape: the elastic scheduler misses markedly fewer inference deadlines\nthan its rigid twin, at the cost of extra re-scaling operations."
    );
}
