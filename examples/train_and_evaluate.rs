//! Train the DRL scheduler on the default heterogeneous cluster, then
//! evaluate it head-to-head against the strongest heuristics on workloads it
//! has never seen, and save a checkpoint.
//!
//! ```text
//! cargo run --release --example train_and_evaluate            # moderate run (~minutes)
//! cargo run --release --example train_and_evaluate -- --smoke # seconds, for CI
//! ```

use tcrm::baselines::{EdfScheduler, GreedyElasticScheduler};
use tcrm::core::{train_agent, TrainSetup};
use tcrm::sim::{Scheduler, SimConfig, Simulator, Summary};
use tcrm::workload::SyntheticSource;

fn evaluate(name: &str, scheduler: &mut dyn Scheduler, setup: &TrainSetup, seed: u64) -> Summary {
    let workload = setup.workload.clone().with_num_jobs(300).with_load(1.0);
    let jobs = SyntheticSource::new(&workload, &setup.cluster, seed)
        .expect("valid workload spec")
        .collect();
    let result = Simulator::new(setup.cluster.clone(), SimConfig::default()).run(jobs, scheduler);
    println!(
        "  {name:<16} miss {:>5.1}%   slowdown {:>5.2}   utility {:>4.2}",
        result.summary.miss_rate * 100.0,
        result.summary.mean_slowdown,
        result.summary.utility_ratio
    );
    result.summary
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut setup = TrainSetup::icpp_default();
    if smoke {
        setup.train.iterations = 10;
        setup.train.episodes_per_iteration = 2;
        setup.train.jobs_per_episode = 15;
    } else {
        setup.train.iterations = 200;
        setup.train.episodes_per_iteration = 6;
        setup.train.jobs_per_episode = 40;
    }

    println!(
        "Training the DRL agent ({} iterations × {} episodes × {} jobs)…",
        setup.train.iterations, setup.train.episodes_per_iteration, setup.train.jobs_per_episode
    );
    let outcome = train_agent(&setup);
    let first = outcome
        .history
        .iterations
        .first()
        .map(|s| s.mean_return)
        .unwrap_or(0.0);
    println!(
        "Training done. Episode return: first iteration {:.2}, last-5 mean {:.2}, best {:.2}\n",
        first,
        outcome.history.final_mean_return(5),
        outcome.history.best_mean_return()
    );

    let ckpt = std::env::temp_dir().join("tcrm-quickstart-agent.json");
    if outcome.agent.save(&ckpt).is_ok() {
        println!("Checkpoint written to {}", ckpt.display());
    }

    println!("\nEvaluation on unseen workloads (load 1.0, 300 jobs):");
    let mut agent = outcome.agent;
    for seed in [1000u64, 1001, 1002] {
        println!("seed {seed}:");
        evaluate("drl (trained)", &mut agent, &setup, seed);
        evaluate("edf", &mut EdfScheduler::new(), &setup, seed);
        evaluate(
            "greedy-elastic",
            &mut GreedyElasticScheduler::new(),
            &setup,
            seed,
        );
    }
}
