//! Cross-crate property-based tests (proptest): safety invariants that must
//! hold for arbitrary workloads and arbitrary (feasible) scheduling
//! decisions.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcrm::baselines::by_name;
use tcrm::sim::{
    Action, ClusterSpec, Job, JobClass, JobId, NodeClassId, ResourceVector, SimConfig, Simulator,
    SpeedupModel, TimeUtility,
};
use tcrm::workload::{SyntheticSource, WorkloadSpec};

/// Strategy: a structurally valid random job.
fn arb_job(id: u64) -> impl Strategy<Value = Job> {
    (
        0.0f64..200.0,   // arrival
        1.0f64..300.0,   // work
        1u32..4,         // min parallelism
        0u32..8,         // extra parallelism
        0.5f64..8.0,     // cpu per unit
        1.0f64..32.0,    // mem per unit
        prop::bool::ANY, // uses gpu
        1.1f64..5.0,     // deadline slack multiplier
        prop::sample::select(vec![
            JobClass::Batch,
            JobClass::Stream,
            JobClass::MlTraining,
            JobClass::MlInference,
        ]),
        prop::bool::ANY, // malleable
    )
        .prop_map(
            move |(arrival, work, min_p, extra_p, cpu, mem, gpu, slack, class, malleable)| {
                let demand = ResourceVector::of(cpu, mem, if gpu { 0.5 } else { 0.0 }, 0.5);
                Job::builder(JobId(id), class)
                    .arrival(arrival)
                    .total_work(work)
                    .demand_per_unit(demand)
                    .parallelism_range(min_p, min_p + extra_p)
                    .speedup(SpeedupModel::Amdahl {
                        serial_fraction: 0.1,
                    })
                    .deadline(arrival + slack * work)
                    .utility(TimeUtility::soft(1.0, 0.5))
                    .malleable(malleable)
                    .build()
            },
        )
}

fn arb_jobs(max: usize) -> impl Strategy<Value = Vec<Job>> {
    prop::collection::vec(any::<u8>(), 1..max).prop_flat_map(|seeds| {
        seeds
            .into_iter()
            .enumerate()
            .map(|(i, _)| arb_job(i as u64))
            .collect::<Vec<_>>()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the jobs look like, running EDF never loses a job, never
    /// exceeds capacity, and produces bounded metrics.
    #[test]
    fn edf_is_safe_on_arbitrary_jobs(jobs in arb_jobs(24)) {
        let total = jobs.len();
        let mut scheduler = by_name("edf", 0).unwrap();
        let result = Simulator::new(ClusterSpec::icpp_default(), SimConfig::default())
            .run(jobs, &mut scheduler);
        prop_assert_eq!(result.summary.total_jobs, total);
        prop_assert_eq!(
            result.summary.completed_jobs + result.summary.unfinished_jobs,
            total
        );
        prop_assert!(result.summary.miss_rate >= 0.0 && result.summary.miss_rate <= 1.0);
        prop_assert!(result.summary.mean_utilization <= 1.0 + 1e-9);
        for job in &result.completed {
            prop_assert!(job.finish >= job.start);
            prop_assert!(job.start + 1e-9 >= job.arrival);
            prop_assert!(job.slowdown > 0.0 && job.slowdown.is_finite());
            prop_assert!(job.utility <= job.max_utility + 1e-9);
        }
    }

    /// The engine rejects every infeasible action and never lets the cluster
    /// exceed its capacity, even under adversarial random action streams.
    #[test]
    fn random_action_streams_never_violate_capacity(seed in 0u64..500) {
        let cluster = ClusterSpec::icpp_default();
        let workload = WorkloadSpec::icpp_default().with_num_jobs(20).with_load(1.2);
        let jobs = SyntheticSource::new(&workload, &cluster, seed)
        .expect("valid workload spec")
        .collect();
        let mut sim = Simulator::new(cluster, SimConfig::default());
        sim.start(jobs);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut guard = 0;
        while sim.advance() {
            guard += 1;
            if guard > 3000 {
                break;
            }
            // Issue a handful of random (often nonsensical) actions.
            for _ in 0..4 {
                let view = sim.view();
                let action = match rng.gen_range(0..3) {
                    0 => {
                        let job = view
                            .pending
                            .get(rng.gen_range(0..view.pending.len().max(1)).min(view.pending.len().saturating_sub(1)))
                            .map(|j| j.id)
                            .unwrap_or(JobId(9999));
                        Action::Start {
                            job,
                            class: NodeClassId(rng.gen_range(0..5)),
                            parallelism: rng.gen_range(0..20),
                        }
                    }
                    1 => {
                        let job = view
                            .running
                            .get(rng.gen_range(0..view.running.len().max(1)).min(view.running.len().saturating_sub(1)))
                            .map(|j| j.id)
                            .unwrap_or(JobId(9999));
                        Action::Scale {
                            job,
                            new_parallelism: rng.gen_range(0..20),
                        }
                    }
                    _ => Action::Wait,
                };
                let _ = sim.apply(&action);
                prop_assert!(sim.cluster().check_invariants().is_ok());
            }
        }
        let result = sim.finalize();
        prop_assert!(result.summary.mean_utilization <= 1.0 + 1e-9);
    }

    /// Generated workloads always satisfy the structural invariants the
    /// simulator relies on.
    #[test]
    fn generated_workloads_are_structurally_valid(seed in 0u64..1000, load in 0.2f64..1.5, jobs in 5usize..80) {
        let cluster = ClusterSpec::icpp_default();
        let spec = WorkloadSpec::icpp_default().with_num_jobs(jobs).with_load(load);
        let generated: Vec<_> = SyntheticSource::new(&spec, &cluster, seed)
        .expect("valid workload spec")
        .collect();
        prop_assert_eq!(generated.len(), jobs);
        for (i, job) in generated.iter().enumerate() {
            prop_assert!(job.validate().is_ok());
            prop_assert_eq!(job.id, JobId(i as u64));
            prop_assert!(job.deadline > job.arrival);
            prop_assert!(job.min_parallelism >= 1);
            prop_assert!(job.max_parallelism >= job.min_parallelism);
        }
        prop_assert!(generated.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }
}
