//! Integration tests for the extensions beyond the paper's headline
//! comparison set: the EASY-backfill / HEFT / slack-pack heuristics, the
//! energy and fairness accounting, and the value-based (DQN) learner running
//! on the real scheduling environment.

use tcrm::baselines::{by_name, EXTENDED_BASELINE_NAMES};
use tcrm::core::{AgentConfig, EpisodeSource, SchedulingEnv};
use tcrm::rl::{DqnAgent, DqnConfig, Environment};
use tcrm::sim::{ClusterSpec, SimConfig, SimulationResult, Simulator};
use tcrm::workload::{SyntheticSource, WorkloadSpec};

fn run_baseline(name: &str, load: f64, seed: u64, jobs: usize) -> SimulationResult {
    let cluster = ClusterSpec::icpp_default();
    let workload = WorkloadSpec::icpp_default()
        .with_num_jobs(jobs)
        .with_load(load);
    let job_list = SyntheticSource::new(&workload, &cluster, seed)
        .expect("valid workload spec")
        .collect();
    let mut scheduler = by_name(name, seed).expect("baseline exists");
    Simulator::new(cluster, SimConfig::default()).run(job_list, &mut scheduler)
}

#[test]
fn extended_baselines_account_for_every_job() {
    for name in EXTENDED_BASELINE_NAMES {
        let result = run_baseline(name, 0.8, 1, 120);
        let s = &result.summary;
        assert_eq!(s.total_jobs, 120, "{name}");
        assert_eq!(
            s.completed_jobs + s.unfinished_jobs,
            120,
            "{name} lost jobs"
        );
        assert!(s.miss_rate >= 0.0 && s.miss_rate <= 1.0, "{name}");
        assert!(
            s.mean_utilization >= 0.0 && s.mean_utilization <= 1.0,
            "{name} utilisation out of range"
        );
        assert!(
            s.slowdown_fairness > 0.0 && s.slowdown_fairness <= 1.0 + 1e-9,
            "{name}"
        );
    }
}

#[test]
fn extended_baselines_are_deterministic() {
    for name in EXTENDED_BASELINE_NAMES {
        let a = run_baseline(name, 0.9, 5, 100).summary;
        let b = run_baseline(name, 0.9, 5, 100).summary;
        assert_eq!(a, b, "{name} is not deterministic");
    }
}

#[test]
fn deadline_aware_extensions_do_not_lose_to_fifo_under_pressure() {
    let fifo = run_baseline("fifo", 1.1, 2, 150).summary;
    for name in ["backfill", "heft", "slack-pack"] {
        let s = run_baseline(name, 1.1, 2, 150).summary;
        assert!(
            s.miss_rate <= fifo.miss_rate + 0.02,
            "{name} ({:.3}) should not miss appreciably more than FIFO ({:.3})",
            s.miss_rate,
            fifo.miss_rate
        );
    }
}

#[test]
fn backfill_tracks_edf_closely_on_the_default_workload() {
    // EASY backfilling only adds starts relative to EDF when the head is
    // blocked, so it should never be drastically worse than EDF.
    let edf = run_baseline("edf", 1.0, 9, 150).summary;
    let backfill = run_baseline("backfill", 1.0, 9, 150).summary;
    assert!(
        backfill.miss_rate <= edf.miss_rate + 0.10,
        "backfill ({:.3}) strayed too far from EDF ({:.3})",
        backfill.miss_rate,
        edf.miss_rate
    );
}

#[test]
fn energy_report_is_consistent_with_the_cluster_power_envelope() {
    let cluster = ClusterSpec::icpp_default();
    let result = run_baseline("edf", 0.9, 3, 150);
    let energy = result
        .trace
        .energy_report(&cluster, result.summary.completed_jobs);
    assert!(energy.total_joules > 0.0, "a busy run must consume energy");
    assert!(energy.duration > 0.0);
    assert_eq!(energy.per_class_joules.len(), cluster.num_classes());

    // Bounds: idle-power floor and peak-power ceiling over the traced window.
    let idle_watts: f64 = cluster
        .node_classes
        .iter()
        .map(|c| c.power.idle_watts * c.count as f64)
        .sum();
    let peak_watts: f64 = cluster
        .node_classes
        .iter()
        .map(|c| c.power.peak_watts * c.count as f64)
        .sum();
    let mean_watts = energy.mean_watts();
    assert!(
        mean_watts >= idle_watts - 1e-6,
        "mean power {mean_watts} below the idle floor {idle_watts}"
    );
    assert!(
        mean_watts <= peak_watts + 1e-6,
        "mean power {mean_watts} above the peak ceiling {peak_watts}"
    );
    assert!(energy.joules_per_completed_job > 0.0);
    // kWh and joules agree.
    assert!((energy.total_kwh * 3.6e6 - energy.total_joules).abs() < 1e-3);
}

#[test]
fn busier_cluster_draws_more_power_than_an_idle_one() {
    // The same machines at higher offered load must burn at least as much
    // average power (utilisation-proportional model).
    let cluster = ClusterSpec::icpp_default();
    let low = run_baseline("edf", 0.3, 4, 120);
    let high = run_baseline("edf", 1.2, 4, 120);
    let e_low = low
        .trace
        .energy_report(&cluster, low.summary.completed_jobs);
    let e_high = high
        .trace
        .energy_report(&cluster, high.summary.completed_jobs);
    assert!(
        e_high.mean_watts() >= e_low.mean_watts() - 1e-6,
        "mean power should not drop when the load rises ({} -> {})",
        e_low.mean_watts(),
        e_high.mean_watts()
    );
}

#[test]
fn fairness_lies_in_the_unit_interval_for_every_scheduler() {
    for name in [
        "fifo",
        "edf",
        "greedy-elastic",
        "backfill",
        "heft",
        "slack-pack",
    ] {
        let s = run_baseline(name, 0.9, 6, 120).summary;
        assert!(
            s.slowdown_fairness > 0.0 && s.slowdown_fairness <= 1.0 + 1e-9,
            "{name} fairness {} out of range",
            s.slowdown_fairness
        );
        for class_slowdown in s.per_class_mean_slowdown {
            assert!(class_slowdown >= 0.0 && class_slowdown.is_finite());
        }
    }
}

#[test]
fn dqn_agent_trains_on_the_scheduling_environment() {
    // A small end-to-end check that the value-based learner plugs into the
    // real scheduling environment: observations and masks have the declared
    // shapes, training runs, and the greedy policy does not get worse.
    let cluster = ClusterSpec::tiny();
    let agent_config = AgentConfig::default();
    let workload = WorkloadSpec::icpp_default().with_load(0.8);
    let mut env = SchedulingEnv::new(
        cluster,
        SimConfig::default(),
        &agent_config,
        EpisodeSource::Generated {
            spec: workload,
            jobs_per_episode: 8,
        },
    );
    let obs_dim = env.observation_dim();
    let action_count = env.action_count();
    let step = env.reset(1);
    assert_eq!(step.observation.len(), obs_dim);
    assert_eq!(step.action_mask.len(), action_count);
    assert!(step.feasible_actions() > 0);

    let cfg = DqnConfig {
        buffer_capacity: 4_000,
        batch_size: 32,
        warmup: 64,
        target_sync_interval: 50,
        epsilon_decay_steps: 600,
        ..DqnConfig::default()
    };
    let mut agent = DqnAgent::new(obs_dim, action_count, &[32], 3, cfg);
    let before = agent.run_episode(&mut env, 500, false);
    agent.train(&mut env, 8, 11);
    let after = agent.run_episode(&mut env, 500, false);
    assert!(agent.updates() > 0, "training must take gradient steps");
    assert!(before.is_finite() && after.is_finite());
    // Greedy evaluation on the same seed is deterministic.
    let again = agent.run_episode(&mut env, 500, false);
    assert_eq!(after, again, "greedy evaluation must be deterministic");
}
