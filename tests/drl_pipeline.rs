//! Integration tests of the full DRL pipeline: environment, training,
//! checkpointing and head-to-head evaluation against the random baseline.

use tcrm::baselines::RandomScheduler;
use tcrm::core::{train_agent, LearnerKind, TrainSetup};
use tcrm::sim::{SimConfig, Simulator};
use tcrm::workload::SyntheticSource;

#[test]
fn smoke_training_runs_and_reports_finite_statistics() {
    let mut setup = TrainSetup::smoke();
    setup.train.iterations = 6;
    let outcome = train_agent(&setup);
    assert_eq!(outcome.history.iterations.len(), 6);
    for stats in &outcome.history.iterations {
        assert!(stats.mean_return.is_finite());
        assert!(stats.update.entropy >= 0.0);
        assert!(stats.update.grad_norm.is_finite());
        assert!(stats.mean_length > 0.0);
    }
}

#[test]
fn trained_agent_schedules_unseen_workloads_without_forfeiting_jobs() {
    let mut setup = TrainSetup::smoke();
    setup.train.iterations = 8;
    setup.train.jobs_per_episode = 12;
    let outcome = train_agent(&setup);
    let mut agent = outcome.agent;
    for seed in [500u64, 501] {
        let jobs: Vec<_> = SyntheticSource::new(
            &setup.workload.clone().with_num_jobs(25),
            &setup.cluster,
            seed,
        )
        .expect("valid workload spec")
        .collect();
        let result =
            Simulator::new(setup.cluster.clone(), SimConfig::default()).run(jobs, &mut agent);
        assert_eq!(result.summary.total_jobs, 25);
        assert_eq!(result.summary.unfinished_jobs, 0, "agent forfeited jobs");
    }
}

#[test]
fn trained_agent_is_competitive_with_the_random_baseline() {
    // A modest training budget on the small cluster: the agent should at
    // least match random decisions on the training distribution (in utility
    // ratio, averaged over seeds, with a small tolerance for noise).
    let mut setup = TrainSetup::smoke();
    setup.train.learner = LearnerKind::A2c;
    setup.train.iterations = 25;
    setup.train.episodes_per_iteration = 4;
    setup.train.jobs_per_episode = 15;
    let outcome = train_agent(&setup);
    let mut agent = outcome.agent;

    let mut drl_utility = 0.0;
    let mut random_utility = 0.0;
    let seeds = [900u64, 901, 902];
    for &seed in &seeds {
        let workload = setup.workload.clone().with_num_jobs(30);
        let jobs: Vec<_> = SyntheticSource::new(&workload, &setup.cluster, seed)
            .expect("valid workload spec")
            .collect();
        let drl = Simulator::new(setup.cluster.clone(), SimConfig::default())
            .run(jobs.clone(), &mut agent);
        let mut random = RandomScheduler::new(seed);
        let rnd =
            Simulator::new(setup.cluster.clone(), SimConfig::default()).run(jobs, &mut random);
        drl_utility += drl.summary.utility_ratio;
        random_utility += rnd.summary.utility_ratio;
    }
    drl_utility /= seeds.len() as f64;
    random_utility /= seeds.len() as f64;
    assert!(
        drl_utility >= random_utility - 0.10,
        "trained agent (utility ratio {drl_utility:.3}) fell more than 0.10 below random ({random_utility:.3})"
    );
}

#[test]
fn checkpoints_round_trip_through_disk() {
    let mut setup = TrainSetup::smoke();
    setup.train.iterations = 3;
    let outcome = train_agent(&setup);
    let dir = std::env::temp_dir().join("tcrm-integration-ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("agent.json");
    outcome.agent.save(&path).unwrap();
    let mut restored = tcrm::core::DrlScheduler::load(&path).unwrap();
    let mut original = outcome.agent;

    let jobs: Vec<_> = SyntheticSource::new(
        &setup.workload.clone().with_num_jobs(15),
        &setup.cluster,
        77,
    )
    .expect("valid workload spec")
    .collect();
    let a = Simulator::new(setup.cluster.clone(), SimConfig::default())
        .run(jobs.clone(), &mut original);
    let b = Simulator::new(setup.cluster.clone(), SimConfig::default()).run(jobs, &mut restored);
    assert_eq!(a.summary, b.summary);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn reinforce_and_ppo_also_train_end_to_end() {
    for learner in [LearnerKind::Reinforce, LearnerKind::Ppo] {
        let mut setup = TrainSetup::smoke();
        setup.train.learner = learner;
        setup.train.iterations = 3;
        setup.train.episodes_per_iteration = 2;
        setup.train.jobs_per_episode = 8;
        let outcome = train_agent(&setup);
        assert_eq!(outcome.history.iterations.len(), 3);
        assert!(outcome
            .history
            .iterations
            .iter()
            .all(|s| s.mean_return.is_finite()));
    }
}
