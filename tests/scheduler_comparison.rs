//! Cross-crate integration tests: every scheduler runs end-to-end on the same
//! heterogeneous workload, and the qualitative orderings the paper's
//! evaluation relies on hold.

use tcrm::baselines::{by_name, BASELINE_NAMES};
use tcrm::sim::{ClusterSpec, SimConfig, Simulator, Summary};
use tcrm::workload::{SyntheticSource, WorkloadSpec};

fn run_baseline(name: &str, load: f64, seed: u64) -> Summary {
    let cluster = ClusterSpec::icpp_default();
    let workload = WorkloadSpec::icpp_default()
        .with_num_jobs(150)
        .with_load(load);
    let jobs = SyntheticSource::new(&workload, &cluster, seed)
        .expect("valid workload spec")
        .collect();
    let mut scheduler = by_name(name, seed).expect("baseline exists");
    Simulator::new(cluster, SimConfig::default())
        .run(jobs, &mut scheduler)
        .summary
}

#[test]
fn every_baseline_accounts_for_every_job() {
    for name in BASELINE_NAMES {
        let summary = run_baseline(name, 0.8, 1);
        assert_eq!(summary.total_jobs, 150, "{name}");
        assert_eq!(
            summary.completed_jobs + summary.unfinished_jobs,
            150,
            "{name} lost jobs"
        );
        assert!(
            summary.miss_rate >= 0.0 && summary.miss_rate <= 1.0,
            "{name}"
        );
        assert!(
            summary.mean_utilization >= 0.0 && summary.mean_utilization <= 1.0,
            "{name} utilisation out of range"
        );
        assert!(summary.utility_ratio >= 0.0 && summary.utility_ratio <= 1.0 + 1e-9);
        assert!(summary.mean_slowdown > 0.0, "{name} slowdown not positive");
    }
}

#[test]
fn deadline_aware_schedulers_beat_fifo_under_pressure() {
    let fifo = run_baseline("fifo", 1.1, 2);
    let edf = run_baseline("edf", 1.1, 2);
    let elastic = run_baseline("greedy-elastic", 1.1, 2);
    assert!(
        edf.miss_rate <= fifo.miss_rate + 0.02,
        "EDF ({:.3}) should not miss appreciably more than FIFO ({:.3})",
        edf.miss_rate,
        fifo.miss_rate
    );
    assert!(
        elastic.utility_ratio >= fifo.utility_ratio - 0.02,
        "greedy-elastic ({:.3}) should not earn appreciably less utility than FIFO ({:.3})",
        elastic.utility_ratio,
        fifo.utility_ratio
    );
}

#[test]
fn load_increases_miss_rate_monotonically_in_trend() {
    // Not strictly monotone per-seed, but the low-load point must miss fewer
    // deadlines than the overloaded point for a deadline-aware policy.
    let low = run_baseline("edf", 0.4, 3);
    let high = run_baseline("edf", 1.3, 3);
    assert!(
        low.miss_rate <= high.miss_rate + 1e-9,
        "miss rate at load 0.4 ({:.3}) should not exceed load 1.3 ({:.3})",
        low.miss_rate,
        high.miss_rate
    );
    assert!(low.mean_wait <= high.mean_wait + 1e-9);
}

#[test]
fn results_are_reproducible_across_identical_runs() {
    for name in ["edf", "tetris", "random", "greedy-elastic"] {
        let a = run_baseline(name, 0.9, 7);
        let b = run_baseline(name, 0.9, 7);
        assert_eq!(a, b, "{name} is not deterministic");
    }
}

#[test]
fn different_seeds_produce_different_workload_outcomes() {
    let a = run_baseline("edf", 0.9, 1);
    let b = run_baseline("edf", 0.9, 2);
    assert_ne!(a.makespan, b.makespan);
}
