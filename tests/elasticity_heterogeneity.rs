//! Integration tests for the two title properties: elasticity-compatible
//! allocation and heterogeneity-aware placement.

use tcrm::baselines::{EdfScheduler, GreedyElasticScheduler, LeastLoadedScheduler, RigidAdapter};
use tcrm::sim::{ClusterSpec, JobClass, Scheduler, SimConfig, Simulator, Summary};
use tcrm::workload::{SyntheticSource, WorkloadSpec};

fn run(
    scheduler: &mut dyn Scheduler,
    cluster: &ClusterSpec,
    workload: &WorkloadSpec,
    seed: u64,
) -> Summary {
    let jobs = SyntheticSource::new(workload, cluster, seed)
        .expect("valid workload spec")
        .collect();
    Simulator::new(cluster.clone(), SimConfig::default())
        .run(jobs, scheduler)
        .summary
}

/// A deadline-tight, highly elastic workload where parallelism beyond the
/// minimum is required to meet deadlines.
fn tight_elastic_workload() -> WorkloadSpec {
    WorkloadSpec::icpp_default()
        .with_num_jobs(150)
        .with_load(0.9)
        .with_slack(1.3, 2.0)
}

#[test]
fn elastic_scheduling_beats_rigid_on_tight_deadlines() {
    let cluster = ClusterSpec::icpp_default();
    let workload = tight_elastic_workload();
    let mut elastic_total = 0.0;
    let mut rigid_total = 0.0;
    for seed in [1u64, 2, 3] {
        let elastic = run(
            &mut GreedyElasticScheduler::new(),
            &cluster,
            &workload,
            seed,
        );
        let rigid = run(
            &mut RigidAdapter::new(GreedyElasticScheduler::new()),
            &cluster,
            &workload,
            seed,
        );
        elastic_total += elastic.miss_rate;
        rigid_total += rigid.miss_rate;
        assert!(elastic.scale_events >= rigid.scale_events);
    }
    assert!(
        elastic_total < rigid_total,
        "elastic scheduling ({elastic_total:.3}) should miss fewer deadlines than rigid ({rigid_total:.3}) over 3 seeds"
    );
}

#[test]
fn elastic_jobs_run_at_higher_average_parallelism_when_deadlines_are_tight() {
    let cluster = ClusterSpec::icpp_default();
    let workload = tight_elastic_workload();
    let jobs: Vec<_> = SyntheticSource::new(&workload, &cluster, 5)
        .expect("valid workload spec")
        .collect();
    let elastic = Simulator::new(cluster.clone(), SimConfig::default())
        .run(jobs.clone(), &mut GreedyElasticScheduler::new());
    let rigid = Simulator::new(cluster, SimConfig::default())
        .run(jobs, &mut RigidAdapter::new(GreedyElasticScheduler::new()));
    assert!(
        elastic.summary.mean_parallelism > rigid.summary.mean_parallelism,
        "elastic mean parallelism {} should exceed rigid {}",
        elastic.summary.mean_parallelism,
        rigid.summary.mean_parallelism
    );
}

/// An ML-training heavy mix where GPU placement matters.
fn ml_heavy_workload() -> WorkloadSpec {
    let mut spec = WorkloadSpec::icpp_default();
    for class in &mut spec.classes {
        class.weight = match class.class {
            JobClass::MlTraining => 0.5,
            JobClass::MlInference => 0.2,
            JobClass::Batch => 0.2,
            JobClass::Stream => 0.1,
        };
    }
    spec.with_num_jobs(120).with_load(0.8).with_slack(1.5, 3.0)
}

#[test]
fn speed_aware_placement_beats_load_balancing_on_heterogeneous_cluster() {
    let cluster = ClusterSpec::icpp_default();
    let workload = ml_heavy_workload();
    let mut edf_miss = 0.0;
    let mut ll_miss = 0.0;
    for seed in [1u64, 2, 3] {
        edf_miss += run(&mut EdfScheduler::new(), &cluster, &workload, seed).miss_rate;
        ll_miss += run(&mut LeastLoadedScheduler::new(), &cluster, &workload, seed).miss_rate;
    }
    assert!(
        edf_miss < ll_miss,
        "speed-aware EDF ({edf_miss:.3}) should miss fewer deadlines than least-loaded ({ll_miss:.3})"
    );
}

#[test]
fn heterogeneity_advantage_shrinks_on_homogenised_cluster() {
    let hetero = ClusterSpec::icpp_default();
    let homog = hetero.homogenized();
    let workload = ml_heavy_workload();
    let gap_hetero = run(&mut LeastLoadedScheduler::new(), &hetero, &workload, 4).miss_rate
        - run(&mut EdfScheduler::new(), &hetero, &workload, 4).miss_rate;
    let gap_homog = run(&mut LeastLoadedScheduler::new(), &homog, &workload, 4).miss_rate
        - run(&mut EdfScheduler::new(), &homog, &workload, 4).miss_rate;
    assert!(
        gap_hetero >= gap_homog - 0.05,
        "the speed-aware advantage ({gap_hetero:.3}) should not be smaller than on a homogenised cluster ({gap_homog:.3}) by more than noise"
    );
}

#[test]
fn homogenised_cluster_preserves_aggregate_capacity() {
    let hetero = ClusterSpec::icpp_default();
    let homog = hetero.homogenized();
    let a = hetero.total_capacity();
    let b = homog.total_capacity();
    for i in 0..tcrm::sim::NUM_RESOURCES {
        assert!((a.0[i] - b.0[i]).abs() < 1e-6);
    }
}
