//! Integration tests of the experiment harness (`tcrm-bench`): the runner,
//! the result tables, and the cheap experiments of the Lab.

use tcrm::sim::{ClusterSpec, SimConfig};
use tcrm::workload::WorkloadSpec;
use tcrm_bench::experiments::Lab;
use tcrm_bench::{EvalSession, PolicyRegistry};

#[test]
fn runner_grid_covers_all_schedulers_and_loads() {
    let registry = PolicyRegistry::with_baselines();
    let base = WorkloadSpec::icpp_default().with_num_jobs(60);
    let report = EvalSession::new(&registry)
        .policies(["fifo", "edf", "greedy-elastic"])
        .expect("known policies")
        .cluster(ClusterSpec::icpp_default())
        .sim(SimConfig::default())
        .point(0.5, base.clone().with_load(0.5))
        .point(1.1, base.with_load(1.1))
        .seeds(&[1, 2])
        .table("fig3-test", "test grid", "load")
        .run()
        .expect("sweep runs");
    let table = report.table;
    assert_eq!(table.rows.len(), 3 * 2 * 2);

    let aggregates = table.aggregates();
    assert_eq!(aggregates.len(), 6);
    assert!(aggregates.iter().all(|a| a.replications == 2));

    // The qualitative shape of Figure 3: at higher load, miss rates do not
    // decrease for any scheduler.
    for name in ["fifo", "edf", "greedy-elastic"] {
        let series = table.series(name);
        assert_eq!(series.len(), 2);
        assert!(
            series[0].miss_rate <= series[1].miss_rate + 0.05,
            "{name}: miss rate at load 0.5 ({:.3}) should not exceed load 1.1 ({:.3})",
            series[0].miss_rate,
            series[1].miss_rate
        );
    }

    // Emitters produce parseable output for every aggregate.
    let csv = table.to_csv();
    assert_eq!(csv.lines().count(), 1 + 6);
    assert!(table.to_markdown().contains("greedy-elastic"));
}

#[test]
fn lab_static_experiments_render() {
    let out = std::env::temp_dir().join("tcrm-harness-test");
    let lab = Lab::new(true, &out).with_environment(
        ClusterSpec::icpp_default(),
        WorkloadSpec::icpp_default().with_num_jobs(30),
        SimConfig::default(),
    );
    let table1 = lab.run("table1").expect("table1 exists");
    assert!(table1.markdown.contains("gpu"));
    table1.write_to(&out).unwrap();
    assert!(out.join("table1.md").exists());
    assert!(out.join("table1.csv").exists());
    assert!(lab.run("not-an-experiment").is_none());
}
