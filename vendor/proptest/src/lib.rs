//! Offline stand-in for `proptest`.
//!
//! Supports the slice of the API this workspace's property tests use:
//! range strategies over numeric types, `prop::collection::vec`,
//! `prop::bool::ANY`, `prop::sample::select`, `Just`, `any::<T>()`,
//! `.prop_map`/`.prop_flat_map`, tuple strategies, the `proptest!` macro with
//! optional `#![proptest_config(ProptestConfig::with_cases(n))]`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!` macros.
//!
//! Cases are generated from a deterministic per-test seed (derived from the
//! test name), so failures reproduce without persistence files. There is no
//! shrinking: the failing case index and message are reported instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (`cases` is the only knob this subset honours).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to execute per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: the inputs are outside the property's domain.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// Result type property bodies evaluate to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The source of randomness handed to strategies.
pub type TestRng = StdRng;

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Box the strategy (type erasure).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn ErasedStrategy<T>>,
}

trait ErasedStrategy<T> {
    fn erased_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn erased_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.erased_generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! numeric_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11),
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;

    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The strategy behind [`any`] for primitive types.
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! arbitrary_impls {
    ($($t:ty => $gen:expr),* $(,)?) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            #[allow(clippy::redundant_closure_call)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                ($gen)(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

arbitrary_impls!(
    bool => |rng: &mut TestRng| rng.gen::<bool>(),
    u8 => |rng: &mut TestRng| rng.gen_range(0..=u8::MAX),
    u16 => |rng: &mut TestRng| rng.gen_range(0..=u16::MAX),
    u32 => |rng: &mut TestRng| rng.gen::<u32>(),
    u64 => |rng: &mut TestRng| rng.gen::<u64>(),
    usize => |rng: &mut TestRng| rng.gen::<usize>(),
    f32 => |rng: &mut TestRng| rng.gen::<f32>(),
    f64 => |rng: &mut TestRng| rng.gen::<f64>(),
);

/// The canonical strategy for a type.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy modules mirroring `proptest::prop::*` paths.
pub mod strategies {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Sizes accepted by [`vec()`].
        pub trait IntoSizeRange {
            /// Lower and inclusive upper bound.
            fn bounds(&self) -> (usize, usize);
        }

        impl IntoSizeRange for usize {
            fn bounds(&self) -> (usize, usize) {
                (*self, *self)
            }
        }

        impl IntoSizeRange for core::ops::Range<usize> {
            fn bounds(&self) -> (usize, usize) {
                assert!(self.start < self.end, "empty size range");
                (self.start, self.end - 1)
            }
        }

        impl IntoSizeRange for core::ops::RangeInclusive<usize> {
            fn bounds(&self) -> (usize, usize) {
                (*self.start(), *self.end())
            }
        }

        /// A strategy for `Vec<T>` with element strategy `S`.
        pub struct VecStrategy<S> {
            element: S,
            min: usize,
            max: usize,
        }

        /// Generate vectors whose length lies in `size` and whose elements
        /// come from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            let (min, max) = size.bounds();
            VecStrategy { element, min, max }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = if self.min == self.max {
                    self.min
                } else {
                    rng.gen_range(self.min..=self.max)
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Uniformly random booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The canonical boolean strategy (`prop::bool::ANY`).
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.gen::<bool>()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Uniform selection from a fixed set.
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        /// Choose uniformly from `options` (must be non-empty).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select requires at least one option");
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.gen_range(0..self.options.len())].clone()
            }
        }
    }

    /// Numeric helper strategies (`prop::num::f64::NORMAL`-style not needed).
    pub mod num {}

    /// Uniform f64 in [0, 1) — occasionally handy in ad-hoc strategies.
    pub struct UnitF64;

    impl Strategy for UnitF64 {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen::<f64>()
        }
    }
}

/// The `prop::` facade (`use proptest::prelude::*` brings it in scope).
pub mod prop {
    pub use crate::strategies::bool;
    pub use crate::strategies::collection;
    pub use crate::strategies::num;
    pub use crate::strategies::sample;
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// FNV-1a over the test name: a stable per-test base seed.
pub fn seed_for(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.as_bytes() {
        hash ^= *byte as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Build the RNG for one case of one test.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    TestRng::seed_from_u64(seed_for(test_name) ^ ((case as u64) << 32 | 0x5bd1_e995))
}

/// Fail unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)*);
    }};
}

/// Fail if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Reject the current case (does not count as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, v in prop::collection::vec(0.0f64..1.0, 3)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let __name = concat!(module_path!(), "::", stringify!($name));
            let mut __rejected = 0u32;
            let mut __case = 0u32;
            let mut __executed = 0u32;
            while __executed < __config.cases {
                if __rejected > __config.cases * 16 {
                    panic!("proptest {}: too many rejected cases", __name);
                }
                let mut __rng = $crate::case_rng(__name, __case);
                __case += 1;
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut __rng);)+
                let __result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match __result {
                    ::core::result::Result::Ok(()) => { __executed += 1; }
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => {
                        __rejected += 1;
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(__message)) => {
                        panic!(
                            "proptest {} failed at case {} (seed base {:#x}):\n{}",
                            __name,
                            __case - 1,
                            $crate::seed_for(__name),
                            __message
                        );
                    }
                }
            }
        }
    )*};
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::case_rng("t", 0);
        for _ in 0..100 {
            let v = Strategy::generate(&(3u32..10), &mut rng);
            assert!((3..10).contains(&v));
            let f = Strategy::generate(&(0.5f64..=1.0), &mut rng);
            assert!((0.5..=1.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_controls_length() {
        let mut rng = crate::case_rng("t2", 0);
        let s = prop::collection::vec(0.0f32..1.0, 2..=5);
        for _ in 0..50 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((2..=5).contains(&v.len()));
        }
        let fixed = prop::collection::vec(0u8..=255, 7usize);
        assert_eq!(Strategy::generate(&fixed, &mut rng).len(), 7);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_multiple_args(x in 0usize..10, v in prop::collection::vec(1u32..5, 0..4)) {
            prop_assert!(x < 10);
            prop_assert!(v.iter().all(|&e| (1..5).contains(&e)));
        }

        #[test]
        fn maps_and_flat_maps_compose(
            pair in (0u32..5, 10u32..15).prop_map(|(a, b)| (b, a)),
            tail in (1usize..4).prop_flat_map(|n| prop::collection::vec(0i32..3, n..=n)),
        ) {
            prop_assert!(pair.0 >= 10 && pair.1 < 5);
            prop_assert!(!tail.is_empty() && tail.len() < 4);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn select_and_bool_any(flag in prop::bool::ANY, pick in prop::sample::select(vec![2u32, 4, 8])) {
            let _ = flag;
            prop_assert!([2u32, 4, 8].contains(&pick));
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_property_panics_with_context() {
        // No `#[test]` on the inner fn: it runs only through the explicit
        // call below (a nested test item would be unnameable to the harness).
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
