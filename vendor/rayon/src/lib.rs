//! Offline stand-in for `rayon`. The workspace uses `slice.par_iter().map(f)
//! .collect()` to fan independent simulation replications over cores. This
//! facade keeps that call shape and executes the map with scoped OS threads,
//! chunking the input so each available core gets one contiguous block.
//! Results are returned in input order, so it is a drop-in replacement for
//! order-preserving rayon pipelines.

use std::num::NonZeroUsize;

/// The traits user code imports with `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
    pub use crate::IntoParallelRefMutIterator;
}

/// `.par_iter()` on slices and anything that derefs to one.
pub trait IntoParallelRefIterator<'a> {
    /// Item type yielded by the parallel iterator.
    type Item: Sync + 'a;

    /// A parallel iterator over references into `self`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// `.par_iter_mut()` on slices and anything that derefs to one. The lockstep
/// environment pool uses this to step independent simulators concurrently:
/// each element is visited exactly once by exactly one worker, so `f` may
/// mutate freely.
pub trait IntoParallelRefMutIterator<'a> {
    /// Item type the parallel iterator yields mutable references to.
    type Item: Send + 'a;

    /// A parallel iterator over mutable references into `self`.
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;

    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

/// A mutably borrowed parallel iterator (map/collect only).
pub struct ParIterMut<'a, T> {
    items: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Apply `f` to every element, in parallel across cores, with exclusive
    /// mutable access to each element.
    pub fn map<U, F>(self, f: F) -> ParMapMut<'a, T, F>
    where
        U: Send,
        F: Fn(&mut T) -> U + Sync,
    {
        ParMapMut {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIterMut::map`]; terminal `collect` runs the fan-out.
pub struct ParMapMut<'a, T, F> {
    items: &'a mut [T],
    f: F,
}

impl<'a, T, U, F> ParMapMut<'a, T, F>
where
    T: Send,
    U: Send,
    F: Fn(&mut T) -> U + Sync,
{
    /// Execute the map and collect results in input order.
    pub fn collect<C: FromParallel<U>>(self) -> C {
        C::from_ordered(self.run())
    }

    fn run(self) -> Vec<U> {
        let n = self.items.len();
        if n == 0 {
            return Vec::new();
        }
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
            .min(n);
        let f = &self.f;
        if threads <= 1 {
            return self.items.iter_mut().map(f).collect();
        }
        let chunk = n.div_ceil(threads);
        let mut out: Vec<Option<U>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            let mut starts = Vec::with_capacity(threads);
            for (i, items) in self.items.chunks_mut(chunk).enumerate() {
                starts.push(i * chunk);
                handles.push(scope.spawn(move || items.iter_mut().map(f).collect::<Vec<U>>()));
            }
            for (start, handle) in starts.into_iter().zip(handles) {
                let produced = handle.join().expect("rayon facade worker panicked");
                for (offset, value) in produced.into_iter().enumerate() {
                    out[start + offset] = Some(value);
                }
            }
        });
        out.into_iter().map(|v| v.expect("chunk filled")).collect()
    }
}

/// A borrowed parallel iterator (map/collect only).
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Apply `f` to every element, in parallel across cores.
    pub fn map<U, F>(self, f: F) -> ParMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Like rayon's `map_init`: every worker thread builds one scratch value
    /// with `init` and threads it through every call of `f` it executes.
    ///
    /// Unlike [`ParIter::map`] (which statically splits the input into one
    /// contiguous block per core), the resulting map self-schedules: workers
    /// repeatedly claim the next unprocessed chunk of `chunk_len` items from
    /// a shared atomic cursor. Uneven per-item cost therefore balances the
    /// way rayon's work-stealing does, which matters when each item is a
    /// whole simulation whose runtime varies by policy and load.
    pub fn map_init<I, U, INIT, F>(self, init: INIT, f: F) -> ParMapInit<'a, T, INIT, F>
    where
        U: Send,
        INIT: Fn() -> I + Sync,
        F: Fn(&mut I, &'a T) -> U + Sync,
    {
        ParMapInit {
            items: self.items,
            init,
            f,
            chunk_len: 1,
        }
    }
}

/// The result of [`ParIter::map`]; terminal `collect` runs the fan-out.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, U, F> ParMap<'a, T, F>
where
    T: Sync,
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    /// Execute the map and collect results in input order.
    pub fn collect<C: FromParallel<U>>(self) -> C {
        C::from_ordered(self.run())
    }

    fn run(self) -> Vec<U> {
        let n = self.items.len();
        if n == 0 {
            return Vec::new();
        }
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
            .min(n);
        if threads <= 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(threads);
        let f = &self.f;
        let mut out: Vec<Option<U>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let out_chunks: Vec<(usize, &[T])> = self
            .items
            .chunks(chunk)
            .enumerate()
            .map(|(i, c)| (i * chunk, c))
            .collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(out_chunks.len());
            for (_, items) in &out_chunks {
                handles.push(scope.spawn(move || items.iter().map(f).collect::<Vec<U>>()));
            }
            for ((start, _), handle) in out_chunks.iter().zip(handles) {
                let produced = handle.join().expect("rayon facade worker panicked");
                for (offset, value) in produced.into_iter().enumerate() {
                    out[start + offset] = Some(value);
                }
            }
        });
        out.into_iter().map(|v| v.expect("chunk filled")).collect()
    }
}

/// The result of [`ParIter::map_init`]; terminal `collect` runs the
/// self-scheduling fan-out.
pub struct ParMapInit<'a, T, INIT, F> {
    items: &'a [T],
    init: INIT,
    f: F,
    chunk_len: usize,
}

impl<'a, T, I, U, INIT, F> ParMapInit<'a, T, INIT, F>
where
    T: Sync,
    U: Send,
    INIT: Fn() -> I + Sync,
    F: Fn(&mut I, &'a T) -> U + Sync,
{
    /// Items claimed per scheduling step (default 1). Larger chunks amortise
    /// the atomic claim for cheap items; chunk 1 maximises balance for heavy
    /// ones.
    pub fn chunks_of(mut self, chunk_len: usize) -> Self {
        self.chunk_len = chunk_len.max(1);
        self
    }

    /// Execute the map and collect results in input order.
    pub fn collect<C: FromParallel<U>>(self) -> C {
        C::from_ordered(self.run())
    }

    fn run(self) -> Vec<U> {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let n = self.items.len();
        if n == 0 {
            return Vec::new();
        }
        let chunk = self.chunk_len;
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
            .min(n.div_ceil(chunk));
        let init = &self.init;
        let f = &self.f;
        if threads <= 1 {
            let mut scratch = init();
            return self
                .items
                .iter()
                .map(|item| f(&mut scratch, item))
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let items = self.items;
        let mut out: Vec<Option<U>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for _ in 0..threads {
                let cursor = &cursor;
                handles.push(scope.spawn(move || {
                    let mut scratch = init();
                    let mut produced: Vec<(usize, Vec<U>)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        let block: Vec<U> = items[start..end]
                            .iter()
                            .map(|item| f(&mut scratch, item))
                            .collect();
                        produced.push((start, block));
                    }
                    produced
                }));
            }
            for handle in handles {
                let produced = handle.join().expect("rayon facade worker panicked");
                for (start, block) in produced {
                    for (offset, value) in block.into_iter().enumerate() {
                        out[start + offset] = Some(value);
                    }
                }
            }
        });
        out.into_iter().map(|v| v.expect("chunk filled")).collect()
    }
}

/// Collection targets for the facade's `collect`.
pub trait FromParallel<U> {
    /// Build the collection from results already in input order.
    fn from_ordered(items: Vec<U>) -> Self;
}

impl<U> FromParallel<U> for Vec<U> {
    fn from_ordered(items: Vec<U>) -> Self {
        items
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_collects_empty() {
        let input: Vec<u32> = Vec::new();
        let out: Vec<u32> = input.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn map_init_preserves_order_and_reuses_scratch() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let input: Vec<u64> = (0..997).collect();
        let out: Vec<u64> = input
            .par_iter()
            .map_init(
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    0u64
                },
                |scratch, &x| {
                    *scratch += 1;
                    x * 3
                },
            )
            .collect();
        assert_eq!(out, (0..997).map(|x| x * 3).collect::<Vec<_>>());
        // One scratch per worker thread, far fewer than one per item.
        let inits = inits.load(Ordering::Relaxed);
        assert!((1..997).contains(&inits), "inits = {inits}");
    }

    #[test]
    fn map_init_with_chunks_handles_remainders() {
        let input: Vec<usize> = (0..103).collect();
        let out: Vec<usize> = input
            .par_iter()
            .map_init(|| (), |(), &x| x + 1)
            .chunks_of(7)
            .collect();
        assert_eq!(out, (1..104).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_empty_input() {
        let input: Vec<u32> = Vec::new();
        let out: Vec<u32> = input.par_iter().map_init(|| (), |(), &x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn map_mut_mutates_every_item_in_order() {
        let mut input: Vec<u64> = (0..513).collect();
        let out: Vec<u64> = input
            .par_iter_mut()
            .map(|x| {
                *x += 1;
                *x * 2
            })
            .collect();
        assert_eq!(input, (1..514).collect::<Vec<_>>());
        assert_eq!(out, (1..514).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_mut_empty_input() {
        let mut input: Vec<u32> = Vec::new();
        let out: Vec<u32> = input.par_iter_mut().map(|&mut x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn actually_runs_closure_per_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let input: Vec<usize> = (0..257).collect();
        let _: Vec<usize> = input
            .par_iter()
            .map(|&x| {
                counter.fetch_add(1, Ordering::Relaxed);
                x
            })
            .collect();
        assert_eq!(counter.load(Ordering::Relaxed), 257);
    }
}
