//! Offline stand-in for `rayon`. The workspace uses `slice.par_iter().map(f)
//! .collect()` to fan independent simulation replications over cores. This
//! facade keeps that call shape and executes the map with scoped OS threads,
//! chunking the input so each available core gets one contiguous block.
//! Results are returned in input order, so it is a drop-in replacement for
//! order-preserving rayon pipelines.

use std::num::NonZeroUsize;

/// The traits user code imports with `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// `.par_iter()` on slices and anything that derefs to one.
pub trait IntoParallelRefIterator<'a> {
    /// Item type yielded by the parallel iterator.
    type Item: Sync + 'a;

    /// A parallel iterator over references into `self`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A borrowed parallel iterator (map/collect only).
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Apply `f` to every element, in parallel across cores.
    pub fn map<U, F>(self, f: F) -> ParMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`]; terminal `collect` runs the fan-out.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, U, F> ParMap<'a, T, F>
where
    T: Sync,
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    /// Execute the map and collect results in input order.
    pub fn collect<C: FromParallel<U>>(self) -> C {
        C::from_ordered(self.run())
    }

    fn run(self) -> Vec<U> {
        let n = self.items.len();
        if n == 0 {
            return Vec::new();
        }
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
            .min(n);
        if threads <= 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(threads);
        let f = &self.f;
        let mut out: Vec<Option<U>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let out_chunks: Vec<(usize, &[T])> = self
            .items
            .chunks(chunk)
            .enumerate()
            .map(|(i, c)| (i * chunk, c))
            .collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(out_chunks.len());
            for (_, items) in &out_chunks {
                handles.push(scope.spawn(move || items.iter().map(f).collect::<Vec<U>>()));
            }
            for ((start, _), handle) in out_chunks.iter().zip(handles) {
                let produced = handle.join().expect("rayon facade worker panicked");
                for (offset, value) in produced.into_iter().enumerate() {
                    out[start + offset] = Some(value);
                }
            }
        });
        out.into_iter().map(|v| v.expect("chunk filled")).collect()
    }
}

/// Collection targets for the facade's `collect`.
pub trait FromParallel<U> {
    /// Build the collection from results already in input order.
    fn from_ordered(items: Vec<U>) -> Self;
}

impl<U> FromParallel<U> for Vec<U> {
    fn from_ordered(items: Vec<U>) -> Self {
        items
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_collects_empty() {
        let input: Vec<u32> = Vec::new();
        let out: Vec<u32> = input.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn actually_runs_closure_per_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let input: Vec<usize> = (0..257).collect();
        let _: Vec<usize> = input
            .par_iter()
            .map(|&x| {
                counter.fetch_add(1, Ordering::Relaxed);
                x
            })
            .collect();
        assert_eq!(counter.load(Ordering::Relaxed), 257);
    }
}
