//! Offline stand-in for `serde`.
//!
//! The hermetic build environment has no crate registry, so this crate
//! re-implements the slice of serde this workspace relies on: derivable
//! `Serialize`/`Deserialize` traits used exclusively through `serde_json`.
//! Instead of serde's visitor-based data model, both traits go through a
//! self-describing [`Value`] tree (the same shape as `serde_json::Value`),
//! which is all a JSON-only workspace needs:
//!
//! * `Serialize` renders `self` into a [`Value`];
//! * `Deserialize` reconstructs `Self` from a [`Value`];
//! * `serde_json` (the sibling stub) converts `Value` to and from text.
//!
//! Wire-format conventions match serde's defaults closely enough for
//! round-trips within this workspace: structs are JSON objects, newtype
//! structs are transparent, tuples/tuple structs are arrays, unit enum
//! variants are strings, and data-carrying variants are externally tagged
//! single-key objects.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A self-describing data tree (JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value does not fit `i64`).
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Object),
}

/// An insertion-ordered string-keyed map of [`Value`]s.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Object {
    entries: Vec<(String, Value)>,
}

impl Object {
    /// An empty object.
    pub fn new() -> Self {
        Object::default()
    }

    /// An empty object with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Object {
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Append or replace a key.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Look a key up.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Remove a key, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl Value {
    /// Borrow as an object.
    pub fn as_object(&self) -> Option<&Object> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Mutably borrow as an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Object> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Borrow as an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64` (accepts any number variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric view as `u64` (rejects negatives and non-integers).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(v) if v >= 0 => Some(v as u64),
            Value::U64(v) => Some(v),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// Numeric view as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// A short label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Build an error from a message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// "expected X, found Y" helper.
    pub fn expected(what: &str, found: &Value) -> Self {
        Error::custom(format!("expected {what}, found {}", found.kind()))
    }

    /// Missing-struct-field helper.
    pub fn missing_field(field: &str) -> Self {
        Error::custom(format!("missing field `{field}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Render into the data model.
    fn serialize_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from the data model.
    fn deserialize_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let v = value.as_i64().ok_or_else(|| Error::expected("integer", value))?;
                <$t>::try_from(v).map_err(|_| Error::custom(format!(
                    "integer {v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let v = value.as_u64().ok_or_else(|| Error::expected("unsigned integer", value))?;
                <$t>::try_from(v).map_err(|_| Error::custom(format!(
                    "integer {v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::expected("number", value))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| Error::expected("number", value))
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::expected("bool", value))
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", value))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::expected("string", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::expected("array", value))?;
        items.iter().map(T::deserialize_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::expected("array", value))?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items
            .iter()
            .map(T::deserialize_value)
            .collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::custom("array length changed during parse"))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        T::deserialize_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        T::deserialize_value(value).map(Arc::new)
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize_value(&self) -> Value {
        // Sort keys so serialization is deterministic.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut object = Object::with_capacity(keys.len());
        for key in keys {
            object.insert(key.clone(), self[key].serialize_value());
        }
        Value::Object(object)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let object = value
            .as_object()
            .ok_or_else(|| Error::expected("object", value))?;
        object
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+ $(,)?)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| Error::expected("array", value))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of length {expected}, found {}", items.len())));
                }
                Ok(($($name::deserialize_value(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::deserialize_value(&7u32.serialize_value()).unwrap(), 7);
        assert_eq!(
            i64::deserialize_value(&(-3i64).serialize_value()).unwrap(),
            -3
        );
        assert_eq!(
            f32::deserialize_value(&1.5f32.serialize_value()).unwrap(),
            1.5
        );
        assert!(bool::deserialize_value(&true.serialize_value()).unwrap());
        assert_eq!(
            String::deserialize_value(&"hi".to_string().serialize_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(
            Vec::<u32>::deserialize_value(&v.serialize_value()).unwrap(),
            v
        );
        let arr = [1.0f64, 2.0, 3.0, 4.0];
        assert_eq!(
            <[f64; 4]>::deserialize_value(&arr.serialize_value()).unwrap(),
            arr
        );
        let opt: Option<u8> = None;
        assert_eq!(
            Option::<u8>::deserialize_value(&opt.serialize_value()).unwrap(),
            None
        );
        let pair = (3u32, 4u32);
        assert_eq!(
            <(u32, u32)>::deserialize_value(&pair.serialize_value()).unwrap(),
            pair
        );
        let arc = Arc::new(9i32);
        assert_eq!(
            *Arc::<i32>::deserialize_value(&arc.serialize_value()).unwrap(),
            9
        );
    }

    #[test]
    fn wrong_shapes_error() {
        assert!(u32::deserialize_value(&Value::Str("x".into())).is_err());
        assert!(<[f64; 2]>::deserialize_value(&Value::Array(vec![Value::F64(1.0)])).is_err());
        assert!(bool::deserialize_value(&Value::Null).is_err());
    }

    #[test]
    fn object_insert_get_remove() {
        let mut o = Object::new();
        o.insert("a", Value::I64(1));
        o.insert("b", Value::I64(2));
        o.insert("a", Value::I64(3));
        assert_eq!(o.len(), 2);
        assert_eq!(o.get("a"), Some(&Value::I64(3)));
        assert_eq!(o.remove("b"), Some(Value::I64(2)));
        assert!(o.get("b").is_none());
    }
}
