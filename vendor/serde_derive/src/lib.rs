//! Derive macros for the vendored `serde` subset.
//!
//! The hermetic build has no access to `syn`/`quote`, so the item is parsed
//! directly from the `proc_macro` token stream. Supported shapes — the ones
//! this workspace actually uses:
//!
//! * structs with named fields (honouring `#[serde(skip)]`,
//!   `#[serde(default)]` and `#[serde(default = "path")]`),
//! * tuple structs (single-field newtypes serialize transparently),
//! * unit structs,
//! * enums with unit, tuple and struct variants (externally tagged).
//!
//! Generics and lifetimes are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (value-model variant).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

/// Derive `serde::Deserialize` (value-model variant).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

/// How a field is rebuilt when its key is absent (or always, for `skip`).
#[derive(Clone, PartialEq)]
enum FieldDefault {
    /// Absent key is an error.
    Required,
    /// `#[serde(skip)]`: never serialized, always `Default::default()`.
    Skip,
    /// `#[serde(default)]`: `Default::default()` when absent.
    DefaultTrait,
    /// `#[serde(default = "path")]`: call `path()` when absent.
    DefaultFn(String),
}

struct Field {
    name: String,
    default: FieldDefault,
}

enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<Field>),
}

enum Item {
    NamedStruct(String, Vec<Field>),
    TupleStruct(String, usize),
    UnitStruct(String),
    Enum(String, Vec<Variant>),
}

fn expand(input: TokenStream, direction: Direction) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(message) => {
            return format!("compile_error!({message:?});").parse().unwrap();
        }
    };
    let code = match direction {
        Direction::Serialize => generate_serialize(&item),
        Direction::Deserialize => generate_deserialize(&item),
    };
    code.parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let keyword = expect_any_ident(&tokens, &mut i)?;
    let is_enum = match keyword.as_str() {
        "struct" => false,
        "enum" => true,
        other => return Err(format!("unsupported item `{other}`")),
    };
    let name = expect_any_ident(&tokens, &mut i)?;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde derive (vendored): generic type `{name}` is not supported"
        ));
    }
    if is_enum {
        let body = expect_group(&tokens, &mut i, Delimiter::Brace)?;
        Ok(Item::Enum(name, parse_variants(body)?))
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream().into_iter().collect())?;
                Ok(Item::NamedStruct(name, fields))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream().into_iter().collect());
                Ok(Item::TupleStruct(name, arity))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct(name)),
            other => Err(format!("unsupported struct body: {other:?}")),
        }
    }
}

/// Skip outer attributes, returning any `#[serde(...)]` payloads seen.
fn take_attributes(tokens: &[TokenTree], i: &mut usize) -> Vec<TokenStream> {
    let mut serde_payloads = Vec::new();
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                (inner.first(), inner.get(1))
            {
                if id.to_string() == "serde" {
                    serde_payloads.push(args.stream());
                }
            }
            *i += 1;
        }
    }
    serde_payloads
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    let _ = take_attributes(tokens, i);
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

fn expect_any_ident(tokens: &[TokenTree], i: &mut usize) -> Result<String, String> {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            Ok(id.to_string())
        }
        other => Err(format!("expected identifier, found {other:?}")),
    }
}

fn expect_group(
    tokens: &[TokenTree],
    i: &mut usize,
    delimiter: Delimiter,
) -> Result<Vec<TokenTree>, String> {
    match tokens.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == delimiter => {
            *i += 1;
            Ok(g.stream().into_iter().collect())
        }
        other => Err(format!("expected {delimiter:?} group, found {other:?}")),
    }
}

fn parse_serde_attr(payloads: &[TokenStream]) -> FieldDefault {
    for payload in payloads {
        let inner: Vec<TokenTree> = payload.clone().into_iter().collect();
        let mut j = 0;
        while j < inner.len() {
            if let TokenTree::Ident(id) = &inner[j] {
                match id.to_string().as_str() {
                    "skip" => return FieldDefault::Skip,
                    "default" => {
                        if matches!(inner.get(j + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=')
                        {
                            if let Some(TokenTree::Literal(lit)) = inner.get(j + 2) {
                                let raw = lit.to_string();
                                let path = raw.trim_matches('"').to_string();
                                return FieldDefault::DefaultFn(path);
                            }
                        }
                        return FieldDefault::DefaultTrait;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
    }
    FieldDefault::Required
}

fn parse_named_fields(tokens: Vec<TokenTree>) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let serde_payloads = take_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = expect_any_ident(&tokens, &mut i)?;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        skip_type(&tokens, &mut i);
        fields.push(Field {
            name,
            default: parse_serde_attr(&serde_payloads),
        });
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(fields)
}

/// Advance past a type, stopping at a comma that is not nested inside angle
/// brackets. Delimited groups (parens/brackets for tuples, arrays, fn args)
/// are single token trees, so only `<`/`>` depth needs tracking.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*i) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn count_tuple_fields(tokens: Vec<TokenTree>) -> usize {
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        skip_type(&tokens, &mut i);
        count += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(tokens: Vec<TokenTree>) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_any_ident(&tokens, &mut i)?;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream().into_iter().collect());
                variants.push(Variant::Tuple(name, arity));
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream().into_iter().collect())?;
                variants.push(Variant::Struct(name, fields));
                i += 1;
            }
            _ => variants.push(Variant::Unit(name)),
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            return Err(format!(
                "explicit discriminants are not supported (variant `{}`)",
                variants.len()
            ));
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn generate_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct(name, fields) => {
            let mut body = format!(
                "let mut __obj = serde::Object::with_capacity({});\n",
                fields.len()
            );
            for field in fields {
                if field.default == FieldDefault::Skip {
                    continue;
                }
                body.push_str(&format!(
                    "__obj.insert(\"{0}\", serde::Serialize::serialize_value(&self.{0}));\n",
                    field.name
                ));
            }
            body.push_str("serde::Value::Object(__obj)");
            impl_serialize(name, &body)
        }
        Item::TupleStruct(name, 1) => {
            impl_serialize(name, "serde::Serialize::serialize_value(&self.0)")
        }
        Item::TupleStruct(name, arity) => {
            let elems: Vec<String> = (0..*arity)
                .map(|k| format!("serde::Serialize::serialize_value(&self.{k})"))
                .collect();
            impl_serialize(
                name,
                &format!("serde::Value::Array(vec![{}])", elems.join(", ")),
            )
        }
        Item::UnitStruct(name) => impl_serialize(name, "serde::Value::Null"),
        Item::Enum(name, variants) => {
            let mut arms = String::new();
            for variant in variants {
                match variant {
                    Variant::Unit(v) => arms.push_str(&format!(
                        "{name}::{v} => serde::Value::Str(\"{v}\".to_string()),\n"
                    )),
                    Variant::Tuple(v, 1) => arms.push_str(&format!(
                        "{name}::{v}(__f0) => {{\n\
                         let mut __obj = serde::Object::with_capacity(1);\n\
                         __obj.insert(\"{v}\", serde::Serialize::serialize_value(__f0));\n\
                         serde::Value::Object(__obj)\n}}\n"
                    )),
                    Variant::Tuple(v, arity) => {
                        let binders: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
                        let elems: Vec<String> = binders
                            .iter()
                            .map(|b| format!("serde::Serialize::serialize_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({binders}) => {{\n\
                             let mut __obj = serde::Object::with_capacity(1);\n\
                             __obj.insert(\"{v}\", serde::Value::Array(vec![{elems}]));\n\
                             serde::Value::Object(__obj)\n}}\n",
                            binders = binders.join(", "),
                            elems = elems.join(", "),
                        ));
                    }
                    Variant::Struct(v, fields) => {
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = format!(
                            "let mut __inner = serde::Object::with_capacity({});\n",
                            fields.len()
                        );
                        for field in fields {
                            inner.push_str(&format!(
                                "__inner.insert(\"{0}\", serde::Serialize::serialize_value({0}));\n",
                                field.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binders} }} => {{\n{inner}\
                             let mut __obj = serde::Object::with_capacity(1);\n\
                             __obj.insert(\"{v}\", serde::Value::Object(__inner));\n\
                             serde::Value::Object(__obj)\n}}\n",
                            binders = binders.join(", "),
                        ));
                    }
                }
            }
            impl_serialize(name, &format!("match self {{\n{arms}}}"))
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> serde::Value {{\n{body}\n}}\n}}\n"
    )
}

/// Expression rebuilding one named field from `__obj`.
fn field_expr(field: &Field) -> String {
    match &field.default {
        FieldDefault::Skip => "core::default::Default::default()".to_string(),
        FieldDefault::Required => format!(
            "match __obj.get(\"{0}\") {{\n\
             Some(__v) => serde::Deserialize::deserialize_value(__v)?,\n\
             None => return core::result::Result::Err(serde::Error::missing_field(\"{0}\")),\n}}",
            field.name
        ),
        FieldDefault::DefaultTrait => format!(
            "match __obj.get(\"{0}\") {{\n\
             Some(__v) => serde::Deserialize::deserialize_value(__v)?,\n\
             None => core::default::Default::default(),\n}}",
            field.name
        ),
        FieldDefault::DefaultFn(path) => format!(
            "match __obj.get(\"{0}\") {{\n\
             Some(__v) => serde::Deserialize::deserialize_value(__v)?,\n\
             None => {path}(),\n}}",
            field.name
        ),
    }
}

fn generate_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct(name, fields) => {
            let mut body = String::from(
                "let __obj = __value.as_object().ok_or_else(|| serde::Error::expected(\"object\", __value))?;\n",
            );
            body.push_str(&format!("core::result::Result::Ok({name} {{\n"));
            for field in fields {
                body.push_str(&format!("{}: {},\n", field.name, field_expr(field)));
            }
            body.push_str("})");
            impl_deserialize(name, &body)
        }
        Item::TupleStruct(name, 1) => impl_deserialize(
            name,
            &format!(
                "core::result::Result::Ok({name}(serde::Deserialize::deserialize_value(__value)?))"
            ),
        ),
        Item::TupleStruct(name, arity) => {
            let mut body = format!(
                "let __items = __value.as_array().ok_or_else(|| serde::Error::expected(\"array\", __value))?;\n\
                 if __items.len() != {arity} {{\n\
                 return core::result::Result::Err(serde::Error::custom(\"tuple struct arity mismatch\"));\n}}\n"
            );
            let elems: Vec<String> = (0..*arity)
                .map(|k| format!("serde::Deserialize::deserialize_value(&__items[{k}])?"))
                .collect();
            body.push_str(&format!(
                "core::result::Result::Ok({name}({}))",
                elems.join(", ")
            ));
            impl_deserialize(name, &body)
        }
        Item::UnitStruct(name) => {
            impl_deserialize(name, &format!("core::result::Result::Ok({name})"))
        }
        Item::Enum(name, variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for variant in variants {
                match variant {
                    Variant::Unit(v) => unit_arms.push_str(&format!(
                        "\"{v}\" => core::result::Result::Ok({name}::{v}),\n"
                    )),
                    Variant::Tuple(v, 1) => tagged_arms.push_str(&format!(
                        "\"{v}\" => core::result::Result::Ok({name}::{v}(\
                         serde::Deserialize::deserialize_value(__inner)?)),\n"
                    )),
                    Variant::Tuple(v, arity) => {
                        let elems: Vec<String> = (0..*arity)
                            .map(|k| {
                                format!("serde::Deserialize::deserialize_value(&__items[{k}])?")
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                             let __items = __inner.as_array().ok_or_else(|| serde::Error::expected(\"array\", __inner))?;\n\
                             if __items.len() != {arity} {{\n\
                             return core::result::Result::Err(serde::Error::custom(\"variant arity mismatch\"));\n}}\n\
                             core::result::Result::Ok({name}::{v}({elems}))\n}}\n",
                            elems = elems.join(", "),
                        ));
                    }
                    Variant::Struct(v, fields) => {
                        let mut build = format!(
                            "let __obj = __inner.as_object().ok_or_else(|| serde::Error::expected(\"object\", __inner))?;\n\
                             core::result::Result::Ok({name}::{v} {{\n"
                        );
                        for field in fields {
                            build.push_str(&format!("{}: {},\n", field.name, field_expr(field)));
                        }
                        build.push_str("})");
                        tagged_arms.push_str(&format!("\"{v}\" => {{\n{build}\n}}\n"));
                    }
                }
            }
            let body = format!(
                "match __value {{\n\
                 serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => core::result::Result::Err(serde::Error::custom(format!(\
                 \"unknown variant `{{__other}}` of {name}\"))),\n}},\n\
                 serde::Value::Object(__o) if __o.len() == 1 => {{\n\
                 let (__tag, __inner) = __o.iter().next().unwrap();\n\
                 match __tag.as_str() {{\n{tagged_arms}\
                 __other => core::result::Result::Err(serde::Error::custom(format!(\
                 \"unknown variant `{{__other}}` of {name}\"))),\n}}\n}}\n\
                 __other => core::result::Result::Err(serde::Error::expected(\"enum variant\", __other)),\n}}"
            );
            impl_deserialize(name, &body)
        }
    }
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl serde::Deserialize for {name} {{\n\
         fn deserialize_value(__value: &serde::Value) -> core::result::Result<Self, serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}
