//! A minimal, self-contained re-implementation of the subset of the `rand`
//! 0.8 API this workspace uses. The build environment is hermetic (no crate
//! registry), so the real crate cannot be fetched; this stand-in keeps the
//! same trait shapes (`RngCore`, `Rng`, `SeedableRng`, `seq::SliceRandom`)
//! backed by a xoshiro256++ generator seeded through SplitMix64.
//!
//! Streams are deterministic for a given seed but intentionally *not*
//! bit-compatible with upstream `rand`; everything in this workspace derives
//! reproducibility from its own seeds, never from upstream streams.

/// Low-level generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draw one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = uniform_u128_below(rng, span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, bound)` by rejection sampling (unbiased).
#[inline]
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound <= u64::MAX as u128 {
        let bound = bound as u64;
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % bound) as u128;
            }
        }
    } else {
        // Spans wider than u64 only arise for i128-ish ranges we never use;
        // fall back to two words with modulo (bias negligible at this width).
        let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        v % bound
    }
}

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let u = <$t as Standard>::sample(rng);
                start + u * (end - start)
            }
        }
    )*};
}

float_range_impls!(f32, f64);

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draw a value of type `T` (uniform over the type's standard domain;
    /// `[0, 1)` for floats).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from a half-open or inclusive range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman/Vigna),
    /// seeded via SplitMix64. Fast, 256-bit state, passes BigCrush.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (`choose`, `shuffle`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection and permutation on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// One uniformly chosen element, or `None` for an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn floats_are_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: u32 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn choose_and_shuffle_behave() {
        let mut rng = StdRng::seed_from_u64(4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(items.choose(&mut rng).unwrap()));
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "50-element shuffle left order unchanged");
        v.sort_unstable();
        assert_eq!(v, orig);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
