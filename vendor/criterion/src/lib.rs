//! Offline stand-in for `criterion`.
//!
//! Keeps the call shapes the workspace's benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `measurement_time`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box`, `criterion_group!`,
//! `criterion_main!` — backed by a simple wall-clock harness:
//!
//! * each sample times a batch of iterations sized so one batch takes ≳200µs,
//! * `sample_size` samples are collected (bounded by `measurement_time`),
//! * the per-iteration **median** is reported on stdout,
//! * when `CRITERION_MINI_JSON` is set, one JSON line per benchmark
//!   (`{"name": ..., "median_ns": ..., "samples": ...}`) is appended to that
//!   file — `scripts/bench_snapshot.sh` builds the committed `BENCH_*.json`
//!   snapshots from those lines.

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 30,
            default_measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Parity with criterion's builder (arguments are ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let sample_size = self.default_sample_size;
        let measurement_time = self.default_measurement_time;
        run_benchmark(name, sample_size, measurement_time, &mut f);
        self
    }
}

/// Identifier `function_name/parameter` for parameterised benchmarks.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Build from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Build from a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&full, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&full, self.sample_size, self.measurement_time, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (parity; reporting is per-benchmark).
    pub fn finish(self) {}
}

/// Names accepted wherever criterion takes a benchmark id.
pub trait IntoBenchmarkId {
    /// Render to the display name.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.full
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    /// Iterations per timed batch (sized during warm-up).
    batch: u64,
    /// Collected per-batch durations.
    samples: Vec<Duration>,
    /// How many samples to collect.
    target_samples: usize,
    /// Wall-clock budget.
    budget: Duration,
    /// Set once the routine has been measured.
    measured: bool,
}

impl Bencher {
    /// Measure a routine. The closure result is passed through [`black_box`]
    /// so the optimizer cannot elide the work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch sizing: grow the batch until one batch ≳ 200µs.
        let mut batch = 1u64;
        let sizing_start = Instant::now();
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_micros(200) || batch >= 1 << 20 {
                break;
            }
            if sizing_start.elapsed() > self.budget / 4 {
                break;
            }
            batch *= 2;
        }
        self.batch = batch;

        let run_start = Instant::now();
        self.samples.clear();
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
            if run_start.elapsed() > self.budget && self.samples.len() >= 2 {
                break;
            }
        }
        self.measured = true;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut F,
) {
    let mut bencher = Bencher {
        batch: 1,
        samples: Vec::new(),
        target_samples: sample_size,
        budget: measurement_time,
        measured: false,
    };
    f(&mut bencher);
    if !bencher.measured || bencher.samples.is_empty() {
        println!("{name}: no measurement taken");
        return;
    }
    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / bencher.batch as f64)
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    println!(
        "{name}: median {} (min {}, max {}, {} samples x {} iters)",
        format_ns(median),
        format_ns(min),
        format_ns(max),
        per_iter.len(),
        bencher.batch
    );
    if let Ok(path) = std::env::var("CRITERION_MINI_JSON") {
        if !path.is_empty() {
            let line = format!(
                "{{\"name\":\"{}\",\"median_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{}}}\n",
                name.replace('"', "'"),
                median,
                min,
                max,
                per_iter.len()
            );
            if let Ok(mut file) = OpenOptions::new().create(true).append(true).open(&path) {
                let _ = file.write_all(line.as_bytes());
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Group benchmark functions into a runnable set.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("test_group");
        group.sample_size(5);
        group.measurement_time(Duration::from_millis(50));
        let mut runs = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs > 0, "routine never executed");
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(20));
        let data = vec![1u64, 2, 3];
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, data| {
            b.iter(|| data.iter().sum::<u64>())
        });
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 64).into_benchmark_id(), "f/64");
        assert_eq!(BenchmarkId::from_parameter(9).into_benchmark_id(), "9");
    }
}
