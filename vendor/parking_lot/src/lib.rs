//! Offline stand-in for `parking_lot`: the workspace only needs `Mutex` (and
//! occasionally `RwLock`) with the poison-free `lock()` signature. Backed by
//! `std::sync` primitives; a poisoned std lock is treated as fatal, matching
//! parking_lot's panic-propagation-free model closely enough for our use.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Unwrap the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (no poisoning: a panic while held does not make the
    /// lock unusable).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards are returned directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Unwrap the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
