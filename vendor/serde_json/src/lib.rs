//! Offline stand-in for `serde_json`, built on the vendored `serde` value
//! model: `to_string`/`to_string_pretty`/`from_str`/`to_value`/`from_value`
//! with a hand-written JSON printer and parser.
//!
//! Floats are printed with Rust's shortest-roundtrip `Display`, so
//! `f64 -> text -> f64` (and `f32` via `f64`) round-trips are exact. Non-finite
//! floats serialize as `null`, matching upstream serde_json.

pub use serde::Error;
pub use serde::Value;

use serde::{Deserialize, Object, Serialize};

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serialize into the [`Value`] data model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.serialize_value())
}

/// Deserialize from the [`Value`] data model.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::deserialize_value(&value)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse(text)?;
    T::deserialize_value(&value)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => write_f64(*v, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(object) => {
            if object.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in object.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    if v == v.trunc() && v.abs() < 1e15 {
        // Match serde_json's integral-float formatting ("1.0", not "1").
        out.push_str(&format!("{v:.1}"));
    } else {
        // Rust's Display for floats is shortest-roundtrip.
        out.push_str(&v.to_string());
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') => {
                if self.consume_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::custom("invalid literal"))
                }
            }
            Some(b't') => {
                if self.consume_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::custom("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.consume_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::custom("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected byte {other:?} at {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, found {other:?}"
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut object = Object::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(object));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            object.insert(key, value);
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(object)),
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, found {other:?}"
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        let c = if (0xD800..0xDC00).contains(&code) {
                            // Surrogate pair.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(Error::custom("unpaired surrogate"));
                            }
                            let low = self.parse_hex4()?;
                            let combined =
                                0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                            char::from_u32(combined)
                                .ok_or_else(|| Error::custom("invalid surrogate pair"))?
                        } else {
                            char::from_u32(code)
                                .ok_or_else(|| Error::custom("invalid unicode escape"))?
                        };
                        out.push(c);
                    }
                    other => {
                        return Err(Error::custom(format!("invalid escape {other:?}")));
                    }
                },
                Some(byte) if byte < 0x80 => out.push(byte as char),
                Some(byte) => {
                    // Multi-byte UTF-8: copy the whole sequence.
                    let len = match byte {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(Error::custom("invalid UTF-8 in string")),
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(Error::custom("truncated UTF-8 sequence"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
                None => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let byte = self
                .bump()
                .ok_or_else(|| Error::custom("truncated unicode escape"))?;
            let digit = (byte as char)
                .to_digit(16)
                .ok_or_else(|| Error::custom("invalid hex digit"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(byte) = self.peek() {
            match byte {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&7u32).unwrap(), "7");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<u32>("7").unwrap(), 7);
        assert_eq!(from_str::<String>("\"a\\\"b\"").unwrap(), "a\"b");
        assert_eq!(from_str::<Option<f32>>("null").unwrap(), None);
    }

    #[test]
    fn float_text_roundtrip_is_exact() {
        for &v in &[
            0.1f64,
            std::f64::consts::PI,
            1e-300,
            -2.5e17,
            f64::MIN_POSITIVE,
        ] {
            let text = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&text).unwrap(), v, "text = {text}");
        }
        for &v in &[0.1f32, 2.71729f32, 6.02e23f32] {
            let text = to_string(&v).unwrap();
            assert_eq!(from_str::<f32>(&text).unwrap(), v, "text = {text}");
        }
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1.0f32, -2.5, 3.25];
        let text = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f32>>(&text).unwrap(), v);
        let nested: Vec<Vec<u8>> = vec![vec![1], vec![], vec![2, 3]];
        let text = to_string(&nested).unwrap();
        assert_eq!(from_str::<Vec<Vec<u8>>>(&text).unwrap(), nested);
    }

    #[test]
    fn parses_whitespace_and_pretty_output() {
        let value = parse(" { \"a\" : [ 1 , 2.5 ] , \"b\" : null } ").unwrap();
        let object = value.as_object().unwrap();
        assert_eq!(object.get("b"), Some(&Value::Null));
        let pretty = to_string_pretty(&value).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(parse(&pretty).unwrap(), value);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
        assert_eq!(from_str::<String>("\"héllo\"").unwrap(), "héllo");
    }

    #[test]
    fn errors_on_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nul").is_err());
    }
}
