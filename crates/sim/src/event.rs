//! Discrete-event queue.
//!
//! Events are ordered by `(time, sequence number)`, which makes the engine
//! fully deterministic: two events at the same timestamp are processed in the
//! order they were scheduled.

use crate::job::{Job, JobId};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A job enters the pending queue.
    JobArrival(Job),
    /// A running job is expected to finish. The `version` stamps the
    /// allocation the prediction was made for; if the job has been re-scaled
    /// since, the event is stale and ignored.
    JobCompletion { job: JobId, version: u64 },
    /// A periodic decision epoch (lets the scheduler act even when nothing
    /// arrived or completed, e.g. to re-scale running jobs).
    DecisionEpoch,
    /// Sample the utilisation trace.
    UtilizationSample,
}

/// A timestamped event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Simulated time at which the event fires.
    pub time: f64,
    /// Monotone sequence number breaking timestamp ties deterministically.
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering so the BinaryHeap (a max-heap) pops the earliest
        // event first. Times are always finite in the engine.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-priority queue of events.
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule an event at `time`.
    pub fn push(&mut self, time: f64, kind: EventKind) {
        debug_assert!(time.is_finite(), "event time must be finite");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop every queued event (retaining the heap's capacity) and restart
    /// the tie-breaking sequence, as if the queue were freshly built.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobClass;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(5.0, EventKind::DecisionEpoch);
        q.push(1.0, EventKind::UtilizationSample);
        q.push(3.0, EventKind::DecisionEpoch);
        let times: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(2.0, EventKind::DecisionEpoch);
        q.push(
            2.0,
            EventKind::JobCompletion {
                job: JobId(1),
                version: 0,
            },
        );
        q.push(2.0, EventKind::UtilizationSample);
        let kinds: Vec<EventKind> = std::iter::from_fn(|| q.pop()).map(|e| e.kind).collect();
        assert_eq!(kinds[0], EventKind::DecisionEpoch);
        assert_eq!(
            kinds[1],
            EventKind::JobCompletion {
                job: JobId(1),
                version: 0
            }
        );
        assert_eq!(kinds[2], EventKind::UtilizationSample);
    }

    #[test]
    fn arrival_events_carry_the_job() {
        let mut q = EventQueue::new();
        let job = Job::builder(JobId(3), JobClass::Stream)
            .deadline(4.0)
            .build();
        q.push(job.arrival, EventKind::JobArrival(job.clone()));
        match q.pop().unwrap().kind {
            EventKind::JobArrival(j) => assert_eq!(j, job),
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(1.5, EventKind::DecisionEpoch);
        assert_eq!(q.peek_time(), Some(1.5));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
