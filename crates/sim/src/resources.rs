//! Multi-dimensional resource vectors.
//!
//! The simulator tracks four resource dimensions per node and per job demand:
//! CPU cores, memory (GiB), GPU devices and I/O bandwidth (Gbit/s). A fixed
//! small dimensionality keeps the hot arithmetic allocation-free (`[f64; 4]`
//! on the stack) while still capturing the multi-resource packing problem the
//! paper's heterogeneous cluster poses.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub, SubAssign};

/// Number of resource dimensions tracked by the simulator.
pub const NUM_RESOURCES: usize = 4;

/// The identity of one resource dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// CPU cores.
    Cpu,
    /// Memory in GiB.
    Memory,
    /// GPU devices (fractional sharing allowed).
    Gpu,
    /// I/O or network bandwidth in Gbit/s.
    Io,
}

impl ResourceKind {
    /// All resource kinds in index order.
    pub const ALL: [ResourceKind; NUM_RESOURCES] = [
        ResourceKind::Cpu,
        ResourceKind::Memory,
        ResourceKind::Gpu,
        ResourceKind::Io,
    ];

    /// The index of this kind inside a [`ResourceVector`].
    pub fn index(self) -> usize {
        match self {
            ResourceKind::Cpu => 0,
            ResourceKind::Memory => 1,
            ResourceKind::Gpu => 2,
            ResourceKind::Io => 3,
        }
    }

    /// Short human-readable label used in tables and figures.
    pub fn label(self) -> &'static str {
        match self {
            ResourceKind::Cpu => "cpu",
            ResourceKind::Memory => "mem",
            ResourceKind::Gpu => "gpu",
            ResourceKind::Io => "io",
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A non-negative quantity of each resource dimension.
///
/// `ResourceVector` is used both for node capacities and for per-unit job
/// demands. All arithmetic is element-wise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ResourceVector(pub [f64; NUM_RESOURCES]);

impl ResourceVector {
    /// Build a vector from raw values in [`ResourceKind::ALL`] order.
    pub fn new(values: [f64; NUM_RESOURCES]) -> Self {
        ResourceVector(values)
    }

    /// The all-zero vector.
    pub fn zero() -> Self {
        ResourceVector([0.0; NUM_RESOURCES])
    }

    /// A vector with the same value in every dimension.
    pub fn splat(v: f64) -> Self {
        ResourceVector([v; NUM_RESOURCES])
    }

    /// Convenience constructor naming every dimension.
    pub fn of(cpu: f64, mem: f64, gpu: f64, io: f64) -> Self {
        ResourceVector([cpu, mem, gpu, io])
    }

    /// Get one dimension by kind.
    pub fn get(&self, kind: ResourceKind) -> f64 {
        self.0[kind.index()]
    }

    /// Set one dimension by kind, returning the modified vector.
    pub fn with(mut self, kind: ResourceKind, value: f64) -> Self {
        self.0[kind.index()] = value;
        self
    }

    /// True if every component is (numerically) non-negative.
    ///
    /// A small epsilon absorbs floating point rounding from repeated
    /// allocate/release cycles.
    pub fn is_non_negative(&self) -> bool {
        self.0.iter().all(|&v| v >= -1e-9)
    }

    /// True if every component is finite.
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|v| v.is_finite())
    }

    /// Element-wise `self <= other` (with epsilon slack), i.e. a demand of
    /// `self` fits in free capacity `other`.
    pub fn fits_in(&self, other: &ResourceVector) -> bool {
        self.0
            .iter()
            .zip(other.0.iter())
            .all(|(d, c)| *d <= *c + 1e-9)
    }

    /// Element-wise subtraction clamped at zero (useful for "free capacity"
    /// displays where rounding could produce tiny negatives).
    pub fn saturating_sub(&self, other: &ResourceVector) -> ResourceVector {
        let mut out = [0.0; NUM_RESOURCES];
        for i in 0..NUM_RESOURCES {
            out[i] = (self.0[i] - other.0[i]).max(0.0);
        }
        ResourceVector(out)
    }

    /// Element-wise maximum.
    pub fn max(&self, other: &ResourceVector) -> ResourceVector {
        let mut out = [0.0; NUM_RESOURCES];
        for i in 0..NUM_RESOURCES {
            out[i] = self.0[i].max(other.0[i]);
        }
        ResourceVector(out)
    }

    /// Element-wise minimum.
    pub fn min(&self, other: &ResourceVector) -> ResourceVector {
        let mut out = [0.0; NUM_RESOURCES];
        for i in 0..NUM_RESOURCES {
            out[i] = self.0[i].min(other.0[i]);
        }
        ResourceVector(out)
    }

    /// Scale every component by a factor.
    pub fn scaled(&self, factor: f64) -> ResourceVector {
        let mut out = self.0;
        for v in &mut out {
            *v *= factor;
        }
        ResourceVector(out)
    }

    /// The dominant share of this demand relative to a capacity: the maximum
    /// over dimensions of `demand_i / capacity_i` (dimensions with zero
    /// capacity are ignored unless the demand there is positive, in which case
    /// the share is `+inf`). This is the DRF-style measure used by the packing
    /// baselines and by the state encoder.
    pub fn dominant_share(&self, capacity: &ResourceVector) -> f64 {
        let mut share: f64 = 0.0;
        for i in 0..NUM_RESOURCES {
            if capacity.0[i] > 0.0 {
                share = share.max(self.0[i] / capacity.0[i]);
            } else if self.0[i] > 0.0 {
                return f64::INFINITY;
            }
        }
        share
    }

    /// Element-wise division by a capacity, mapping zero-capacity dimensions
    /// to zero. Used to build normalised state features.
    pub fn normalized_by(&self, capacity: &ResourceVector) -> ResourceVector {
        let mut out = [0.0; NUM_RESOURCES];
        for i in 0..NUM_RESOURCES {
            out[i] = if capacity.0[i] > 0.0 {
                self.0[i] / capacity.0[i]
            } else {
                0.0
            };
        }
        ResourceVector(out)
    }

    /// The dot product with another vector (used by alignment-scoring
    /// baselines such as Tetris).
    pub fn dot(&self, other: &ResourceVector) -> f64 {
        self.0.iter().zip(other.0.iter()).map(|(a, b)| a * b).sum()
    }

    /// Sum of all components.
    pub fn total(&self) -> f64 {
        self.0.iter().sum()
    }

    /// The largest component.
    pub fn max_component(&self) -> f64 {
        self.0.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Iterate over `(kind, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceKind, f64)> + '_ {
        ResourceKind::ALL.iter().map(move |&k| (k, self.get(k)))
    }

    /// The raw component array.
    pub fn as_array(&self) -> [f64; NUM_RESOURCES] {
        self.0
    }
}

impl Index<ResourceKind> for ResourceVector {
    type Output = f64;
    fn index(&self, kind: ResourceKind) -> &f64 {
        &self.0[kind.index()]
    }
}

impl IndexMut<ResourceKind> for ResourceVector {
    fn index_mut(&mut self, kind: ResourceKind) -> &mut f64 {
        &mut self.0[kind.index()]
    }
}

impl Add for ResourceVector {
    type Output = ResourceVector;
    fn add(self, rhs: ResourceVector) -> ResourceVector {
        let mut out = self.0;
        for i in 0..NUM_RESOURCES {
            out[i] += rhs.0[i];
        }
        ResourceVector(out)
    }
}

impl AddAssign for ResourceVector {
    fn add_assign(&mut self, rhs: ResourceVector) {
        for i in 0..NUM_RESOURCES {
            self.0[i] += rhs.0[i];
        }
    }
}

impl Sub for ResourceVector {
    type Output = ResourceVector;
    fn sub(self, rhs: ResourceVector) -> ResourceVector {
        let mut out = self.0;
        for i in 0..NUM_RESOURCES {
            out[i] -= rhs.0[i];
        }
        ResourceVector(out)
    }
}

impl SubAssign for ResourceVector {
    fn sub_assign(&mut self, rhs: ResourceVector) {
        for i in 0..NUM_RESOURCES {
            self.0[i] -= rhs.0[i];
        }
    }
}

impl Mul<f64> for ResourceVector {
    type Output = ResourceVector;
    fn mul(self, rhs: f64) -> ResourceVector {
        self.scaled(rhs)
    }
}

impl fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[cpu={:.2}, mem={:.2}, gpu={:.2}, io={:.2}]",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_index_roundtrip() {
        for (i, kind) in ResourceKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
    }

    #[test]
    fn basic_arithmetic() {
        let a = ResourceVector::of(4.0, 8.0, 1.0, 2.0);
        let b = ResourceVector::of(1.0, 2.0, 0.0, 0.5);
        assert_eq!(a + b, ResourceVector::of(5.0, 10.0, 1.0, 2.5));
        assert_eq!(a - b, ResourceVector::of(3.0, 6.0, 1.0, 1.5));
        assert_eq!(b * 2.0, ResourceVector::of(2.0, 4.0, 0.0, 1.0));
    }

    #[test]
    fn fits_in_respects_every_dimension() {
        let cap = ResourceVector::of(4.0, 8.0, 1.0, 2.0);
        assert!(ResourceVector::of(4.0, 8.0, 1.0, 2.0).fits_in(&cap));
        assert!(ResourceVector::of(0.0, 0.0, 0.0, 0.0).fits_in(&cap));
        assert!(!ResourceVector::of(4.1, 0.0, 0.0, 0.0).fits_in(&cap));
        assert!(!ResourceVector::of(0.0, 0.0, 1.5, 0.0).fits_in(&cap));
    }

    #[test]
    fn dominant_share_picks_bottleneck() {
        let cap = ResourceVector::of(10.0, 100.0, 2.0, 10.0);
        let demand = ResourceVector::of(1.0, 50.0, 0.0, 1.0);
        assert!((demand.dominant_share(&cap) - 0.5).abs() < 1e-12);
        // Demanding a resource the capacity does not have is infeasible.
        let gpu_demand = ResourceVector::of(0.0, 0.0, 1.0, 0.0);
        let cpu_only = ResourceVector::of(8.0, 32.0, 0.0, 10.0);
        assert!(gpu_demand.dominant_share(&cpu_only).is_infinite());
    }

    #[test]
    fn normalization_handles_zero_capacity() {
        let cap = ResourceVector::of(10.0, 0.0, 2.0, 10.0);
        let demand = ResourceVector::of(5.0, 3.0, 1.0, 0.0);
        let n = demand.normalized_by(&cap);
        assert_eq!(n, ResourceVector::of(0.5, 0.0, 0.5, 0.0));
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        let a = ResourceVector::of(1.0, 1.0, 1.0, 1.0);
        let b = ResourceVector::of(2.0, 0.5, 1.0, 0.0);
        assert_eq!(a.saturating_sub(&b), ResourceVector::of(0.0, 0.5, 0.0, 1.0));
    }

    #[test]
    fn indexing_by_kind() {
        let mut v = ResourceVector::zero();
        v[ResourceKind::Gpu] = 2.0;
        assert_eq!(v.get(ResourceKind::Gpu), 2.0);
        assert_eq!(v[ResourceKind::Cpu], 0.0);
    }

    #[test]
    fn display_is_readable() {
        let v = ResourceVector::of(1.0, 2.0, 3.0, 4.0);
        let s = format!("{v}");
        assert!(s.contains("cpu=1.00") && s.contains("io=4.00"));
    }
}
