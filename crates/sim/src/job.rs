//! Job model: elastic, deadline-constrained, class-tagged work units.
//!
//! A job is described by a total amount of *work* (abstract work units), a
//! per-parallel-unit resource demand, an elasticity range
//! `[min_parallelism, max_parallelism]`, a speedup model that maps the degree
//! of parallelism to an execution-rate multiplier, a deadline and a
//! time-utility function. Service time on a node class with speed factor `s`
//! and parallelism `p` is `total_work / (s * speedup(p))`.

use crate::resources::ResourceVector;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier of a job within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Workload class of a job. Node classes advertise a speed factor per job
/// class, which is how heterogeneity affects execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobClass {
    /// Throughput-oriented batch analytics (CPU bound).
    Batch,
    /// Latency-sensitive streaming / event processing (I/O bound).
    Stream,
    /// ML training (benefits strongly from GPU nodes).
    MlTraining,
    /// ML inference / scoring (benefits moderately from GPU nodes).
    MlInference,
}

impl JobClass {
    /// All job classes in index order.
    pub const ALL: [JobClass; 4] = [
        JobClass::Batch,
        JobClass::Stream,
        JobClass::MlTraining,
        JobClass::MlInference,
    ];

    /// Number of job classes.
    pub const COUNT: usize = 4;

    /// Stable index of this class (used by speed matrices and one-hot state
    /// features).
    pub fn index(self) -> usize {
        match self {
            JobClass::Batch => 0,
            JobClass::Stream => 1,
            JobClass::MlTraining => 2,
            JobClass::MlInference => 3,
        }
    }

    /// Class from an index (panics if out of range).
    pub fn from_index(i: usize) -> JobClass {
        Self::ALL[i]
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            JobClass::Batch => "batch",
            JobClass::Stream => "stream",
            JobClass::MlTraining => "ml-train",
            JobClass::MlInference => "ml-infer",
        }
    }
}

impl fmt::Display for JobClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How the execution rate scales with the degree of parallelism.
///
/// All models are normalised so that `speedup(1) == 1`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpeedupModel {
    /// Perfect linear scaling: `speedup(p) = p`.
    Linear,
    /// Amdahl's law with a serial fraction `f`:
    /// `speedup(p) = 1 / (f + (1 - f)/p)`.
    Amdahl {
        /// Fraction of the work that cannot be parallelised, in `[0, 1]`.
        serial_fraction: f64,
    },
    /// Power-law scaling: `speedup(p) = p^alpha` with `alpha ∈ (0, 1]`.
    Power {
        /// Scaling exponent.
        alpha: f64,
    },
}

impl SpeedupModel {
    /// Execution-rate multiplier at parallelism `p >= 1`.
    pub fn speedup(&self, parallelism: u32) -> f64 {
        let p = parallelism.max(1) as f64;
        match *self {
            SpeedupModel::Linear => p,
            SpeedupModel::Amdahl { serial_fraction } => {
                let f = serial_fraction.clamp(0.0, 1.0);
                1.0 / (f + (1.0 - f) / p)
            }
            SpeedupModel::Power { alpha } => p.powf(alpha.clamp(0.0, 1.0)),
        }
    }

    /// Marginal benefit of adding one more unit at parallelism `p`.
    pub fn marginal_gain(&self, parallelism: u32) -> f64 {
        self.speedup(parallelism + 1) - self.speedup(parallelism)
    }
}

impl Default for SpeedupModel {
    fn default() -> Self {
        SpeedupModel::Amdahl {
            serial_fraction: 0.05,
        }
    }
}

/// Time-utility function of a time-critical job.
///
/// Finishing at or before the deadline yields the full `value`. Finishing
/// later decays the utility linearly to zero over a grace window expressed as
/// a fraction of the job's relative deadline; for hard jobs the window is
/// zero and any miss yields zero utility.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeUtility {
    /// Utility earned when the job meets its deadline.
    pub value: f64,
    /// Grace window as a fraction of the relative deadline
    /// (`deadline - arrival`). `0.0` means a hard deadline.
    pub grace_fraction: f64,
}

impl TimeUtility {
    /// A hard-deadline utility: full value on time, zero otherwise.
    pub fn hard(value: f64) -> Self {
        TimeUtility {
            value,
            grace_fraction: 0.0,
        }
    }

    /// A soft-deadline utility decaying over `grace_fraction` of the relative
    /// deadline.
    pub fn soft(value: f64, grace_fraction: f64) -> Self {
        TimeUtility {
            value,
            grace_fraction: grace_fraction.max(0.0),
        }
    }

    /// Utility accrued by a job with the given arrival/deadline finishing at
    /// `finish`.
    pub fn utility(&self, arrival: f64, deadline: f64, finish: f64) -> f64 {
        if finish <= deadline + 1e-9 {
            return self.value;
        }
        let relative = (deadline - arrival).max(1e-9);
        let grace = self.grace_fraction * relative;
        if grace <= 0.0 {
            return 0.0;
        }
        let overrun = finish - deadline;
        (self.value * (1.0 - overrun / grace)).max(0.0)
    }
}

impl Default for TimeUtility {
    fn default() -> Self {
        TimeUtility::soft(1.0, 0.5)
    }
}

/// Lifecycle state of a job inside the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Waiting in the queue.
    Pending,
    /// Currently allocated and executing.
    Running,
    /// Finished (possibly after its deadline).
    Completed,
}

/// A unit of elastic, deadline-constrained work submitted to the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Unique identifier.
    pub id: JobId,
    /// Workload class (drives heterogeneous speed factors).
    pub class: JobClass,
    /// Arrival (submission) time in seconds.
    pub arrival: f64,
    /// Total work in abstract work units. One work unit takes one second on a
    /// speed-1.0 node at parallelism 1 with a linear speedup model.
    pub total_work: f64,
    /// Resource demand of a single parallel unit.
    pub demand_per_unit: ResourceVector,
    /// Minimum degree of parallelism the job can run with.
    pub min_parallelism: u32,
    /// Maximum degree of parallelism the job can exploit.
    pub max_parallelism: u32,
    /// Speedup model mapping parallelism to an execution-rate multiplier.
    pub speedup: SpeedupModel,
    /// Absolute deadline in seconds.
    pub deadline: f64,
    /// Time-utility function.
    pub utility: TimeUtility,
    /// If false the job is rigid: it must run at exactly `min_parallelism`
    /// and may not be re-scaled. Used by the rigid ablation.
    pub malleable: bool,
}

impl Job {
    /// Start building a job with the given id and class.
    pub fn builder(id: JobId, class: JobClass) -> JobBuilder {
        JobBuilder::new(id, class)
    }

    /// Relative deadline (deadline − arrival).
    pub fn relative_deadline(&self) -> f64 {
        self.deadline - self.arrival
    }

    /// Service time on a node class with the given speed factor at the given
    /// parallelism, ignoring queueing and reconfiguration.
    pub fn service_time(&self, speed_factor: f64, parallelism: u32) -> f64 {
        let rate = speed_factor.max(1e-9) * self.speedup.speedup(parallelism);
        self.total_work / rate
    }

    /// The minimum service time achievable anywhere in the cluster given the
    /// best speed factor available to this job class.
    pub fn best_case_service_time(&self, best_speed: f64) -> f64 {
        self.service_time(best_speed, self.max_parallelism)
    }

    /// Slack at time `now` assuming the job still needs `remaining_work` and
    /// would run at `rate` work-units per second: `deadline - now -
    /// remaining/rate`. Negative slack means the deadline cannot be met at
    /// that rate.
    pub fn slack(&self, now: f64, remaining_work: f64, rate: f64) -> f64 {
        self.deadline - now - remaining_work / rate.max(1e-9)
    }

    /// The total resource demand at a given parallelism.
    pub fn demand_at(&self, parallelism: u32) -> ResourceVector {
        self.demand_per_unit.scaled(parallelism as f64)
    }

    /// Clamp a requested parallelism into the job's feasible range, honouring
    /// rigidity.
    pub fn clamp_parallelism(&self, requested: u32) -> u32 {
        if !self.malleable {
            return self.min_parallelism;
        }
        requested.clamp(self.min_parallelism, self.max_parallelism)
    }

    /// Number of distinct parallelism levels the job supports.
    pub fn parallelism_levels(&self) -> u32 {
        if self.malleable {
            self.max_parallelism - self.min_parallelism + 1
        } else {
            1
        }
    }

    /// Basic structural validity check used by the engine and by property
    /// tests.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.total_work > 0.0) {
            return Err(format!("{}: total_work must be positive", self.id));
        }
        if !self.arrival.is_finite() || !self.deadline.is_finite() || !self.total_work.is_finite() {
            return Err(format!("{}: arrival/deadline/work must be finite", self.id));
        }
        if self.min_parallelism == 0 {
            return Err(format!("{}: min_parallelism must be >= 1", self.id));
        }
        if self.max_parallelism < self.min_parallelism {
            return Err(format!("{}: max_parallelism < min_parallelism", self.id));
        }
        if self.deadline < self.arrival {
            return Err(format!("{}: deadline before arrival", self.id));
        }
        if !self.demand_per_unit.is_non_negative() || !self.demand_per_unit.is_finite() {
            return Err(format!("{}: invalid demand vector", self.id));
        }
        Ok(())
    }
}

/// Fluent builder for [`Job`]. Every field has a sensible default so tests
/// and examples only specify what they care about.
#[derive(Debug, Clone)]
pub struct JobBuilder {
    job: Job,
}

impl JobBuilder {
    /// Create a builder with defaults: one work unit, one CPU core + 1 GiB,
    /// parallelism 1..=1, deadline 10× the arrival-relative work, soft
    /// utility.
    pub fn new(id: JobId, class: JobClass) -> Self {
        JobBuilder {
            job: Job {
                id,
                class,
                arrival: 0.0,
                total_work: 1.0,
                demand_per_unit: ResourceVector::of(1.0, 1.0, 0.0, 0.1),
                min_parallelism: 1,
                max_parallelism: 1,
                speedup: SpeedupModel::default(),
                deadline: 10.0,
                utility: TimeUtility::default(),
                malleable: true,
            },
        }
    }

    /// Set the arrival time.
    pub fn arrival(mut self, t: f64) -> Self {
        self.job.arrival = t;
        self
    }

    /// Set the total work.
    pub fn total_work(mut self, w: f64) -> Self {
        self.job.total_work = w;
        self
    }

    /// Set the per-unit resource demand.
    pub fn demand_per_unit(mut self, d: ResourceVector) -> Self {
        self.job.demand_per_unit = d;
        self
    }

    /// Set the elasticity range `[min, max]`.
    pub fn parallelism_range(mut self, min: u32, max: u32) -> Self {
        self.job.min_parallelism = min;
        self.job.max_parallelism = max.max(min);
        self
    }

    /// Set the speedup model.
    pub fn speedup(mut self, model: SpeedupModel) -> Self {
        self.job.speedup = model;
        self
    }

    /// Set the absolute deadline.
    pub fn deadline(mut self, d: f64) -> Self {
        self.job.deadline = d;
        self
    }

    /// Set the time-utility function.
    pub fn utility(mut self, u: TimeUtility) -> Self {
        self.job.utility = u;
        self
    }

    /// Mark the job rigid (non-malleable).
    pub fn rigid(mut self) -> Self {
        self.job.malleable = false;
        self
    }

    /// Set malleability explicitly.
    pub fn malleable(mut self, malleable: bool) -> Self {
        self.job.malleable = malleable;
        self
    }

    /// Finish building. Panics if the job is structurally invalid, which only
    /// happens on programmer error (tests cover the validation separately).
    pub fn build(self) -> Job {
        self.job
            .validate()
            .map(|_| self.job)
            .expect("JobBuilder produced an invalid job")
    }

    /// Finish building without panicking.
    pub fn try_build(self) -> Result<Job, String> {
        self.job.validate().map(|_| self.job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> Job {
        Job::builder(JobId(1), JobClass::Batch)
            .arrival(5.0)
            .total_work(20.0)
            .parallelism_range(1, 8)
            .deadline(45.0)
            .build()
    }

    #[test]
    fn job_class_index_roundtrip() {
        for (i, c) in JobClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(JobClass::from_index(i), *c);
        }
    }

    #[test]
    fn speedup_models_are_normalised_at_one() {
        let models = [
            SpeedupModel::Linear,
            SpeedupModel::Amdahl {
                serial_fraction: 0.1,
            },
            SpeedupModel::Power { alpha: 0.7 },
        ];
        for m in models {
            assert!((m.speedup(1) - 1.0).abs() < 1e-12, "{m:?}");
        }
    }

    #[test]
    fn speedup_is_monotone_and_sublinear_for_amdahl() {
        let m = SpeedupModel::Amdahl {
            serial_fraction: 0.2,
        };
        let mut prev = 0.0;
        for p in 1..=32 {
            let s = m.speedup(p);
            assert!(s >= prev);
            assert!(s <= p as f64 + 1e-12);
            prev = s;
        }
        // Amdahl asymptote is 1/serial_fraction.
        assert!(m.speedup(10_000) < 5.0 + 1e-6);
    }

    #[test]
    fn marginal_gain_decreases() {
        let m = SpeedupModel::Power { alpha: 0.6 };
        assert!(m.marginal_gain(1) > m.marginal_gain(4));
        assert!(m.marginal_gain(4) > m.marginal_gain(16));
    }

    #[test]
    fn utility_full_before_deadline_and_decays_after() {
        let u = TimeUtility::soft(10.0, 0.5);
        // relative deadline = 40, grace = 20
        assert_eq!(u.utility(5.0, 45.0, 30.0), 10.0);
        assert_eq!(u.utility(5.0, 45.0, 45.0), 10.0);
        let half = u.utility(5.0, 45.0, 55.0);
        assert!((half - 5.0).abs() < 1e-9);
        assert_eq!(u.utility(5.0, 45.0, 100.0), 0.0);
    }

    #[test]
    fn hard_utility_is_all_or_nothing() {
        let u = TimeUtility::hard(3.0);
        assert_eq!(u.utility(0.0, 10.0, 10.0), 3.0);
        assert_eq!(u.utility(0.0, 10.0, 10.0001), 0.0);
    }

    #[test]
    fn service_time_uses_speed_and_speedup() {
        let j = job();
        // speed 2.0, parallelism 1 -> 20 / 2 = 10
        assert!((j.service_time(2.0, 1) - 10.0).abs() < 1e-9);
        // linear part of Amdahl default keeps it below 10 at p=4
        assert!(j.service_time(2.0, 4) < 10.0);
    }

    #[test]
    fn slack_sign_reflects_feasibility() {
        let j = job();
        // at t=5 with 20 units remaining and rate 1 -> finish 25 < 45: slack 20
        assert!((j.slack(5.0, 20.0, 1.0) - 20.0).abs() < 1e-9);
        // rate 0.4 -> finish at 55 > 45: negative slack
        assert!(j.slack(5.0, 20.0, 0.4) < 0.0);
    }

    #[test]
    fn clamp_parallelism_honours_rigidity() {
        let j = job();
        assert_eq!(j.clamp_parallelism(0), 1);
        assert_eq!(j.clamp_parallelism(100), 8);
        let rigid = Job::builder(JobId(2), JobClass::Stream)
            .parallelism_range(2, 6)
            .deadline(10.0)
            .rigid()
            .build();
        assert_eq!(rigid.clamp_parallelism(5), 2);
        assert_eq!(rigid.parallelism_levels(), 1);
    }

    #[test]
    fn validation_catches_bad_jobs() {
        let bad = Job::builder(JobId(3), JobClass::Batch)
            .total_work(0.0)
            .try_build();
        assert!(bad.is_err());
        let bad = Job::builder(JobId(4), JobClass::Batch)
            .arrival(10.0)
            .deadline(5.0)
            .try_build();
        assert!(bad.is_err());
    }

    #[test]
    fn builder_defaults_are_valid() {
        let j = Job::builder(JobId(9), JobClass::MlInference).build();
        assert!(j.validate().is_ok());
        assert!(j.malleable);
    }
}
