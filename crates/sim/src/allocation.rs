//! Allocations: where the parallel units of a running job live.
//!
//! An elastic job runs all of its units on machines of a *single* node class
//! (so the whole job executes at that class's speed factor), but the units may
//! be spread across several machines of that class. The [`Allocation`] records
//! the per-node placement so resources can be released or partially released
//! on scale-down.

use crate::job::JobId;
use crate::node::{NodeClassId, NodeId};
use crate::resources::ResourceVector;
use serde::{Deserialize, Serialize};

/// Units placed on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// The machine.
    pub node: NodeId,
    /// Number of parallel units of the job placed on that machine.
    pub units: u32,
}

/// The complete placement of one running job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// The job this allocation belongs to.
    pub job: JobId,
    /// Node class all placements belong to.
    pub class: NodeClassId,
    /// Per-node placements (non-empty, units all > 0).
    pub placements: Vec<Placement>,
    /// Resource demand of a single unit (copied from the job for convenient
    /// release computations).
    pub demand_per_unit: ResourceVector,
}

impl Allocation {
    /// Create an allocation; filters out zero-unit placements.
    pub fn new(
        job: JobId,
        class: NodeClassId,
        placements: Vec<Placement>,
        demand_per_unit: ResourceVector,
    ) -> Self {
        Allocation {
            job,
            class,
            placements: placements.into_iter().filter(|p| p.units > 0).collect(),
            demand_per_unit,
        }
    }

    /// Total number of parallel units currently allocated.
    pub fn total_units(&self) -> u32 {
        self.placements.iter().map(|p| p.units).sum()
    }

    /// Total resources held by this allocation.
    pub fn total_demand(&self) -> ResourceVector {
        self.demand_per_unit.scaled(self.total_units() as f64)
    }

    /// Resources held on one specific node.
    pub fn demand_on(&self, node: NodeId) -> ResourceVector {
        let units: u32 = self
            .placements
            .iter()
            .filter(|p| p.node == node)
            .map(|p| p.units)
            .sum();
        self.demand_per_unit.scaled(units as f64)
    }

    /// Nodes touched by this allocation.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.placements.iter().map(|p| p.node)
    }

    /// Remove up to `units` units, preferring the placements with the fewest
    /// units first (so scale-down frees whole nodes as quickly as possible).
    /// Returns the placements that were released (for the cluster to free).
    pub fn shrink(&mut self, units: u32) -> Vec<Placement> {
        let mut to_remove = units;
        let mut released = Vec::new();
        // Sort ascending by units so small fragments are vacated first.
        self.placements.sort_by_key(|p| p.units);
        for p in &mut self.placements {
            if to_remove == 0 {
                break;
            }
            let take = p.units.min(to_remove);
            p.units -= take;
            to_remove -= take;
            if take > 0 {
                released.push(Placement {
                    node: p.node,
                    units: take,
                });
            }
        }
        self.placements.retain(|p| p.units > 0);
        released
    }

    /// Add placements from a grow operation, merging with existing entries for
    /// the same node.
    pub fn grow(&mut self, additional: &[Placement]) {
        for add in additional {
            if add.units == 0 {
                continue;
            }
            if let Some(existing) = self.placements.iter_mut().find(|p| p.node == add.node) {
                existing.units += add.units;
            } else {
                self.placements.push(*add);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc() -> Allocation {
        Allocation::new(
            JobId(7),
            NodeClassId(1),
            vec![
                Placement {
                    node: NodeId(0),
                    units: 3,
                },
                Placement {
                    node: NodeId(1),
                    units: 1,
                },
            ],
            ResourceVector::of(2.0, 4.0, 0.0, 0.5),
        )
    }

    #[test]
    fn totals() {
        let a = alloc();
        assert_eq!(a.total_units(), 4);
        assert_eq!(a.total_demand(), ResourceVector::of(8.0, 16.0, 0.0, 2.0));
        assert_eq!(
            a.demand_on(NodeId(1)),
            ResourceVector::of(2.0, 4.0, 0.0, 0.5)
        );
        assert_eq!(a.demand_on(NodeId(9)), ResourceVector::zero());
    }

    #[test]
    fn zero_unit_placements_are_dropped() {
        let a = Allocation::new(
            JobId(1),
            NodeClassId(0),
            vec![Placement {
                node: NodeId(0),
                units: 0,
            }],
            ResourceVector::zero(),
        );
        assert!(a.placements.is_empty());
        assert_eq!(a.total_units(), 0);
    }

    #[test]
    fn shrink_prefers_small_fragments_and_reports_released() {
        let mut a = alloc();
        let released = a.shrink(2);
        // The 1-unit placement on node 1 goes first, then one unit from node 0.
        assert_eq!(a.total_units(), 2);
        let total_released: u32 = released.iter().map(|p| p.units).sum();
        assert_eq!(total_released, 2);
        assert!(released.iter().any(|p| p.node == NodeId(1) && p.units == 1));
        assert!(a.placements.iter().all(|p| p.units > 0));
    }

    #[test]
    fn shrink_more_than_available_empties_allocation() {
        let mut a = alloc();
        let released = a.shrink(100);
        assert_eq!(a.total_units(), 0);
        assert!(a.placements.is_empty());
        assert_eq!(released.iter().map(|p| p.units).sum::<u32>(), 4);
    }

    #[test]
    fn grow_merges_same_node() {
        let mut a = alloc();
        a.grow(&[
            Placement {
                node: NodeId(0),
                units: 2,
            },
            Placement {
                node: NodeId(5),
                units: 1,
            },
            Placement {
                node: NodeId(6),
                units: 0,
            },
        ]);
        assert_eq!(a.total_units(), 7);
        assert_eq!(a.placements.len(), 3);
        assert_eq!(
            a.placements
                .iter()
                .find(|p| p.node == NodeId(0))
                .unwrap()
                .units,
            5
        );
    }
}
