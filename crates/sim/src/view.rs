//! Scheduler-facing snapshot of the simulation state.
//!
//! A [`ClusterView`] is built by the engine at every decision epoch. It owns
//! its data (no borrows into the engine) so policies can keep it around, ship
//! it to an RL replay buffer, or serialise it for debugging.

use crate::config::ClusterSpec;
use crate::fit_index::FitIndex;
use crate::job::{Job, JobClass, JobId, SpeedupModel};
use crate::node::NodeClassId;
use crate::resources::ResourceVector;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Per-node-class aggregate information.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeClassView {
    /// Class id.
    pub id: NodeClassId,
    /// Human-readable name.
    pub name: String,
    /// Number of machines in the class.
    pub node_count: usize,
    /// Total capacity of the class.
    pub total_capacity: ResourceVector,
    /// Free capacity aggregated over the class.
    pub free_capacity: ResourceVector,
    /// Free capacity of each machine in the class (for fragmentation-aware
    /// feasibility checks), in node-id order.
    pub node_free: Vec<ResourceVector>,
    /// Per-node capacity (uniform within a class) — the denominator of the
    /// fit-index bucket ranks, taken straight from the spec so view-side
    /// ranks are bit-identical to the cluster's. Defaults to zero on
    /// legacy-deserialized views (every node then ties at the top rank).
    #[serde(default)]
    pub unit_capacity: ResourceVector,
    /// Bucketed free-capacity index over [`Self::node_free`] (same structure
    /// the cluster maintains), kept current by [`Self::set_node_free`] /
    /// [`Self::rebuild_fit_index`]. A pure function of `node_free`, so the
    /// derived `PartialEq` stays a pure state comparison. Counting queries
    /// walk it emptiest-first to reach their cap after the fewest nodes;
    /// when it is absent (fabricated or legacy-deserialized views) they
    /// lawfully fall back to the plain slice walk.
    #[serde(default)]
    pub fit_index: FitIndex,
    /// Speed factor per job class ([`JobClass::ALL`] order).
    pub speed_factors: [f64; JobClass::COUNT],
}

impl NodeClassView {
    /// How many units of `per_unit` demand can still be placed on this class,
    /// respecting per-node fragmentation. Saturating — at 64k nodes the raw
    /// per-node sum can exceed `u32::MAX`.
    pub fn units_available(&self, per_unit: &ResourceVector) -> u32 {
        if per_unit.total() <= 0.0 {
            return u32::MAX;
        }
        self.node_free.iter().fold(0u32, |acc, free| {
            acc.saturating_add(unit_fit(free, per_unit))
        })
    }

    /// True when the fit index covers every node of the class (always for
    /// engine-built views; false for fabricated or legacy-deserialized ones,
    /// which fall back to the plain walk).
    #[inline]
    fn fit_index_valid(&self) -> bool {
        self.fit_index.len() == self.node_free.len()
    }

    /// Rebuild [`Self::fit_index`] from the current [`Self::node_free`] rows
    /// (the engine calls this after a full view rebuild; incremental refills
    /// go through [`Self::set_node_free`]).
    pub fn rebuild_fit_index(&mut self) {
        let cap = self.unit_capacity;
        self.fit_index.rebuild(&cap, self.node_free.iter().copied());
    }

    /// Update one node's free vector, keeping the fit index in step (the
    /// incremental-view `NodeFree` delta lands here).
    pub fn set_node_free(&mut self, index: usize, free: ResourceVector) {
        let valid = self.fit_index_valid();
        self.node_free[index] = free;
        if valid {
            self.fit_index.update(index, &free, &self.unit_capacity);
        }
    }

    /// Upper bound on placeable units from the class-level free-capacity
    /// aggregate, ignoring fragmentation. Never below the true per-node
    /// answer, and O(resource dims) instead of O(nodes) — the fast
    /// infeasibility screen for saturated classes.
    #[inline]
    pub fn aggregate_unit_bound(&self, per_unit: &ResourceVector) -> u32 {
        unit_fit(&self.free_capacity, per_unit)
    }

    /// [`Self::units_available`], stopping as soon as `cap` units are
    /// proven placeable: returns `min(units_available, cap)`.
    ///
    /// Feasibility queries never need more than the requested parallelism,
    /// so this replaces the full node walk in the hot scheduler paths with
    /// (a) the O(dims) aggregate screen — which alone rejects requests on
    /// saturated classes, the common case under load — and (b) a walk over
    /// the fit index in emptiest-first order that exits as soon as the
    /// target is reached (typically after one or two machines on an
    /// unsaturated class, and after the *fewest possible* machines because
    /// the emptiest nodes contribute the most units). The sum is
    /// iteration-order-independent, so the plain-slice fallback for views
    /// without an index returns the identical answer.
    pub fn units_available_capped(&self, per_unit: &ResourceVector, cap: u32) -> u32 {
        if per_unit.total() <= 0.0 {
            return cap;
        }
        if cap == 0 {
            return 0;
        }
        let bound = self.aggregate_unit_bound(per_unit);
        if bound == 0 {
            return 0;
        }
        let cap = cap.min(bound);
        let mut total = 0u32;
        if self.fit_index_valid() {
            for idx in self.fit_index.nodes_desc() {
                total = total.saturating_add(unit_fit(&self.node_free[idx], per_unit));
                if total >= cap {
                    return cap;
                }
            }
        } else {
            for free in &self.node_free {
                total = total.saturating_add(unit_fit(free, per_unit));
                if total >= cap {
                    return cap;
                }
            }
        }
        total
    }

    /// True when `units` units of `per_unit` demand fit on this class right
    /// now (fragmentation-aware, early-exiting).
    pub fn can_host(&self, per_unit: &ResourceVector, units: u32) -> bool {
        self.units_available_capped(per_unit, units) >= units
    }

    /// Speed factor for one job class.
    pub fn speed_factor(&self, class: JobClass) -> f64 {
        self.speed_factors[class.index()]
    }

    /// Scalar utilisation of the class (capacity-weighted across dimensions).
    pub fn utilization(&self) -> f64 {
        let used = self.total_capacity.saturating_sub(&self.free_capacity);
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..crate::resources::NUM_RESOURCES {
            if self.total_capacity.0[i] > 0.0 {
                num += used.0[i];
                den += self.total_capacity.0[i];
            }
        }
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }
}

/// Whole units of `per_unit` demand fitting into `free` capacity (0 when
/// no dimension carries positive demand — callers screen zero-demand
/// requests first). Tracks demand presence with a flag rather than a
/// `u32::MAX` sentinel: the saturating float→u32 cast legitimately
/// produces `u32::MAX` on huge aggregates (e.g. 64k nodes × megabyte-scale
/// capacity against a unit demand), which a sentinel would misread as 0.
#[inline]
fn unit_fit(free: &ResourceVector, per_unit: &ResourceVector) -> u32 {
    let mut fit = u32::MAX;
    let mut any_demand = false;
    for i in 0..crate::resources::NUM_RESOURCES {
        let d = per_unit.0[i];
        if d > 0.0 {
            any_demand = true;
            fit = fit.min(((free.0[i] + 1e-9) / d).floor().max(0.0) as u32);
        }
    }
    if any_demand {
        fit
    } else {
        0
    }
}

/// A job waiting in the queue, as seen by the scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PendingJobView {
    /// Job id.
    pub id: JobId,
    /// Workload class.
    pub class: JobClass,
    /// Arrival time.
    pub arrival: f64,
    /// Absolute deadline.
    pub deadline: f64,
    /// Total work.
    pub total_work: f64,
    /// Per-unit resource demand.
    pub demand_per_unit: ResourceVector,
    /// Minimum parallelism.
    pub min_parallelism: u32,
    /// Maximum parallelism.
    pub max_parallelism: u32,
    /// Speedup model.
    pub speedup: SpeedupModel,
    /// Whether the job may be re-scaled after starting.
    pub malleable: bool,
    /// Utility earned when meeting the deadline.
    pub utility_value: f64,
    /// How long the job has been waiting (now − arrival).
    pub wait: f64,
}

impl PendingJobView {
    fn from_job(job: &Job, now: f64) -> Self {
        PendingJobView {
            id: job.id,
            class: job.class,
            arrival: job.arrival,
            deadline: job.deadline,
            total_work: job.total_work,
            demand_per_unit: job.demand_per_unit,
            min_parallelism: job.min_parallelism,
            max_parallelism: job.max_parallelism,
            speedup: job.speedup,
            malleable: job.malleable,
            utility_value: job.utility.value,
            wait: (now - job.arrival).max(0.0),
        }
    }

    /// Time remaining until the deadline (may be negative).
    pub fn time_to_deadline(&self, now: f64) -> f64 {
        self.deadline - now
    }

    /// Estimated service time on a node class at a given parallelism.
    pub fn service_time_on(&self, class: &NodeClassView, parallelism: u32) -> f64 {
        let speed = class.speed_factor(self.class).max(1e-9);
        self.total_work / (speed * self.speedup.speedup(parallelism))
    }

    /// Slack if started now on `class` with `parallelism` units: time to
    /// deadline minus estimated service time. Negative means the deadline
    /// would be missed even if started immediately.
    pub fn slack_on(&self, now: f64, class: &NodeClassView, parallelism: u32) -> f64 {
        self.time_to_deadline(now) - self.service_time_on(class, parallelism)
    }

    /// The smallest parallelism (within the job's range) whose slack on
    /// `class` is non-negative, or `None` if even the maximum parallelism
    /// misses the deadline.
    pub fn min_parallelism_meeting_deadline(&self, now: f64, class: &NodeClassView) -> Option<u32> {
        (self.min_parallelism..=self.max_parallelism).find(|&p| self.slack_on(now, class, p) >= 0.0)
    }
}

/// A running job, as seen by the scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunningJobView {
    /// Job id.
    pub id: JobId,
    /// Workload class.
    pub class: JobClass,
    /// Node class the job is placed on.
    pub node_class: NodeClassId,
    /// Current degree of parallelism.
    pub units: u32,
    /// Remaining work.
    pub remaining_work: f64,
    /// Total work at submission.
    pub total_work: f64,
    /// Arrival time.
    pub arrival: f64,
    /// Time the job started executing.
    pub started_at: f64,
    /// Absolute deadline.
    pub deadline: f64,
    /// Per-unit demand.
    pub demand_per_unit: ResourceVector,
    /// Minimum parallelism.
    pub min_parallelism: u32,
    /// Maximum parallelism.
    pub max_parallelism: u32,
    /// Speedup model.
    pub speedup: SpeedupModel,
    /// Whether the job may be re-scaled.
    pub malleable: bool,
    /// Current execution rate in work units per second.
    pub rate: f64,
    /// Utility earned when meeting the deadline.
    pub utility_value: f64,
    /// True when the engine would currently accept a re-scaling of this job
    /// (scaling enabled and the reconfiguration cooldown has elapsed).
    pub scale_ready: bool,
}

impl RunningJobView {
    /// Expected finish time at the current rate.
    pub fn expected_finish(&self, now: f64) -> f64 {
        now + self.remaining_work / self.rate.max(1e-9)
    }

    /// Slack at the current rate (negative means the deadline will be missed
    /// without scaling up).
    pub fn slack(&self, now: f64) -> f64 {
        self.deadline - self.expected_finish(now)
    }
}

/// Synchronisation cookie of the incremental view maintenance protocol.
///
/// A [`ClusterView`] refilled by [`crate::engine::Simulator::view_into`]
/// remembers which simulator instance, run and change-log position it
/// mirrors; a matching cookie lets the next refill apply only the deltas
/// recorded since, anything else falls back to a full rebuild. The cookie is
/// engine-owned state: it never serialises and a fabricated or deserialized
/// view starts unsynced (cookie zeroed), which is always safe — the first
/// refill rebuilds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct ViewSync {
    /// Identity of the simulator the view last mirrored (0 = never synced).
    pub sim_id: u64,
    /// The simulator's run epoch (bumped on every reset) at last refill.
    pub run_epoch: u64,
    /// Change-log position up to which deltas have been applied.
    pub log_pos: usize,
}

/// The complete decision-epoch snapshot handed to a [`crate::scheduler::Scheduler`].
///
/// Views are **engine-maintained**: between two refills by the same
/// simulator the engine patches only what changed (see
/// [`crate::engine::Simulator::view_into`]). Do not structurally mutate a
/// view that will be refilled again — clone it first (schedulers receive
/// `&ClusterView` and cannot, but tests holding the buffer could).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterView {
    /// Current simulated time.
    pub time: f64,
    /// Cluster specification (shared, cheap to clone).
    pub spec: Arc<ClusterSpec>,
    /// Per node class aggregates, indexed by `NodeClassId`.
    pub classes: Vec<NodeClassView>,
    /// Pending jobs in arrival order.
    pub pending: Vec<PendingJobView>,
    /// Running jobs in start order.
    pub running: Vec<RunningJobView>,
    /// Number of jobs that have not yet arrived.
    pub future_arrivals: usize,
    /// Indices into [`Self::pending`] ordered by `(deadline, id)` — the
    /// engine-maintained deadline index. EDF-family schedulers and the DRL
    /// queue-slot encoder iterate [`Self::pending_in_deadline_order`]
    /// instead of re-sorting the queue at every decision.
    #[serde(default)]
    pub pending_by_deadline: Vec<u32>,
    /// Sum of `total_work` over the pending jobs (maintained alongside the
    /// rows so feature extraction reads it instead of re-summing).
    #[serde(default)]
    pub pending_work_total: f64,
    /// Incremental-refill cookie (engine-owned, never serialised).
    #[serde(skip)]
    pub(crate) sync: ViewSync,
}

impl ClusterView {
    /// Build a view (used by the engine; exposed for tests of downstream
    /// schedulers that want to fabricate synthetic views). The deadline
    /// index and pending-work aggregate are derived from `pending`.
    pub fn new(
        time: f64,
        spec: Arc<ClusterSpec>,
        classes: Vec<NodeClassView>,
        pending: Vec<PendingJobView>,
        running: Vec<RunningJobView>,
        future_arrivals: usize,
    ) -> Self {
        let pending_by_deadline = Self::sorted_deadline_index(&pending);
        let pending_work_total = pending.iter().map(|j| j.total_work).sum();
        ClusterView {
            time,
            spec,
            classes,
            pending,
            running,
            future_arrivals,
            pending_by_deadline,
            pending_work_total,
            sync: ViewSync::default(),
        }
    }

    /// Compute the `(deadline, id)`-sorted index over a pending-row slice
    /// from scratch (the full-rebuild reference for the engine-maintained
    /// index).
    pub fn sorted_deadline_index(pending: &[PendingJobView]) -> Vec<u32> {
        let mut index = Vec::new();
        Self::fill_sorted_deadline_index(pending, &mut index);
        index
    }

    /// [`Self::sorted_deadline_index`] into a caller-retained buffer
    /// (allocation-free once `out` has capacity; `sort_unstable` sorts in
    /// place).
    pub fn fill_sorted_deadline_index(pending: &[PendingJobView], out: &mut Vec<u32>) {
        out.clear();
        out.extend(0..pending.len() as u32);
        out.sort_unstable_by(|&a, &b| {
            let (ja, jb) = (&pending[a as usize], &pending[b as usize]);
            ja.deadline
                .partial_cmp(&jb.deadline)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(ja.id.cmp(&jb.id))
        });
    }

    /// Pending jobs in `(deadline, id)` order, straight from the maintained
    /// index — no sort.
    pub fn pending_in_deadline_order(&self) -> impl Iterator<Item = &PendingJobView> + '_ {
        debug_assert_eq!(self.pending_by_deadline.len(), self.pending.len());
        self.pending_by_deadline
            .iter()
            .map(move |&i| &self.pending[i as usize])
    }

    /// One class view by id.
    pub fn class(&self, id: NodeClassId) -> &NodeClassView {
        &self.classes[id.0]
    }

    /// Number of node classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Find a pending job by id.
    pub fn pending_job(&self, id: JobId) -> Option<&PendingJobView> {
        self.pending.iter().find(|j| j.id == id)
    }

    /// Find a running job by id.
    pub fn running_job(&self, id: JobId) -> Option<&RunningJobView> {
        self.running.iter().find(|j| j.id == id)
    }

    /// Can `parallelism` units of this pending job be placed on `class` right
    /// now? (Fragmentation-aware; screened through the class free-capacity
    /// aggregate and early-exiting, so a saturated class answers in O(dims)
    /// and an open one after a node or two — never a full node walk.)
    pub fn can_start(&self, job: &PendingJobView, class: NodeClassId, parallelism: u32) -> bool {
        if parallelism < job.min_parallelism || parallelism > job.max_parallelism {
            return false;
        }
        self.classes[class.0].can_host(&job.demand_per_unit, parallelism)
    }

    /// The largest feasible parallelism for `job` on `class`, capped by the
    /// job's maximum, or `None` if not even the minimum fits. (Counts at
    /// most `max_parallelism` units — same screens as [`Self::can_start`].)
    pub fn max_feasible_parallelism(
        &self,
        job: &PendingJobView,
        class: NodeClassId,
    ) -> Option<u32> {
        let feasible =
            self.classes[class.0].units_available_capped(&job.demand_per_unit, job.max_parallelism);
        if feasible >= job.min_parallelism {
            Some(feasible)
        } else {
            None
        }
    }

    /// Overall cluster utilisation in `[0, 1]` (capacity weighted).
    pub fn overall_utilization(&self) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for c in &self.classes {
            let used = c.total_capacity.saturating_sub(&c.free_capacity);
            for i in 0..crate::resources::NUM_RESOURCES {
                if c.total_capacity.0[i] > 0.0 {
                    num += used.0[i];
                    den += c.total_capacity.0[i];
                }
            }
        }
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }

    /// Build the pending-job view (helper for the engine and for synthetic
    /// views in tests).
    pub fn pending_view_of(job: &Job, now: f64) -> PendingJobView {
        PendingJobView::from_job(job, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterSpec, NodeClassSpec};
    use crate::node::SpeedProfile;

    fn make_view() -> ClusterView {
        let spec = Arc::new(ClusterSpec::new(vec![NodeClassSpec::new(
            "generic",
            2,
            ResourceVector::of(8.0, 32.0, 0.0, 10.0),
            SpeedProfile::uniform(2.0),
        )]));
        let mut class_view = NodeClassView {
            id: NodeClassId(0),
            name: "generic".into(),
            node_count: 2,
            total_capacity: ResourceVector::of(16.0, 64.0, 0.0, 20.0),
            free_capacity: ResourceVector::of(12.0, 48.0, 0.0, 16.0),
            node_free: vec![
                ResourceVector::of(4.0, 16.0, 0.0, 6.0),
                ResourceVector::of(8.0, 32.0, 0.0, 10.0),
            ],
            unit_capacity: ResourceVector::of(8.0, 32.0, 0.0, 10.0),
            fit_index: FitIndex::default(),
            speed_factors: [2.0; JobClass::COUNT],
        };
        class_view.rebuild_fit_index();
        let job = Job::builder(JobId(1), JobClass::Batch)
            .arrival(0.0)
            .total_work(40.0)
            .demand_per_unit(ResourceVector::of(2.0, 4.0, 0.0, 1.0))
            .parallelism_range(1, 6)
            .deadline(30.0)
            .build();
        ClusterView::new(
            10.0,
            spec,
            vec![class_view],
            vec![ClusterView::pending_view_of(&job, 10.0)],
            vec![],
            3,
        )
    }

    #[test]
    fn units_available_respects_fragmentation() {
        let view = make_view();
        let per_unit = ResourceVector::of(3.0, 4.0, 0.0, 1.0);
        // node 0 fits 1 (4/3), node 1 fits 2 (8/3) -> 3
        assert_eq!(view.classes[0].units_available(&per_unit), 3);
    }

    #[test]
    fn capped_units_match_full_count_up_to_the_cap() {
        let view = make_view();
        let class = &view.classes[0];
        for per_unit in [
            ResourceVector::of(3.0, 4.0, 0.0, 1.0),
            ResourceVector::of(1.0, 2.0, 0.0, 0.5),
            ResourceVector::of(100.0, 1.0, 0.0, 0.0), // fits nowhere
        ] {
            let full = class.units_available(&per_unit);
            for cap in 0..12u32 {
                assert_eq!(
                    class.units_available_capped(&per_unit, cap),
                    full.min(cap),
                    "cap {cap} demand {per_unit}"
                );
                assert_eq!(class.can_host(&per_unit, cap), full >= cap, "cap {cap}");
            }
            // The aggregate screen is a true upper bound.
            assert!(class.aggregate_unit_bound(&per_unit) >= full);
        }
    }

    #[test]
    fn indexed_and_plain_counting_agree() {
        // A view without a fit index (fabricated/legacy) must count exactly
        // like the indexed one — the sum is iteration-order-independent.
        let view = make_view();
        let indexed = &view.classes[0];
        let mut plain = indexed.clone();
        plain.fit_index = FitIndex::default();
        for per_unit in [
            ResourceVector::of(3.0, 4.0, 0.0, 1.0),
            ResourceVector::of(1.0, 2.0, 0.0, 0.5),
            ResourceVector::of(100.0, 1.0, 0.0, 0.0),
        ] {
            assert_eq!(
                indexed.units_available(&per_unit),
                plain.units_available(&per_unit)
            );
            for cap in 0..12u32 {
                assert_eq!(
                    indexed.units_available_capped(&per_unit, cap),
                    plain.units_available_capped(&per_unit, cap),
                    "cap {cap} demand {per_unit}"
                );
            }
        }
    }

    #[test]
    fn set_node_free_keeps_index_in_step() {
        let mut view = make_view();
        let class = &mut view.classes[0];
        // Drain node 1, free node 0 fully: count must track exactly.
        class.set_node_free(1, ResourceVector::zero());
        class.set_node_free(0, ResourceVector::of(8.0, 32.0, 0.0, 10.0));
        let per_unit = ResourceVector::of(3.0, 4.0, 0.0, 1.0);
        assert_eq!(class.units_available(&per_unit), 2);
        assert_eq!(class.units_available_capped(&per_unit, 10), 2);
        // The incrementally maintained index equals a fresh rebuild.
        let mut rebuilt = class.clone();
        rebuilt.rebuild_fit_index();
        assert_eq!(*class, rebuilt);
    }

    #[test]
    fn deadline_order_iterates_by_deadline_then_id() {
        let mut view = make_view();
        let base = view.pending[0].clone();
        view.pending = vec![
            PendingJobView {
                id: JobId(5),
                deadline: 30.0,
                ..base.clone()
            },
            PendingJobView {
                id: JobId(1),
                deadline: 10.0,
                ..base.clone()
            },
            PendingJobView {
                id: JobId(9),
                deadline: 10.0,
                ..base.clone()
            },
            PendingJobView {
                id: JobId(3),
                deadline: 20.0,
                ..base
            },
        ];
        view.pending_by_deadline = ClusterView::sorted_deadline_index(&view.pending);
        let ids: Vec<u64> = view.pending_in_deadline_order().map(|j| j.id.0).collect();
        assert_eq!(ids, vec![1, 9, 3, 5]);
    }

    #[test]
    fn pending_view_carries_wait_and_slack() {
        let view = make_view();
        let j = &view.pending[0];
        assert!((j.wait - 10.0).abs() < 1e-9);
        // service time at p=1: 40 / (2*1) = 20, time to deadline = 20 -> slack 0
        assert!((j.slack_on(10.0, &view.classes[0], 1)).abs() < 1e-9);
        assert!(j.slack_on(10.0, &view.classes[0], 4) > 0.0);
        assert_eq!(
            j.min_parallelism_meeting_deadline(10.0, &view.classes[0]),
            Some(1)
        );
    }

    #[test]
    fn can_start_checks_range_and_capacity() {
        let view = make_view();
        let j = view.pending[0].clone();
        assert!(view.can_start(&j, NodeClassId(0), 1));
        assert!(view.can_start(&j, NodeClassId(0), 6));
        assert!(!view.can_start(&j, NodeClassId(0), 7)); // above job max
        let fat = PendingJobView {
            demand_per_unit: ResourceVector::of(5.0, 4.0, 0.0, 1.0),
            ..j
        };
        // node0 fits 0, node1 fits 1 -> max feasible 1
        assert_eq!(view.max_feasible_parallelism(&fat, NodeClassId(0)), Some(1));
        assert!(!view.can_start(&fat, NodeClassId(0), 2));
    }

    #[test]
    fn running_view_slack() {
        let r = RunningJobView {
            id: JobId(2),
            class: JobClass::Stream,
            node_class: NodeClassId(0),
            units: 2,
            remaining_work: 10.0,
            total_work: 20.0,
            arrival: 0.0,
            started_at: 1.0,
            deadline: 20.0,
            demand_per_unit: ResourceVector::of(1.0, 1.0, 0.0, 0.1),
            min_parallelism: 1,
            max_parallelism: 4,
            speedup: SpeedupModel::Linear,
            malleable: true,
            rate: 2.0,
            utility_value: 1.0,
            scale_ready: true,
        };
        assert!((r.expected_finish(10.0) - 15.0).abs() < 1e-9);
        assert!((r.slack(10.0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_of_synthetic_view() {
        let view = make_view();
        let u = view.overall_utilization();
        assert!(u > 0.0 && u < 1.0);
        let cu = view.classes[0].utilization();
        assert!((cu - u).abs() < 1e-9); // single class
    }
}
