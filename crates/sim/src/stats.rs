//! Small statistics helpers shared by the metrics module, the workload
//! generator and the benchmark harness.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation; 0.0 for fewer than two samples.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// Percentile via linear interpolation between closest ranks.
/// `p` is in `[0, 100]`. Returns 0.0 for an empty slice.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Minimum; 0.0 for an empty slice.
pub fn min(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().cloned().fold(f64::INFINITY, f64::min)
}

/// Maximum; 0.0 for an empty slice.
pub fn max(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
}

/// Jain's fairness index: `(Σx)² / (n · Σx²)`.
///
/// It is 1 when every value is identical and approaches `1/n` when a single
/// value dominates. Values are expected to be non-negative (per-job slowdowns,
/// per-class allocations, …); an empty slice or an all-zero slice returns 1.0
/// (perfectly fair by convention: nobody got anything or nobody was delayed).
pub fn jain_fairness(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if sum_sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (values.len() as f64 * sum_sq)
}

/// Online mean/variance accumulator (Welford's algorithm). Useful when the
/// benchmark harness streams per-seed results without storing them all.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one sample in.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (0.0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        assert!((std_dev(&v) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert!((percentile(&v, 50.0) - 3.0).abs() < 1e-12);
        assert!((percentile(&v, 25.0) - 2.0).abs() < 1e-12);
        assert!((percentile(&v, 90.0) - 4.6).abs() < 1e-12);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn min_max_handle_empty() {
        let v = [3.0, -1.0, 2.0];
        assert_eq!(min(&v), -1.0);
        assert_eq!(max(&v), 3.0);
        assert_eq!(min(&[]), 0.0);
        assert_eq!(max(&[]), 0.0);
    }

    #[test]
    fn jain_fairness_bounds_and_extremes() {
        // Identical values are perfectly fair.
        assert!((jain_fairness(&[3.0, 3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12);
        // One dominant value approaches 1/n.
        let skewed = jain_fairness(&[100.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12);
        // Known textbook value: (1+2+3)^2 / (3 * (1+4+9)) = 36/42.
        assert!((jain_fairness(&[1.0, 2.0, 3.0]) - 36.0 / 42.0).abs() < 1e-12);
        // Conventions for degenerate inputs.
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
        // Always within (0, 1].
        let v = [0.1, 5.0, 2.2, 7.9, 0.4];
        let f = jain_fairness(&v);
        assert!(f > 0.0 && f <= 1.0);
    }

    #[test]
    fn welford_matches_batch() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for x in v {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - mean(&v)).abs() < 1e-12);
        // Welford computes the *sample* std dev, convert batch population std.
        let sample_var = v.iter().map(|x| (x - 5.0) * (x - 5.0)).sum::<f64>() / 7.0;
        assert!((w.variance() - sample_var).abs() < 1e-12);
        assert_eq!(Welford::new().mean(), 0.0);
    }
}
