//! The bucketed free-capacity placement index.
//!
//! Worst-fit placement used to be a sorted walk over a class's node slice on
//! every job start — O(n log n) per decision, the scale ceiling named in the
//! ROADMAP. The fix is to key worst-fit on a **demand-independent** quantity
//! that can be maintained incrementally: each node's *scarcest relative free
//! resource* (the minimum of `free_i / capacity_i` over the dimensions the
//! class actually has), quantised to its floor-log2 bucket. Nodes of a class
//! live in one of [`NUM_RANKS`] buckets ordered from full (rank 0) to
//! completely free ([`MAX_RANK`]); within a bucket they are kept in ascending
//! node order, so iterating buckets from the top yields the deterministic
//! worst-fit visit order `(rank desc, node id asc)` without any per-query
//! sort.
//!
//! The index is delta-updated on every allocation/release (an O(log bucket)
//! membership move) and rebuilt in O(n) when a retained snapshot refills from
//! scratch. Both the indexed queries and the property-tested reference walk
//! ([`crate::config::SimConfig::placement_index`] = `false`) order candidates
//! by the *same* `(bucket_rank desc, id asc)` key, which is what keeps their
//! placements byte-identical (pinned in `tests/placement_index.rs`).
//!
//! Determinism note: `floor(log2(x))` is read straight from the IEEE-754
//! exponent bits instead of `f64::log2` — exact for every normal positive
//! double and identical on every platform, so index and walk can never be
//! split by a libm rounding difference.

use crate::resources::{ResourceVector, NUM_RESOURCES};
use serde::{Deserialize, Serialize};

/// Number of free-fraction buckets. Rank 0 collects nodes whose scarcest
/// dimension is below 2^-15 of capacity (effectively full); the top rank
/// holds completely free nodes. 16 octaves discriminate free fractions down
/// to ~0.003% of a node, far below any placeable unit demand.
pub const NUM_RANKS: usize = 16;

/// The rank of a completely free node (`NUM_RANKS - 1`).
pub const MAX_RANK: u8 = (NUM_RANKS - 1) as u8;

/// Bucket rank of a node with free vector `free` in a class whose per-node
/// capacity is `unit_capacity`: `MAX_RANK + floor(log2(min_i free_i/cap_i))`
/// over the dimensions with positive capacity, clamped to `[0, MAX_RANK]`.
///
/// Edge cases: a fully free node (fraction ≥ 1, including a class with no
/// positive-capacity dimension at all, where the fraction stays `+inf`) ranks
/// [`MAX_RANK`]; zero, negative, subnormal or NaN fractions rank 0.
#[inline]
pub fn bucket_rank(free: &ResourceVector, unit_capacity: &ResourceVector) -> u8 {
    let mut frac = f64::INFINITY;
    for i in 0..NUM_RESOURCES {
        let cap = unit_capacity.0[i];
        if cap > 0.0 {
            let f = free.0[i] / cap;
            if f < frac {
                frac = f;
            }
        }
    }
    if frac >= 1.0 {
        return MAX_RANK;
    }
    if !(frac > 0.0) {
        // Zero, negative or NaN scarcest fraction: the node is full.
        return 0;
    }
    // floor(log2(frac)) via the biased exponent — exact for normal doubles.
    let biased = ((frac.to_bits() >> 52) & 0x7ff) as i32;
    if biased == 0 {
        // Subnormal: far below 2^-15 of capacity.
        return 0;
    }
    let rank = MAX_RANK as i32 + (biased - 1023);
    rank.max(0) as u8
}

/// Bucketed free-capacity index over one node class.
///
/// Node positions are *in-class* indices (dense, node-id order), so the same
/// structure serves both the [`crate::cluster::Cluster`] (whose classes are
/// contiguous node ranges) and the per-class
/// [`crate::view::NodeClassView::node_free`] snapshot rows.
///
/// Steady-state maintenance is allocation-free: every bucket is pre-reserved
/// to the class size at (re)build, so membership moves are binary-searched
/// `Vec` inserts/removes that never touch the allocator.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FitIndex {
    /// Current bucket of each in-class node index.
    rank_of: Vec<u8>,
    /// Per-rank membership, each sorted ascending by in-class index.
    /// Invariant: exactly [`NUM_RANKS`] buckets once built (empty when the
    /// index has never been built, e.g. a deserialized legacy snapshot —
    /// queries detect that through [`Self::len`] and fall back to a walk).
    buckets: Vec<Vec<u32>>,
}

impl FitIndex {
    /// An empty index (no nodes tracked; [`Self::len`] is 0).
    pub fn new() -> Self {
        FitIndex::default()
    }

    /// Number of nodes tracked.
    pub fn len(&self) -> usize {
        self.rank_of.len()
    }

    /// True when no nodes are tracked (a fresh or legacy-deserialized index).
    pub fn is_empty(&self) -> bool {
        self.rank_of.is_empty()
    }

    /// Current rank of one node.
    pub fn rank(&self, idx: usize) -> u8 {
        self.rank_of[idx]
    }

    /// Rebuild the index from scratch over `frees` (in in-class node order).
    /// Retains and pre-reserves every buffer: after the first build for a
    /// given class size, neither rebuilds nor incremental updates allocate.
    pub fn rebuild<I>(&mut self, unit_capacity: &ResourceVector, frees: I)
    where
        I: IntoIterator<Item = ResourceVector>,
    {
        if self.buckets.len() != NUM_RANKS {
            self.buckets.resize_with(NUM_RANKS, Vec::new);
        }
        self.rank_of.clear();
        for b in &mut self.buckets {
            b.clear();
        }
        for (i, free) in frees.into_iter().enumerate() {
            let rank = bucket_rank(&free, unit_capacity);
            self.rank_of.push(rank);
            // In-order pushes keep every bucket ascending.
            self.buckets[rank as usize].push(i as u32);
        }
        // One worst-case reservation per bucket: a membership move may push
        // any bucket to the full class size, and the steady-state loops must
        // never allocate.
        let n = self.rank_of.len();
        for b in &mut self.buckets {
            if b.capacity() < n {
                b.reserve(n - b.len());
            }
        }
    }

    /// Re-rank one node after its free vector changed (an allocation or a
    /// release touched it). O(log bucket) searches plus two memmoves.
    pub fn update(&mut self, idx: usize, free: &ResourceVector, unit_capacity: &ResourceVector) {
        let new_rank = bucket_rank(free, unit_capacity);
        let old_rank = self.rank_of[idx];
        if new_rank == old_rank {
            return;
        }
        let key = idx as u32;
        let old = &mut self.buckets[old_rank as usize];
        let pos = old
            .binary_search(&key)
            .expect("fit index bucket lost a member");
        old.remove(pos);
        let new = &mut self.buckets[new_rank as usize];
        let pos = new.binary_search(&key).unwrap_err();
        new.insert(pos, key);
        self.rank_of[idx] = new_rank;
    }

    /// All tracked in-class node indices in worst-fit visit order: emptiest
    /// bucket first, ascending node index within a bucket — exactly the
    /// `(bucket_rank desc, id asc)` order the reference walk sorts into.
    pub fn nodes_desc(&self) -> impl Iterator<Item = usize> + '_ {
        self.buckets
            .iter()
            .rev()
            .flat_map(|b| b.iter().map(|&i| i as usize))
    }

    /// Cross-check the index against freshly computed ranks over `frees`
    /// (the `check_invariants` hook): every node's stored rank must match a
    /// recomputation, every bucket must be ascending, and bucket membership
    /// must agree with `rank_of`.
    pub fn check<I>(&self, unit_capacity: &ResourceVector, frees: I) -> Result<(), String>
    where
        I: IntoIterator<Item = ResourceVector>,
    {
        let mut n = 0usize;
        for (i, free) in frees.into_iter().enumerate() {
            n += 1;
            let expect = bucket_rank(&free, unit_capacity);
            let got = *self
                .rank_of
                .get(i)
                .ok_or_else(|| format!("fit index tracks no node {i}"))?;
            if got != expect {
                return Err(format!(
                    "fit index rank drifted for node {i}: stored {got}, recomputed {expect} (free {free})"
                ));
            }
        }
        if self.rank_of.len() != n {
            return Err(format!(
                "fit index tracks {} nodes, class has {n}",
                self.rank_of.len()
            ));
        }
        if self.buckets.len() != NUM_RANKS {
            return Err(format!(
                "fit index has {} buckets, expected {NUM_RANKS}",
                self.buckets.len()
            ));
        }
        let mut members = 0usize;
        for (rank, bucket) in self.buckets.iter().enumerate() {
            if !bucket.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("fit index bucket {rank} is not strictly ascending"));
            }
            for &i in bucket {
                if self.rank_of[i as usize] as usize != rank {
                    return Err(format!(
                        "fit index node {i} sits in bucket {rank} but rank_of says {}",
                        self.rank_of[i as usize]
                    ));
                }
            }
            members += bucket.len();
        }
        if members != n {
            return Err(format!(
                "fit index buckets hold {members} members for {n} nodes"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap() -> ResourceVector {
        ResourceVector::of(8.0, 32.0, 0.0, 10.0)
    }

    #[test]
    fn rank_edges() {
        let c = cap();
        // Completely free and completely full.
        assert_eq!(bucket_rank(&c, &c), MAX_RANK);
        assert_eq!(bucket_rank(&ResourceVector::zero(), &c), 0);
        // Half free on the scarcest dimension: one octave below the top.
        let half = ResourceVector::of(4.0, 32.0, 0.0, 10.0);
        assert_eq!(bucket_rank(&half, &c), MAX_RANK - 1);
        // A quarter free: two octaves.
        let quarter = ResourceVector::of(8.0, 8.0, 0.0, 10.0);
        assert_eq!(bucket_rank(&quarter, &c), MAX_RANK - 2);
        // Vanishingly free clamps to rank 0 instead of underflowing.
        let sliver = ResourceVector::of(1e-9, 32.0, 0.0, 10.0);
        assert_eq!(bucket_rank(&sliver, &c), 0);
        // A class with no positive capacity at all: every node ties at the
        // top (pure id-order placement, the pre-index behaviour).
        let none = ResourceVector::zero();
        assert_eq!(bucket_rank(&none, &none), MAX_RANK);
        // Zero-capacity dimensions are ignored, not divided by.
        let gpu_free = ResourceVector::of(8.0, 32.0, 4.0, 10.0);
        assert_eq!(bucket_rank(&gpu_free, &c), MAX_RANK);
    }

    #[test]
    fn rank_is_exact_floor_log2() {
        let c = ResourceVector::of(1.0, 0.0, 0.0, 0.0);
        for e in 1..=(MAX_RANK as i32) {
            let frac = (2.0f64).powi(-e);
            let at = ResourceVector::of(frac, 0.0, 0.0, 0.0);
            assert_eq!(bucket_rank(&at, &c), MAX_RANK - e as u8, "at 2^-{e}");
            // Just below a boundary falls into the bucket beneath it.
            let below = ResourceVector::of(frac * (1.0 - 1e-12), 0.0, 0.0, 0.0);
            assert_eq!(
                bucket_rank(&below, &c),
                (MAX_RANK as i32 - e - 1).max(0) as u8,
                "below 2^-{e}"
            );
        }
    }

    #[test]
    fn rebuild_update_and_order() {
        let c = cap();
        let mut index = FitIndex::new();
        let frees = [
            c,                                        // node 0: free
            ResourceVector::of(4.0, 32.0, 0.0, 10.0), // node 1: half
            c,                                        // node 2: free
            ResourceVector::zero(),                   // node 3: full
        ];
        index.rebuild(&c, frees.iter().copied());
        assert_eq!(index.len(), 4);
        assert!(index.check(&c, frees.iter().copied()).is_ok());
        // Emptiest first, id-ascending within a bucket, full nodes last.
        let order: Vec<usize> = index.nodes_desc().collect();
        assert_eq!(order, vec![0, 2, 1, 3]);
        // Free node 3 entirely: it joins the top bucket after 0 and 2.
        let mut frees = frees;
        frees[3] = c;
        index.update(3, &frees[3], &c);
        assert!(index.check(&c, frees.iter().copied()).is_ok());
        let order: Vec<usize> = index.nodes_desc().collect();
        assert_eq!(order, vec![0, 2, 3, 1]);
        // No-op update keeps everything in place.
        index.update(3, &frees[3], &c);
        assert!(index.check(&c, frees.iter().copied()).is_ok());
    }

    #[test]
    fn check_catches_drift() {
        let c = cap();
        let mut index = FitIndex::new();
        let frees = [c, ResourceVector::zero()];
        index.rebuild(&c, frees.iter().copied());
        // Lie about node 1's free vector: the cross-check must object.
        assert!(index.check(&c, [c, c].iter().copied()).is_err());
    }
}
