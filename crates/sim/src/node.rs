//! Nodes: the physical machines of the heterogeneous cluster.

use crate::job::JobClass;
use crate::resources::ResourceVector;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a node class inside the [`crate::config::ClusterSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeClassId(pub usize);

impl fmt::Display for NodeClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class-{}", self.0)
    }
}

/// Unique identifier of a node within one cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// A single machine: a capacity vector plus the amount currently in use.
///
/// Nodes never know which jobs occupy them — allocation bookkeeping lives in
/// [`crate::cluster::Cluster`] and [`crate::engine::Simulator`]; the node only
/// enforces capacity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Identifier, dense from 0 within a cluster.
    pub id: NodeId,
    /// Node class this machine belongs to.
    pub class: NodeClassId,
    /// Total capacity.
    pub capacity: ResourceVector,
    /// Currently allocated resources.
    pub used: ResourceVector,
}

impl Node {
    /// Create an empty node.
    pub fn new(id: NodeId, class: NodeClassId, capacity: ResourceVector) -> Self {
        Node {
            id,
            class,
            capacity,
            used: ResourceVector::zero(),
        }
    }

    /// Free capacity (clamped at zero to absorb rounding).
    pub fn free(&self) -> ResourceVector {
        self.capacity.saturating_sub(&self.used)
    }

    /// Can `demand` be placed on this node right now?
    pub fn can_fit(&self, demand: &ResourceVector) -> bool {
        demand.fits_in(&self.free())
    }

    /// How many whole units of `per_unit` demand fit into the free capacity?
    ///
    /// `u32::MAX` is reserved as the "no positive demand" sentinel (zero
    /// demand fits "infinitely"); genuine fits are clamped to
    /// `u32::MAX - 1` so a saturating float→u32 cast on an absurdly roomy
    /// node can never be mistaken for the sentinel by counting callers.
    pub fn units_that_fit(&self, per_unit: &ResourceVector) -> u32 {
        let free = self.free();
        let mut max_units = u32::MAX - 1;
        let mut any_demand = false;
        for i in 0..crate::resources::NUM_RESOURCES {
            let d = per_unit.0[i];
            if d > 0.0 {
                any_demand = true;
                let fit = ((free.0[i] + 1e-9) / d).floor();
                max_units = max_units.min(fit.max(0.0) as u32);
            }
        }
        if any_demand {
            max_units
        } else {
            u32::MAX
        }
    }

    /// Reserve `demand`. Returns `false` (and leaves the node unchanged) if it
    /// does not fit.
    pub fn allocate(&mut self, demand: &ResourceVector) -> bool {
        if !self.can_fit(demand) {
            return false;
        }
        self.used += *demand;
        true
    }

    /// Release `demand`. Debug-asserts that we never release more than is in
    /// use; in release builds the usage is clamped at zero.
    pub fn release(&mut self, demand: &ResourceVector) {
        self.used -= *demand;
        debug_assert!(
            self.used.is_non_negative(),
            "node {} released more than allocated: {}",
            self.id,
            self.used
        );
        self.used = self.used.max(&ResourceVector::zero());
    }

    /// Fraction of capacity in use for the bottleneck resource.
    pub fn utilization(&self) -> f64 {
        self.used.dominant_share(&self.capacity).min(1.0)
    }

    /// Per-dimension utilisation in `[0, 1]`.
    pub fn utilization_vector(&self) -> ResourceVector {
        self.used.normalized_by(&self.capacity)
    }

    /// True when nothing is allocated.
    pub fn is_idle(&self) -> bool {
        self.used.total() <= 1e-9
    }
}

/// A speed profile maps each [`JobClass`] to an execution-rate multiplier on a
/// node class. A GPU node might give ML training a 6× factor while leaving
/// batch analytics at 1×.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedProfile {
    factors: [f64; JobClass::COUNT],
}

impl SpeedProfile {
    /// The same speed for every job class.
    pub fn uniform(factor: f64) -> Self {
        SpeedProfile {
            factors: [factor; JobClass::COUNT],
        }
    }

    /// Build from explicit per-class factors in [`JobClass::ALL`] order.
    pub fn new(factors: [f64; JobClass::COUNT]) -> Self {
        SpeedProfile { factors }
    }

    /// Speed factor for one job class.
    pub fn factor(&self, class: JobClass) -> f64 {
        self.factors[class.index()]
    }

    /// Override the factor for one class.
    pub fn with(mut self, class: JobClass, factor: f64) -> Self {
        self.factors[class.index()] = factor;
        self
    }

    /// Raw factor array.
    pub fn as_array(&self) -> [f64; JobClass::COUNT] {
        self.factors
    }

    /// The largest factor across classes (used for best-case feasibility
    /// bounds).
    pub fn max_factor(&self) -> f64 {
        self.factors.iter().cloned().fold(f64::MIN, f64::max)
    }
}

impl Default for SpeedProfile {
    fn default() -> Self {
        SpeedProfile::uniform(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> Node {
        Node::new(
            NodeId(0),
            NodeClassId(0),
            ResourceVector::of(16.0, 64.0, 2.0, 10.0),
        )
    }

    #[test]
    fn allocate_and_release_roundtrip() {
        let mut n = node();
        let d = ResourceVector::of(4.0, 8.0, 1.0, 1.0);
        assert!(n.allocate(&d));
        assert_eq!(n.free(), ResourceVector::of(12.0, 56.0, 1.0, 9.0));
        n.release(&d);
        assert!(n.is_idle());
        assert_eq!(n.free(), n.capacity);
    }

    #[test]
    fn allocate_rejects_overcommit() {
        let mut n = node();
        let d = ResourceVector::of(20.0, 1.0, 0.0, 0.0);
        assert!(!n.allocate(&d));
        assert!(n.is_idle());
    }

    #[test]
    fn units_that_fit_is_floor_of_bottleneck() {
        let n = node();
        let per_unit = ResourceVector::of(4.0, 10.0, 0.5, 1.0);
        // cpu: 4, mem: 6, gpu: 4, io: 10 -> 4
        assert_eq!(n.units_that_fit(&per_unit), 4);
        let per_unit = ResourceVector::of(0.0, 0.0, 0.0, 0.0);
        assert_eq!(n.units_that_fit(&per_unit), u32::MAX);
    }

    #[test]
    fn utilization_tracks_dominant_resource() {
        let mut n = node();
        n.allocate(&ResourceVector::of(8.0, 8.0, 2.0, 0.0));
        assert!((n.utilization() - 1.0).abs() < 1e-9); // GPUs saturated
        let v = n.utilization_vector();
        assert!((v.0[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn speed_profile_lookup_and_override() {
        let p = SpeedProfile::uniform(1.0)
            .with(JobClass::MlTraining, 6.0)
            .with(JobClass::MlInference, 3.0);
        assert_eq!(p.factor(JobClass::Batch), 1.0);
        assert_eq!(p.factor(JobClass::MlTraining), 6.0);
        assert_eq!(p.max_factor(), 6.0);
    }
}
