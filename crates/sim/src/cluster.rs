//! The cluster: a set of heterogeneous nodes plus placement logic.

use crate::allocation::Placement;
use crate::config::ClusterSpec;
use crate::fit_index::{bucket_rank, FitIndex};
use crate::job::JobClass;
use crate::node::{Node, NodeClassId, NodeId};
use crate::resources::{ResourceVector, NUM_RESOURCES};
use serde::{Deserialize, Serialize};

fn default_indexed_placement() -> bool {
    true
}

/// A concrete cluster instantiated from a [`ClusterSpec`].
///
/// The cluster owns the node capacity bookkeeping and the placement search.
/// It does not know about jobs or time; the [`crate::engine::Simulator`] maps
/// jobs to placements through it.
///
/// Three pieces of *indexed state* keep the per-epoch cost independent of
/// the node count:
///
/// * nodes are stored contiguously per class (the order
///   [`ClusterSpec::build_nodes`] emits), so [`Self::nodes_of_class`] is a
///   slice walk over one class instead of a filter over every node;
/// * per-class free capacity is maintained **as deltas** on every
///   [`Self::apply_placement`] / [`Self::release_placement`] instead of being
///   re-summed over the nodes at every read —
///   [`Self::free_capacity_of_class`] and everything built on it
///   (utilisation sampling, view refills, feature extraction) is O(1) per
///   class;
/// * each class carries a bucketed free-capacity [`FitIndex`]
///   delta-updated by the same two methods, so [`Self::find_placement`]
///   visits nodes in worst-fit order without the per-start sort that capped
///   `sim_scale` at 256 nodes. The pre-index slice walk survives as the
///   property-tested reference (re-keyed to the same
///   `(bucket_rank desc, id asc)` order) behind
///   [`crate::config::SimConfig::placement_index`] = `false`.
///
/// [`Self::check_invariants`] cross-checks both the aggregates and the fit
/// indices against a fresh per-node recomputation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cluster {
    spec: ClusterSpec,
    nodes: Vec<Node>,
    /// Contiguous `[start, end)` node-index range of each class.
    class_ranges: Vec<(usize, usize)>,
    /// Delta-maintained per-class free capacity (see the type docs).
    free_by_class: Vec<ResourceVector>,
    /// Delta-maintained per-class bucketed placement index (see the type
    /// docs). Always kept current — counting queries use it on both configs
    /// (sums are iteration-order-independent); only the order-sensitive
    /// [`Self::find_placement`] honours the toggle. Deserialized legacy
    /// snapshots without the field fall back to the walk until rebuilt.
    #[serde(default)]
    fit: Vec<FitIndex>,
    /// Whether [`Self::find_placement`] uses the index (set from
    /// [`crate::config::SimConfig::placement_index`] by the engine).
    #[serde(default = "default_indexed_placement")]
    indexed_placement: bool,
}

impl Cluster {
    /// Instantiate all nodes described by the spec.
    pub fn new(spec: ClusterSpec) -> Self {
        let nodes = spec.build_nodes();
        let mut class_ranges = Vec::with_capacity(spec.num_classes());
        let mut start = 0usize;
        for (ci, class) in spec.node_classes.iter().enumerate() {
            let end = start + class.count;
            class_ranges.push((start, end));
            debug_assert!(
                nodes[start..end].iter().all(|n| n.class == NodeClassId(ci)),
                "build_nodes must emit classes contiguously"
            );
            start = end;
        }
        let free_by_class = (0..spec.num_classes())
            .map(|ci| spec.class_capacity(NodeClassId(ci)))
            .collect();
        let mut cluster = Cluster {
            spec,
            nodes,
            class_ranges,
            free_by_class,
            fit: Vec::new(),
            indexed_placement: default_indexed_placement(),
        };
        cluster.rebuild_fit_indices();
        cluster
    }

    /// Choose whether [`Self::find_placement`] walks the fit index or the
    /// reference slice walk (the [`crate::config::SimConfig::placement_index`]
    /// toggle). The index itself stays maintained either way.
    pub fn set_indexed_placement(&mut self, indexed: bool) {
        self.indexed_placement = indexed;
    }

    /// Per-node capacity of one class (uniform within a class by
    /// construction) — the denominator every bucket rank is computed
    /// against, on the cluster and the view path alike.
    pub fn unit_capacity_of_class(&self, class: NodeClassId) -> ResourceVector {
        self.spec.node_classes[class.0].capacity
    }

    /// Rebuild every class's fit index from the nodes' current free vectors.
    fn rebuild_fit_indices(&mut self) {
        if self.fit.len() != self.spec.num_classes() {
            self.fit.resize_with(self.spec.num_classes(), FitIndex::new);
        }
        for ci in 0..self.spec.num_classes() {
            let cap = self.spec.node_classes[ci].capacity;
            let (start, end) = self.class_ranges[ci];
            let frees = self.nodes[start..end].iter().map(|n| n.free());
            self.fit[ci].rebuild(&cap, frees);
        }
    }

    /// True when `class` has a fit index covering every node — always, except
    /// on a legacy-deserialized cluster that predates the field.
    fn fit_index_valid(&self, class: NodeClassId) -> bool {
        let (start, end) = self.class_ranges[class.0];
        self.fit
            .get(class.0)
            .is_some_and(|f| f.len() == end - start)
    }

    /// The spec this cluster was built from.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Release every allocation, returning the cluster to its freshly built
    /// state without reconstructing the nodes. Re-derives the per-class
    /// aggregates from the spec, so accumulated floating-point residue from a
    /// previous run cannot carry over.
    pub fn reset(&mut self) {
        for node in &mut self.nodes {
            node.used = ResourceVector::zero();
        }
        for (ci, free) in self.free_by_class.iter_mut().enumerate() {
            *free = self.spec.class_capacity(NodeClassId(ci));
        }
        // O(n) refill of the retained fit-index buffers (no allocation).
        self.rebuild_fit_indices();
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of machines.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of node classes.
    pub fn num_classes(&self) -> usize {
        self.spec.num_classes()
    }

    /// One node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Nodes of one class (a contiguous slice walk, not a full-cluster
    /// filter).
    pub fn nodes_of_class(&self, class: NodeClassId) -> impl Iterator<Item = &Node> {
        self.class_nodes(class).iter()
    }

    /// The contiguous node slice of one class.
    pub fn class_nodes(&self, class: NodeClassId) -> &[Node] {
        let (start, end) = self.class_ranges[class.0];
        &self.nodes[start..end]
    }

    /// Position of `node` within its class (dense, in node-id order).
    pub fn index_in_class(&self, node: NodeId) -> usize {
        let class = self.nodes[node.0].class;
        node.0 - self.class_ranges[class.0].0
    }

    /// Free capacity aggregated over one node class: an O(1) read of the
    /// delta-maintained aggregate (clamped at zero to absorb float residue).
    pub fn free_capacity_of_class(&self, class: NodeClassId) -> ResourceVector {
        self.free_by_class[class.0].max(&ResourceVector::zero())
    }

    /// Total capacity of one node class.
    pub fn total_capacity_of_class(&self, class: NodeClassId) -> ResourceVector {
        self.spec.class_capacity(class)
    }

    /// Free capacity aggregated over the whole cluster (O(classes), from the
    /// delta-maintained aggregates).
    pub fn free_capacity(&self) -> ResourceVector {
        self.free_by_class
            .iter()
            .fold(ResourceVector::zero(), |acc, f| {
                acc + f.max(&ResourceVector::zero())
            })
    }

    /// Per-dimension utilisation of one class in `[0, 1]`.
    pub fn class_utilization(&self, class: NodeClassId) -> ResourceVector {
        let total = self.total_capacity_of_class(class);
        let free = self.free_capacity_of_class(class);
        let used = total.saturating_sub(&free);
        used.normalized_by(&total)
    }

    /// Average utilisation across classes and dimensions (scalar in `[0,1]`),
    /// weighting each dimension of each class by its capacity share.
    pub fn overall_utilization(&self) -> f64 {
        let total = self.spec.total_capacity();
        let free = self.free_capacity();
        let used = total.saturating_sub(&free);
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..NUM_RESOURCES {
            if total.0[i] > 0.0 {
                num += used.0[i];
                den += total.0[i];
            }
        }
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }

    /// How many units of `per_unit` demand can still be placed on machines of
    /// `class` (summing per-node fits, i.e. respecting fragmentation).
    ///
    /// Saturating: at 64k nodes the raw sum of per-node fits can exceed
    /// `u32::MAX`, which used to wrap silently in release builds.
    pub fn units_available(&self, class: NodeClassId, per_unit: &ResourceVector) -> u32 {
        self.units_available_capped(class, per_unit, u32::MAX)
    }

    /// `min(units_available, cap)`, returning as soon as the cap is reached.
    /// The sum is iteration-order-independent, so this walks the fit index in
    /// emptiest-first order when available (reaching the cap after the fewest
    /// nodes) and accumulates saturating either way.
    pub fn units_available_capped(
        &self,
        class: NodeClassId,
        per_unit: &ResourceVector,
        cap: u32,
    ) -> u32 {
        if cap == 0 {
            return 0;
        }
        let mut total = 0u32;
        if self.fit_index_valid(class) {
            let slice = self.class_nodes(class);
            for idx in self.fit[class.0].nodes_desc() {
                let u = slice[idx].units_that_fit(per_unit);
                if u == u32::MAX {
                    continue; // zero-demand jobs are handled by the caller
                }
                total = total.saturating_add(u);
                if total >= cap {
                    return cap;
                }
            }
        } else {
            for n in self.nodes_of_class(class) {
                let u = n.units_that_fit(per_unit);
                if u == u32::MAX {
                    continue;
                }
                total = total.saturating_add(u);
                if total >= cap {
                    return cap;
                }
            }
        }
        total
    }

    /// Find a placement for `units` parallel units of `per_unit` demand on
    /// machines of `class`, or `None` if the class cannot host them.
    ///
    /// The policy is worst-fit across the class (fill the emptiest machine
    /// first) which spreads elastic jobs and leaves room to grow. "Emptiest"
    /// is keyed on the node's [`bucket_rank`] — the floor-log2 bucket of its
    /// scarcest relative free resource, the same demand-independent key the
    /// [`FitIndex`] maintains — and ties break on the lower node id so the
    /// search is deterministic. Both implementations (the indexed path and
    /// the reference slice walk selected by
    /// [`crate::config::SimConfig::placement_index`]) visit candidates in
    /// exactly this `(bucket_rank desc, id asc)` order, which keeps their
    /// placements byte-identical (pinned by `tests/placement_index.rs`).
    pub fn find_placement(
        &self,
        class: NodeClassId,
        per_unit: &ResourceVector,
        units: u32,
    ) -> Option<Vec<Placement>> {
        if units == 0 {
            return None;
        }
        // Zero-demand units trivially fit on the first machine of the class.
        if per_unit.total() <= 0.0 {
            return self
                .nodes_of_class(class)
                .next()
                .map(|n| vec![Placement { node: n.id, units }]);
        }
        if self.indexed_placement && self.fit_index_valid(class) {
            self.find_placement_indexed(class, per_unit, units)
        } else {
            self.find_placement_walk(class, per_unit, units)
        }
    }

    /// Indexed placement: O(placed + skipped) bucket-order traversal, no
    /// per-start sort.
    fn find_placement_indexed(
        &self,
        class: NodeClassId,
        per_unit: &ResourceVector,
        units: u32,
    ) -> Option<Vec<Placement>> {
        let slice = self.class_nodes(class);
        let mut remaining = units;
        let mut placements = Vec::new();
        for idx in self.fit[class.0].nodes_desc() {
            let node = &slice[idx];
            let fit = node.units_that_fit(per_unit);
            if fit == 0 {
                continue;
            }
            let take = fit.min(remaining);
            placements.push(Placement {
                node: node.id,
                units: take,
            });
            remaining -= take;
            if remaining == 0 {
                return Some(placements);
            }
        }
        None
    }

    /// Reference placement: the pre-index slice walk, kept property-tested
    /// against the indexed path. Sorts candidates into the identical
    /// `(bucket_rank desc, id asc)` worst-fit order.
    fn find_placement_walk(
        &self,
        class: NodeClassId,
        per_unit: &ResourceVector,
        units: u32,
    ) -> Option<Vec<Placement>> {
        let cap = self.unit_capacity_of_class(class);
        let mut candidates: Vec<(&Node, u32, u8)> = self
            .nodes_of_class(class)
            .map(|n| (n, n.units_that_fit(per_unit), bucket_rank(&n.free(), &cap)))
            .filter(|(_, fit, _)| *fit > 0)
            .collect();
        // Emptiest bucket first, then lowest id.
        candidates.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.id.cmp(&b.0.id)));
        let mut remaining = units;
        let mut placements = Vec::new();
        for (node, fit, _) in candidates {
            if remaining == 0 {
                break;
            }
            let take = fit.min(remaining);
            placements.push(Placement {
                node: node.id,
                units: take,
            });
            remaining -= take;
        }
        if remaining == 0 {
            Some(placements)
        } else {
            None
        }
    }

    /// The largest number of units (≤ `max_units`) for which a placement on
    /// `class` exists. Returns 0 if even one unit does not fit.
    pub fn max_placeable_units(
        &self,
        class: NodeClassId,
        per_unit: &ResourceVector,
        max_units: u32,
    ) -> u32 {
        if per_unit.total() <= 0.0 {
            return max_units;
        }
        self.units_available_capped(class, per_unit, max_units)
    }

    /// Reserve resources for a placement. Panics in debug builds if the
    /// placement does not fit (placements must come from [`Self::find_placement`]
    /// against the current state).
    pub fn apply_placement(&mut self, per_unit: &ResourceVector, placements: &[Placement]) {
        for p in placements {
            let demand = per_unit.scaled(p.units as f64);
            let ok = self.nodes[p.node.0].allocate(&demand);
            debug_assert!(ok, "placement on {} does not fit", p.node);
            if !ok {
                // Defensive: force the accounting anyway so release stays
                // symmetric; callers validate with find_placement first.
                self.nodes[p.node.0].used += demand;
            }
            self.free_by_class[self.nodes[p.node.0].class.0] -= demand;
            self.reindex_node(p.node);
        }
    }

    /// Release the resources of a placement.
    pub fn release_placement(&mut self, per_unit: &ResourceVector, placements: &[Placement]) {
        for p in placements {
            let demand = per_unit.scaled(p.units as f64);
            self.nodes[p.node.0].release(&demand);
            self.free_by_class[self.nodes[p.node.0].class.0] += demand;
            self.reindex_node(p.node);
        }
    }

    /// Delta-update the fit index after one node's usage changed.
    fn reindex_node(&mut self, node: NodeId) {
        let n = &self.nodes[node.0];
        let ci = n.class.0;
        if !self.fit_index_valid(n.class) {
            return; // legacy-deserialized cluster without the index
        }
        let idx = node.0 - self.class_ranges[ci].0;
        let free = n.free();
        let cap = self.spec.node_classes[ci].capacity;
        self.fit[ci].update(idx, &free, &cap);
    }

    /// Speed factor a job class enjoys on a node class.
    pub fn speed_factor(&self, class: NodeClassId, job_class: JobClass) -> f64 {
        self.spec.speed_factor(class, job_class)
    }

    /// Iterate over class ids.
    pub fn class_ids(&self) -> impl Iterator<Item = NodeClassId> {
        (0..self.spec.num_classes()).map(NodeClassId)
    }

    /// Sanity check used by tests and debug assertions: no node exceeds its
    /// capacity, usage is non-negative, and the delta-maintained per-class
    /// free-capacity aggregates agree with a fresh per-node sum (within
    /// floating-point tolerance).
    pub fn check_invariants(&self) -> Result<(), String> {
        for n in &self.nodes {
            if !n.used.is_non_negative() {
                return Err(format!("{} has negative usage {}", n.id, n.used));
            }
            if !n.used.fits_in(&n.capacity) {
                return Err(format!(
                    "{} over capacity: used {} capacity {}",
                    n.id, n.used, n.capacity
                ));
            }
        }
        for class in self.class_ids() {
            let summed = self
                .nodes_of_class(class)
                .fold(ResourceVector::zero(), |acc, n| acc + n.free());
            let aggregate = self.free_capacity_of_class(class);
            for i in 0..NUM_RESOURCES {
                if (summed.0[i] - aggregate.0[i]).abs() > 1e-6 {
                    return Err(format!(
                        "{class} free-capacity aggregate drifted: maintained {aggregate} vs summed {summed}"
                    ));
                }
            }
            // The fit index must agree with ranks recomputed from the nodes.
            if !self.fit_index_valid(class) {
                return Err(format!("{class} has no fit index"));
            }
            let cap = self.unit_capacity_of_class(class);
            self.fit[class.0]
                .check(&cap, self.nodes_of_class(class).map(|n| n.free()))
                .map_err(|e| format!("{class}: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec::icpp_default())
    }

    #[test]
    fn construction_matches_spec() {
        let c = cluster();
        assert_eq!(c.num_nodes(), 24);
        assert_eq!(c.num_classes(), 4);
        assert_eq!(c.free_capacity(), c.spec().total_capacity());
        assert!(c.check_invariants().is_ok());
    }

    #[test]
    fn placement_spreads_worst_fit() {
        let mut c = Cluster::new(ClusterSpec::tiny());
        let per_unit = ResourceVector::of(2.0, 4.0, 0.0, 1.0);
        // Ask for 6 units: each tiny node fits 4 (cpu bottleneck 8/2), so it
        // must span both machines.
        let placement = c
            .find_placement(NodeClassId(0), &per_unit, 6)
            .expect("placement exists");
        assert_eq!(placement.iter().map(|p| p.units).sum::<u32>(), 6);
        assert!(placement.len() == 2);
        c.apply_placement(&per_unit, &placement);
        assert!(c.check_invariants().is_ok());
        // Remaining capacity only fits 2 more units.
        assert_eq!(c.max_placeable_units(NodeClassId(0), &per_unit, 100), 2);
        c.release_placement(&per_unit, &placement);
        assert_eq!(c.free_capacity(), c.spec().total_capacity());
    }

    #[test]
    fn placement_fails_when_class_is_full() {
        let mut c = Cluster::new(ClusterSpec::tiny());
        let per_unit = ResourceVector::of(8.0, 1.0, 0.0, 0.0);
        let placement = c.find_placement(NodeClassId(0), &per_unit, 2).unwrap();
        c.apply_placement(&per_unit, &placement);
        assert!(c.find_placement(NodeClassId(0), &per_unit, 1).is_none());
    }

    #[test]
    fn gpu_demand_only_fits_gpu_class() {
        let c = cluster();
        let per_unit = ResourceVector::of(1.0, 1.0, 1.0, 0.0);
        // Class 2 is the GPU class in the default spec.
        assert!(c.find_placement(NodeClassId(2), &per_unit, 1).is_some());
        assert!(c.find_placement(NodeClassId(0), &per_unit, 1).is_none());
        assert!(c.find_placement(NodeClassId(3), &per_unit, 1).is_none());
    }

    #[test]
    fn utilization_tracks_allocations() {
        let mut c = Cluster::new(ClusterSpec::tiny());
        assert_eq!(c.overall_utilization(), 0.0);
        let per_unit = ResourceVector::of(4.0, 16.0, 0.5, 5.0);
        let placement = c.find_placement(NodeClassId(0), &per_unit, 2).unwrap();
        c.apply_placement(&per_unit, &placement);
        let util = c.overall_utilization();
        assert!(util > 0.3 && util <= 1.0, "util={util}");
        let class_util = c.class_utilization(NodeClassId(0));
        assert!((class_util.0[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn equal_capacity_ties_break_on_node_id_on_both_paths() {
        // Satellite 3: nodes with identical free capacity (same bucket rank)
        // must be visited in ascending NodeId order by the indexed path and
        // the reference walk alike.
        let mut c = Cluster::new(ClusterSpec::tiny());
        let per_unit = ResourceVector::of(2.0, 4.0, 0.0, 1.0);
        for indexed in [true, false] {
            c.set_indexed_placement(indexed);
            let placement = c
                .find_placement(NodeClassId(0), &per_unit, 1)
                .expect("placement exists");
            assert_eq!(
                placement,
                vec![Placement {
                    node: NodeId(0),
                    units: 1
                }],
                "indexed={indexed}: equal-rank tie must go to the lowest id"
            );
        }
    }

    #[test]
    fn indexed_and_walk_placements_are_identical() {
        // Drive both paths through an allocate/release churn and require
        // byte-identical placements at every step.
        let mut c = Cluster::new(ClusterSpec::icpp_default());
        let demands = [
            ResourceVector::of(2.0, 4.0, 0.0, 1.0),
            ResourceVector::of(7.0, 1.0, 0.0, 0.0),
            ResourceVector::of(1.0, 100.0, 0.0, 0.0),
            ResourceVector::of(4.0, 16.0, 1.0, 2.0),
        ];
        let mut live: Vec<(ResourceVector, Vec<Placement>)> = Vec::new();
        for step in 0..40usize {
            let class = NodeClassId(step % c.num_classes());
            let per_unit = demands[step % demands.len()];
            let units = 1 + (step % 5) as u32;
            c.set_indexed_placement(true);
            let indexed = c.find_placement(class, &per_unit, units);
            c.set_indexed_placement(false);
            let walk = c.find_placement(class, &per_unit, units);
            assert_eq!(indexed, walk, "step {step} diverged");
            let fresh_sum = c
                .nodes_of_class(class)
                .map(|n| n.units_that_fit(&per_unit))
                .filter(|&u| u != u32::MAX)
                .fold(0u32, |a, u| a.saturating_add(u));
            assert_eq!(
                c.units_available(class, &per_unit),
                fresh_sum,
                "step {step}: indexed count disagrees with the fresh per-node sum"
            );
            if let Some(p) = indexed {
                c.apply_placement(&per_unit, &p);
                live.push((per_unit, p));
            }
            // Free the oldest allocation every third step to churn ranks.
            if step % 3 == 2 && !live.is_empty() {
                let (d, p) = live.remove(0);
                c.release_placement(&d, &p);
            }
            c.check_invariants().expect("invariants hold");
        }
        for (d, p) in live.drain(..) {
            c.release_placement(&d, &p);
        }
        assert_eq!(c.free_capacity(), c.spec().total_capacity());
        c.check_invariants().expect("invariants hold after drain");
    }

    #[test]
    fn units_available_respects_fragmentation() {
        let mut c = Cluster::new(ClusterSpec::tiny());
        // Fill 6 of 8 cores on node 0.
        let filler = ResourceVector::of(6.0, 1.0, 0.0, 0.0);
        c.apply_placement(
            &filler,
            &[Placement {
                node: NodeId(0),
                units: 1,
            }],
        );
        // A 4-core unit now only fits on node 1 even though 10 cores are free
        // cluster-wide.
        let per_unit = ResourceVector::of(4.0, 1.0, 0.0, 0.0);
        assert_eq!(c.units_available(NodeClassId(0), &per_unit), 2);
    }
}
