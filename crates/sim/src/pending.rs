//! The indexed pending-job queue: a slab with id, arrival-order and
//! deadline-order indices.
//!
//! The engine's original `Vec<Job>` pending queue made every lookup and
//! removal an O(n) scan (`iter().position()`), repeated at every `Start`
//! action. [`PendingQueue`] keeps the jobs in a slab (stable slots, free
//! list) and maintains three indices incrementally:
//!
//! * **id index** — `JobId → slot` hash map: O(1) lookup and removal entry;
//! * **arrival order** — slots in insertion order. This is the *canonical
//!   iteration order* the engine exposes to schedulers (`ClusterView::
//!   pending` preserves it exactly), so introducing the slab does not
//!   reorder anything a policy can observe;
//! * **deadline order** — slots sorted by `(deadline, id)`, maintained by
//!   binary-search insertion. The engine copies it into
//!   [`ClusterView::pending_by_deadline`](crate::view::ClusterView::pending_by_deadline)
//!   so EDF-family schedulers and the DRL queue-slot encoder stop re-sorting
//!   the queue at every decision.
//!
//! Removal from the middle of the arrival order shifts the tail (a `u32`
//! memmove plus a position fix-up), which costs O(pending) — but only once
//! per *started job*, not once per epoch, and moves 4-byte indices instead
//! of whole `Job` records.

use crate::job::{Job, JobId};
use std::collections::HashMap;

/// A slab of pending jobs with maintained id/arrival/deadline indices.
#[derive(Debug, Clone, Default)]
pub struct PendingQueue {
    /// Slab storage; `None` slots are on the free list.
    slots: Vec<Option<Job>>,
    /// Reusable slots of removed jobs.
    free_slots: Vec<u32>,
    /// `JobId → slot`.
    index: HashMap<JobId, u32>,
    /// Slots in insertion (arrival-event) order — the canonical view order.
    arrival_order: Vec<u32>,
    /// `slot → position in arrival_order` (parallel to `slots`).
    pos_in_arrival: Vec<u32>,
    /// Slots sorted by `(deadline, id)`.
    deadline_order: Vec<u32>,
}

impl PendingQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending jobs.
    pub fn len(&self) -> usize {
        self.arrival_order.len()
    }

    /// True when no job is pending.
    pub fn is_empty(&self) -> bool {
        self.arrival_order.is_empty()
    }

    /// Pre-size every internal collection for `n` jobs.
    pub fn reserve(&mut self, n: usize) {
        self.slots.reserve(n);
        self.pos_in_arrival.reserve(n);
        self.index.reserve(n);
        self.arrival_order.reserve(n);
        self.deadline_order.reserve(n);
    }

    /// Drop every job but keep the allocated capacity (run-to-run reuse).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free_slots.clear();
        self.index.clear();
        self.arrival_order.clear();
        self.pos_in_arrival.clear();
        self.deadline_order.clear();
    }

    /// O(1) lookup by id.
    pub fn get(&self, id: JobId) -> Option<&Job> {
        self.index.get(&id).map(|&slot| self.job(slot))
    }

    /// True when `id` is pending.
    pub fn contains(&self, id: JobId) -> bool {
        self.index.contains_key(&id)
    }

    /// Jobs in arrival (insertion) order — the order `ClusterView::pending`
    /// exposes.
    pub fn iter(&self) -> impl Iterator<Item = &Job> + '_ {
        self.arrival_order.iter().map(move |&slot| self.job(slot))
    }

    /// Positions (indices into the arrival order) sorted by `(deadline, id)`
    /// — the engine copies this into `ClusterView::pending_by_deadline`.
    pub fn deadline_positions(&self) -> impl Iterator<Item = u32> + '_ {
        self.deadline_order
            .iter()
            .map(move |&slot| self.pos_in_arrival[slot as usize])
    }

    /// Insert a job at the tail of the arrival order and into the deadline
    /// index. Returns the job's position in the arrival order (always the
    /// current tail). Job ids must be unique among pending jobs.
    pub fn push(&mut self, job: Job) -> u32 {
        // Hard assert, not debug: the (deadline, id) binary searches assume
        // a total order, and a NaN deadline admitted in a release build
        // would silently corrupt the index (wrong rows fed to every
        // deadline-ordered consumer) rather than fail loudly. One branch
        // per arrival is noise; `Job::validate` rejects such jobs earlier
        // on the checked paths.
        assert!(
            job.deadline.is_finite(),
            "job {} has a non-finite deadline",
            job.id
        );
        let key = (job.deadline, job.id);
        let dpos = self
            .deadline_order
            .partition_point(|&s| (self.job(s).deadline, self.job(s).id) < key);
        let slot = match self.free_slots.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot as usize].is_none());
                let old = self.index.insert(job.id, slot);
                debug_assert!(old.is_none(), "duplicate pending job {}", job.id);
                self.slots[slot as usize] = Some(job);
                slot
            }
            None => {
                let slot = self.slots.len() as u32;
                let old = self.index.insert(job.id, slot);
                debug_assert!(old.is_none(), "duplicate pending job {}", job.id);
                self.slots.push(Some(job));
                self.pos_in_arrival.push(0);
                slot
            }
        };
        let pos = self.arrival_order.len() as u32;
        self.arrival_order.push(slot);
        self.pos_in_arrival[slot as usize] = pos;
        self.deadline_order.insert(dpos, slot);
        pos
    }

    /// Remove a job by id: O(log n) on the deadline index plus the
    /// arrival-order tail shift. Returns the job and the arrival-order
    /// position it occupied (the position `ClusterView::pending` drops).
    pub fn remove(&mut self, id: JobId) -> Option<(Job, u32)> {
        let slot = self.index.remove(&id)?;
        // Binary search on the unique, totally ordered (deadline, id) key —
        // deadlines are finite (asserted on push), so the probe always lands
        // exactly on the job's entry. Must run while the slot is still
        // occupied: the probe reads the job's own slot.
        let key = {
            let j = self.job(slot);
            (j.deadline, j.id)
        };
        let dpos = self
            .deadline_order
            .partition_point(|&s| (self.job(s).deadline, self.job(s).id) < key);
        debug_assert_eq!(
            self.deadline_order.get(dpos),
            Some(&slot),
            "deadline index out of sync for {id}"
        );
        self.deadline_order.remove(dpos);
        let job = self.slots[slot as usize].take().expect("slab out of sync");
        let pos = self.pos_in_arrival[slot as usize];
        self.arrival_order.remove(pos as usize);
        for &s in &self.arrival_order[pos as usize..] {
            self.pos_in_arrival[s as usize] -= 1;
        }
        self.free_slots.push(slot);
        Some((job, pos))
    }

    fn job(&self, slot: u32) -> &Job {
        self.slots[slot as usize]
            .as_ref()
            .expect("indexed slot is empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobClass;
    use crate::resources::ResourceVector;

    fn job(id: u64, deadline: f64) -> Job {
        Job::builder(JobId(id), JobClass::Batch)
            .arrival(0.0)
            .total_work(10.0)
            .demand_per_unit(ResourceVector::of(1.0, 1.0, 0.0, 0.1))
            .deadline(deadline)
            .build()
    }

    #[test]
    fn insertion_order_is_preserved_and_indexed() {
        let mut q = PendingQueue::new();
        for (id, dl) in [(5u64, 30.0), (1, 10.0), (9, 20.0), (3, 10.0)] {
            q.push(job(id, dl));
        }
        let order: Vec<u64> = q.iter().map(|j| j.id.0).collect();
        assert_eq!(order, vec![5, 1, 9, 3]);
        // Deadline order: (10,1), (10,3), (20,9), (30,5) → arrival positions.
        let dl: Vec<u32> = q.deadline_positions().collect();
        assert_eq!(dl, vec![1, 3, 2, 0]);
        assert!(q.contains(JobId(9)));
        assert_eq!(q.get(JobId(1)).unwrap().deadline, 10.0);
        assert!(q.get(JobId(2)).is_none());
    }

    #[test]
    fn removal_keeps_every_index_consistent() {
        let mut q = PendingQueue::new();
        for id in 0..8u64 {
            q.push(job(id, 100.0 - id as f64));
        }
        let (j, pos) = q.remove(JobId(3)).expect("job 3 pending");
        assert_eq!(j.id, JobId(3));
        assert_eq!(pos, 3);
        assert!(q.remove(JobId(3)).is_none());
        let order: Vec<u64> = q.iter().map(|j| j.id.0).collect();
        assert_eq!(order, vec![0, 1, 2, 4, 5, 6, 7]);
        // Deadline order is descending-id here (later ids = earlier deadline).
        let by_deadline: Vec<u64> = q
            .deadline_positions()
            .map(|p| q.iter().nth(p as usize).unwrap().id.0)
            .collect();
        assert_eq!(by_deadline, vec![7, 6, 5, 4, 2, 1, 0]);
        // Slots are recycled.
        q.push(job(42, 1.0));
        assert_eq!(q.len(), 8);
        assert_eq!(q.deadline_positions().next(), Some(7));
    }

    #[test]
    fn clear_retains_capacity_and_resets_state() {
        let mut q = PendingQueue::new();
        for id in 0..16u64 {
            q.push(job(id, id as f64));
        }
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.deadline_positions().count(), 0);
        q.push(job(7, 3.0));
        assert_eq!(q.len(), 1);
        assert_eq!(q.get(JobId(7)).unwrap().deadline, 3.0);
    }
}
