//! The scheduler interface: the single integration point between the
//! simulator and any resource-management policy (the DRL agent in
//! `tcrm-core`, the heuristics in `tcrm-baselines`, or ad-hoc policies in
//! tests and examples).

use crate::job::JobId;
use crate::node::NodeClassId;
use crate::view::ClusterView;
use serde::{Deserialize, Serialize};

/// A scheduling decision returned by a [`Scheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Start a pending job on `class` with the given degree of parallelism.
    Start {
        /// The pending job to start.
        job: JobId,
        /// Node class to place the job on.
        class: NodeClassId,
        /// Requested degree of parallelism (clamped to the job's range).
        parallelism: u32,
    },
    /// Change the degree of parallelism of a running, malleable job.
    Scale {
        /// The running job to re-scale.
        job: JobId,
        /// New total degree of parallelism (clamped to the job's range).
        new_parallelism: u32,
    },
    /// Do nothing at this decision point.
    Wait,
}

/// Result of applying a single [`Action`], reported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionOutcome {
    /// A pending job was started.
    Started,
    /// A running job changed its parallelism.
    Scaled,
    /// The scheduler chose to wait.
    Waited,
    /// The action could not be applied (unknown job, no capacity, scaling
    /// disabled, …). The reason is a static diagnostic string.
    Invalid(&'static str),
}

impl ActionOutcome {
    /// True if the action changed the cluster state.
    pub fn changed_state(&self) -> bool {
        matches!(self, ActionOutcome::Started | ActionOutcome::Scaled)
    }

    /// True if the engine rejected the action.
    pub fn is_invalid(&self) -> bool {
        matches!(self, ActionOutcome::Invalid(_))
    }
}

/// A resource-management policy.
///
/// `decide` is called at every decision epoch (job arrival, job completion,
/// periodic timer) with a snapshot of the cluster and queue. It returns a
/// batch of actions; the engine applies them in order, silently counting any
/// infeasible ones as invalid. Returning an empty vector or only
/// [`Action::Wait`] ends the epoch.
pub trait Scheduler {
    /// Short name used in result tables.
    fn name(&self) -> &str;

    /// Produce a batch of actions for the current decision epoch.
    fn decide(&mut self, view: &ClusterView) -> Vec<Action>;

    /// Called once before a simulation starts; stateful schedulers reset here.
    fn on_simulation_start(&mut self) {}

    /// Re-arm this instance for a fresh replication driven by `seed`.
    ///
    /// Evaluation sweeps reuse one scheduler instance per worker thread
    /// across many replications instead of constructing a fresh one per run;
    /// this hook is where seed-dependent state (RNGs, per-run counters) must
    /// be re-derived so a reused instance behaves identically to a freshly
    /// built one. Stateless policies keep the default no-op; per-run state
    /// that is already re-initialised in [`Scheduler::on_simulation_start`]
    /// (which still runs at every simulation start) does not need to be
    /// duplicated here.
    fn reset(&mut self, seed: u64) {
        let _ = seed;
    }
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn decide(&mut self, view: &ClusterView) -> Vec<Action> {
        (**self).decide(view)
    }
    fn on_simulation_start(&mut self) {
        (**self).on_simulation_start()
    }
    fn reset(&mut self, seed: u64) {
        (**self).reset(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_helpers() {
        assert!(ActionOutcome::Started.changed_state());
        assert!(ActionOutcome::Scaled.changed_state());
        assert!(!ActionOutcome::Waited.changed_state());
        assert!(ActionOutcome::Invalid("x").is_invalid());
        assert!(!ActionOutcome::Started.is_invalid());
    }

    #[test]
    fn action_serde_roundtrip() {
        let a = Action::Start {
            job: JobId(3),
            class: NodeClassId(1),
            parallelism: 4,
        };
        let json = serde_json::to_string(&a).unwrap();
        let back: Action = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
