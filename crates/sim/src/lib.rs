//! # tcrm-sim — discrete-event heterogeneous cluster simulator
//!
//! This crate is the execution substrate for the ICPP 2020 reproduction
//! *"Deep Reinforcement Learning based Elasticity-compatible Heterogeneous
//! Resource Management for Time-critical Computing"*.
//!
//! It models:
//!
//! * a **heterogeneous cluster**: several node classes (CPU-heavy, memory-heavy,
//!   GPU-accelerated, edge/burstable) with multi-dimensional capacities and
//!   job-class-dependent speed factors,
//! * **elastic (malleable) jobs**: each job can run with any degree of
//!   parallelism within `[min_parallelism, max_parallelism]`, follows a
//!   configurable sub-linear speedup model and may be re-scaled at run time at
//!   a reconfiguration cost,
//! * **time-critical semantics**: each job carries a deadline and a
//!   time-utility function; the simulator records deadline misses, slowdowns
//!   and accrued utility,
//! * a **discrete-event engine** that is fully deterministic given a seed and
//!   drives any implementation of the [`Scheduler`] trait (the DRL agent from
//!   `tcrm-core` and the classical heuristics from `tcrm-baselines`).
//!
//! The public API is intentionally small: build a [`ClusterSpec`] and a
//! [`SimConfig`], generate a job list (usually via `tcrm-workload`), implement
//! or pick a [`Scheduler`], and call [`Simulator::run`].
//!
//! ```
//! use tcrm_sim::prelude::*;
//!
//! // A tiny cluster and a single job scheduled by a trivial policy.
//! let spec = ClusterSpec::icpp_default();
//! let cfg = SimConfig::default();
//! let job = Job::builder(JobId(0), JobClass::Batch)
//!     .arrival(0.0)
//!     .total_work(10.0)
//!     .demand_per_unit(ResourceVector::new([1.0, 2.0, 0.0, 0.1]))
//!     .parallelism_range(1, 4)
//!     .deadline(100.0)
//!     .build();
//!
//! struct Greedy;
//! impl Scheduler for Greedy {
//!     fn name(&self) -> &str { "greedy" }
//!     fn decide(&mut self, view: &ClusterView) -> Vec<Action> {
//!         view.pending
//!             .first()
//!             .map(|j| {
//!                 vec![Action::Start { job: j.id, class: NodeClassId(0), parallelism: j.min_parallelism }]
//!             })
//!             .unwrap_or_default()
//!     }
//! }
//!
//! let result = Simulator::new(spec, cfg).run(vec![job], &mut Greedy);
//! assert_eq!(result.summary.completed_jobs, 1);
//! assert_eq!(result.summary.missed_jobs, 0);
//! ```

pub mod allocation;
pub mod cluster;
pub mod config;
pub mod engine;
pub mod event;
pub mod fit_index;
pub mod job;
pub mod metrics;
pub mod node;
pub mod pending;
pub mod resources;
pub mod scheduler;
pub mod stats;
pub mod view;

pub use allocation::{Allocation, Placement};
pub use cluster::Cluster;
pub use config::{ClusterSpec, NodeClassSpec, PowerModel, SimConfig};
pub use engine::{EpochKind, SimulationResult, Simulator};
pub use event::{Event, EventKind, EventQueue};
pub use fit_index::{bucket_rank, FitIndex, MAX_RANK, NUM_RANKS};
pub use job::{Job, JobBuilder, JobClass, JobId, JobState, SpeedupModel, TimeUtility};
pub use metrics::{
    BoundedStats, CompletedJob, EnergyReport, MetricsCollector, PerClassUtilization, Summary,
    UtilizationSample, UtilizationTrace, MAX_NODE_CLASSES,
};
pub use node::{Node, NodeClassId, NodeId};
pub use pending::PendingQueue;
pub use resources::{ResourceKind, ResourceVector, NUM_RESOURCES};
pub use scheduler::{Action, ActionOutcome, Scheduler};
pub use view::{ClusterView, NodeClassView, PendingJobView, RunningJobView};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::allocation::{Allocation, Placement};
    pub use crate::cluster::Cluster;
    pub use crate::config::{ClusterSpec, NodeClassSpec, PowerModel, SimConfig};
    pub use crate::engine::{EpochKind, SimulationResult, Simulator};
    pub use crate::job::{Job, JobBuilder, JobClass, JobId, JobState, SpeedupModel, TimeUtility};
    pub use crate::metrics::{CompletedJob, EnergyReport, Summary, UtilizationTrace};
    pub use crate::node::{Node, NodeClassId, NodeId};
    pub use crate::resources::{ResourceKind, ResourceVector, NUM_RESOURCES};
    pub use crate::scheduler::{Action, ActionOutcome, Scheduler};
    pub use crate::view::{ClusterView, NodeClassView, PendingJobView, RunningJobView};
}
