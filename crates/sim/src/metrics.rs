//! Metrics collection: per-job completion records, utilisation traces and the
//! summary statistics reported in every table and figure of the evaluation.

use crate::config::ClusterSpec;
use crate::job::{JobClass, JobId};
use crate::resources::ResourceVector;
use crate::stats;
use serde::{Deserialize, Serialize};

/// The record kept for every job that finished.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompletedJob {
    /// Job id.
    pub id: JobId,
    /// Workload class.
    pub class: JobClass,
    /// Arrival time.
    pub arrival: f64,
    /// Time the job started executing.
    pub start: f64,
    /// Completion time.
    pub finish: f64,
    /// Absolute deadline.
    pub deadline: f64,
    /// Queueing delay (start − arrival).
    pub wait: f64,
    /// Response time (finish − arrival).
    pub response: f64,
    /// Best-case service time (maximum parallelism on the fastest node class)
    /// used as the slowdown denominator.
    pub best_case_service: f64,
    /// Bounded slowdown: response / max(best_case_service, 1s).
    pub slowdown: f64,
    /// True if the job finished after its deadline.
    pub missed: bool,
    /// Utility accrued according to the job's time-utility function.
    pub utility: f64,
    /// Maximum utility the job could have earned.
    pub max_utility: f64,
    /// Time-averaged degree of parallelism while running.
    pub avg_parallelism: f64,
    /// Number of elastic re-scaling operations applied to the job.
    pub scale_count: u32,
}

/// The maximum number of node classes a cluster may declare. Fixing the
/// arity lets the utilisation trace store per-class vectors inline (no
/// per-sample heap allocation); the paper's clusters use 4 classes, so 8
/// leaves generous headroom.
pub const MAX_NODE_CLASSES: usize = 8;

/// Per-node-class utilisation vectors stored inline with fixed arity — the
/// allocation-free replacement for the `Vec<ResourceVector>` each sample used
/// to own. Unused slots beyond [`Self::len`] are kept zeroed so equality and
/// serialisation only reflect the populated prefix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct PerClassUtilization {
    values: [ResourceVector; MAX_NODE_CLASSES],
    len: usize,
}

impl PerClassUtilization {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a slice of per-class vectors (at most
    /// [`MAX_NODE_CLASSES`]).
    pub fn from_slice(values: &[ResourceVector]) -> Self {
        let mut out = Self::default();
        for v in values {
            out.push(*v);
        }
        out
    }

    /// Append one class's utilisation vector.
    ///
    /// # Panics
    /// Panics if more than [`MAX_NODE_CLASSES`] vectors are pushed.
    pub fn push(&mut self, value: ResourceVector) {
        assert!(
            self.len < MAX_NODE_CLASSES,
            "cluster declares more than {MAX_NODE_CLASSES} node classes"
        );
        self.values[self.len] = value;
        self.len += 1;
    }

    /// Number of populated classes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no class has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The utilisation vector of class `index`, if populated.
    pub fn get(&self, index: usize) -> Option<&ResourceVector> {
        self.values[..self.len].get(index)
    }

    /// Iterate over the populated per-class vectors.
    pub fn iter(&self) -> std::slice::Iter<'_, ResourceVector> {
        self.values[..self.len].iter()
    }

    /// The populated prefix as a slice.
    pub fn as_slice(&self) -> &[ResourceVector] {
        &self.values[..self.len]
    }
}

impl std::ops::Index<usize> for PerClassUtilization {
    type Output = ResourceVector;
    fn index(&self, index: usize) -> &ResourceVector {
        &self.values[..self.len][index]
    }
}

impl<'a> IntoIterator for &'a PerClassUtilization {
    type Item = &'a ResourceVector;
    type IntoIter = std::slice::Iter<'a, ResourceVector>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// One sample of the utilisation trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationSample {
    /// Sample time.
    pub time: f64,
    /// Per node class utilisation vectors (fraction of capacity in use),
    /// stored inline with fixed arity.
    pub per_class: PerClassUtilization,
    /// Capacity-weighted scalar utilisation over the whole cluster.
    pub overall: f64,
    /// Number of pending jobs at the sample time.
    pub pending: usize,
    /// Number of running jobs at the sample time.
    pub running: usize,
}

/// The utilisation timeline of one simulation (Figure 5).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UtilizationTrace {
    /// Samples in time order.
    pub samples: Vec<UtilizationSample>,
}

/// Estimated electrical energy drawn during one simulation, derived from the
/// utilisation trace and the per-class [`crate::config::PowerModel`]s
/// (utilisation-proportional power, integrated over the trace with the
/// trapezoid-free left-Riemann sum the sampling interval justifies).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Total energy over the run, in joules.
    pub total_joules: f64,
    /// Total energy over the run, in kilowatt-hours.
    pub total_kwh: f64,
    /// Energy per node class in joules ([`crate::config::ClusterSpec`] class
    /// order).
    pub per_class_joules: Vec<f64>,
    /// Energy divided by the number of jobs that completed (joules per job);
    /// 0 when nothing completed.
    pub joules_per_completed_job: f64,
    /// Duration covered by the trace, in seconds.
    pub duration: f64,
}

impl EnergyReport {
    /// Mean electrical power over the run, in watts.
    pub fn mean_watts(&self) -> f64 {
        if self.duration > 0.0 {
            self.total_joules / self.duration
        } else {
            0.0
        }
    }
}

impl UtilizationTrace {
    /// Mean overall utilisation across samples. Single-pass (no scratch
    /// buffer): this runs inside `Summary::from_collector` on the
    /// allocation-free replication path.
    pub fn mean_overall(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.overall).sum::<f64>() / self.samples.len() as f64
    }

    /// Estimate the energy drawn over the traced interval for a cluster
    /// described by `spec`, using each class's utilisation-proportional
    /// [`crate::config::PowerModel`]. `completed_jobs` is only used for the
    /// per-job normalisation. Returns an all-zero report for traces with
    /// fewer than two samples.
    pub fn energy_report(&self, spec: &ClusterSpec, completed_jobs: usize) -> EnergyReport {
        let num_classes = spec.num_classes();
        let mut per_class_joules = vec![0.0; num_classes];
        if self.samples.len() >= 2 {
            for pair in self.samples.windows(2) {
                let dt = (pair[1].time - pair[0].time).max(0.0);
                if dt <= 0.0 {
                    continue;
                }
                for (ci, class) in spec.node_classes.iter().enumerate() {
                    // Scalar class utilisation: mean over the dimensions the
                    // class actually provides (same convention as
                    // `mean_class_overall`).
                    let util = pair[0]
                        .per_class
                        .get(ci)
                        .map(|v| {
                            let nz: Vec<f64> = v.0.iter().cloned().filter(|x| *x > 0.0).collect();
                            if nz.is_empty() {
                                0.0
                            } else {
                                stats::mean(&nz)
                            }
                        })
                        .unwrap_or(0.0);
                    let watts = class.power.watts_at(util) * class.count as f64;
                    per_class_joules[ci] += watts * dt;
                }
            }
        }
        let total_joules: f64 = per_class_joules.iter().sum();
        // Structured instead of `last().unwrap()`: zero- and single-sample
        // traces (a run shorter than one sampling interval) fall through to
        // a zero-length window rather than risking a panic if the guard and
        // the access ever drift apart.
        let duration = match (self.samples.first(), self.samples.last()) {
            (Some(first), Some(last)) if self.samples.len() >= 2 => {
                (last.time - first.time).max(0.0)
            }
            _ => 0.0,
        };
        EnergyReport {
            total_joules,
            total_kwh: total_joules / 3.6e6,
            per_class_joules,
            joules_per_completed_job: if completed_jobs > 0 {
                total_joules / completed_jobs as f64
            } else {
                0.0
            },
            duration,
        }
    }

    /// Mean utilisation of one node class (scalar, capacity-weighted over the
    /// class's dimensions is approximated by the mean of non-zero dimensions).
    pub fn mean_class_overall(&self, class_index: usize) -> f64 {
        let vals: Vec<f64> = self
            .samples
            .iter()
            .filter_map(|s| s.per_class.get(class_index))
            .map(|v| {
                let nz: Vec<f64> = v.0.iter().cloned().filter(|x| *x > 0.0).collect();
                if nz.is_empty() {
                    0.0
                } else {
                    stats::mean(&nz)
                }
            })
            .collect();
        stats::mean(&vals)
    }
}

/// Aggregate statistics of one simulation run. This is the row format of the
/// comparison tables (Tables 2–3) and the y-axes of most figures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Total jobs submitted.
    pub total_jobs: usize,
    /// Jobs that finished before the simulation ended.
    pub completed_jobs: usize,
    /// Jobs that were never started (e.g. unschedulable or the run aborted).
    pub unfinished_jobs: usize,
    /// Jobs that finished after their deadline.
    pub missed_jobs: usize,
    /// Deadline-miss rate over submitted jobs (unfinished jobs count as
    /// missed).
    pub miss_rate: f64,
    /// Mean bounded slowdown over completed jobs.
    pub mean_slowdown: f64,
    /// Median bounded slowdown.
    pub p50_slowdown: f64,
    /// 95th percentile bounded slowdown.
    pub p95_slowdown: f64,
    /// 99th percentile bounded slowdown.
    pub p99_slowdown: f64,
    /// Mean queueing delay.
    pub mean_wait: f64,
    /// Mean response time.
    pub mean_response: f64,
    /// Total utility accrued.
    pub total_utility: f64,
    /// Maximum achievable utility (every job meets its deadline).
    pub max_total_utility: f64,
    /// `total_utility / max_total_utility`.
    pub utility_ratio: f64,
    /// Completion time of the last job minus arrival of the first.
    pub makespan: f64,
    /// Mean cluster utilisation over the run.
    pub mean_utilization: f64,
    /// Per-job-class deadline-miss rate ([`JobClass::ALL`] order).
    pub per_class_miss_rate: [f64; JobClass::COUNT],
    /// Per-job-class mean bounded slowdown ([`JobClass::ALL`] order); 0 for
    /// classes with no completed jobs.
    #[serde(default)]
    pub per_class_mean_slowdown: [f64; JobClass::COUNT],
    /// Jain fairness index over completed-job slowdowns: 1 means every job
    /// was slowed equally, small values mean a few jobs bore most of the
    /// queueing pain.
    #[serde(default = "default_fairness")]
    pub slowdown_fairness: f64,
    /// Mean degree of parallelism over completed jobs.
    pub mean_parallelism: f64,
    /// Total number of elastic re-scaling operations.
    pub scale_events: u64,
    /// Number of scheduler actions the engine rejected.
    pub invalid_actions: u64,
    /// Number of decision epochs.
    pub decision_epochs: u64,
}

fn default_fairness() -> f64 {
    1.0
}

impl Summary {
    /// Compute a summary from raw collector state.
    fn from_collector(c: &MetricsCollector, total_jobs: usize) -> Summary {
        let completed = &c.completed;
        let slowdowns: Vec<f64> = completed.iter().map(|j| j.slowdown).collect();
        let waits: Vec<f64> = completed.iter().map(|j| j.wait).collect();
        let responses: Vec<f64> = completed.iter().map(|j| j.response).collect();
        let parallelism: Vec<f64> = completed.iter().map(|j| j.avg_parallelism).collect();
        let missed = completed.iter().filter(|j| j.missed).count();
        let unfinished = total_jobs.saturating_sub(completed.len());
        let total_utility: f64 = completed.iter().map(|j| j.utility).sum();
        // Unfinished jobs forfeit their utility; count their maximum toward
        // the achievable total so the ratio penalises them.
        let max_total_utility: f64 =
            completed.iter().map(|j| j.max_utility).sum::<f64>() + c.unfinished_max_utility;
        let first_arrival = completed
            .iter()
            .map(|j| j.arrival)
            .fold(f64::INFINITY, f64::min);
        let last_finish = completed
            .iter()
            .map(|j| j.finish)
            .fold(f64::NEG_INFINITY, f64::max);
        let makespan = if completed.is_empty() {
            0.0
        } else {
            (last_finish - first_arrival).max(0.0)
        };
        let mut per_class_miss_rate = [0.0; JobClass::COUNT];
        let mut per_class_mean_slowdown = [0.0; JobClass::COUNT];
        for class in JobClass::ALL {
            let of_class: Vec<&CompletedJob> =
                completed.iter().filter(|j| j.class == class).collect();
            if !of_class.is_empty() {
                per_class_miss_rate[class.index()] =
                    of_class.iter().filter(|j| j.missed).count() as f64 / of_class.len() as f64;
                per_class_mean_slowdown[class.index()] =
                    stats::mean(&of_class.iter().map(|j| j.slowdown).collect::<Vec<_>>());
            }
        }
        let effective_missed = missed + unfinished;
        Summary {
            total_jobs,
            completed_jobs: completed.len(),
            unfinished_jobs: unfinished,
            missed_jobs: missed,
            miss_rate: if total_jobs > 0 {
                effective_missed as f64 / total_jobs as f64
            } else {
                0.0
            },
            mean_slowdown: stats::mean(&slowdowns),
            p50_slowdown: stats::percentile(&slowdowns, 50.0),
            p95_slowdown: stats::percentile(&slowdowns, 95.0),
            p99_slowdown: stats::percentile(&slowdowns, 99.0),
            mean_wait: stats::mean(&waits),
            mean_response: stats::mean(&responses),
            total_utility,
            max_total_utility,
            utility_ratio: if max_total_utility > 0.0 {
                total_utility / max_total_utility
            } else {
                0.0
            },
            makespan,
            mean_utilization: c.trace.mean_overall(),
            per_class_miss_rate,
            per_class_mean_slowdown,
            slowdown_fairness: stats::jain_fairness(&slowdowns),
            mean_parallelism: stats::mean(&parallelism),
            scale_events: c.scale_events,
            invalid_actions: c.invalid_actions,
            decision_epochs: c.decision_epochs,
        }
    }

    /// Compute a summary from the bounded streaming aggregates. Every field
    /// replicates [`Self::from_collector`]'s formula exactly from the folded
    /// sums (`mean = Σx / n`, Jain fairness `(Σx)² / (n·Σx²)`, makespan from
    /// the running extrema) except the slowdown percentiles, which come from
    /// the log-bucketed histogram.
    fn from_bounded(c: &MetricsCollector, b: &BoundedStats, total_jobs: usize) -> Summary {
        let n = b.completed;
        let mean = |sum: f64| if n > 0 { sum / n as f64 } else { 0.0 };
        let unfinished = total_jobs.saturating_sub(n);
        let max_total_utility = b.completed_max_utility + c.unfinished_max_utility;
        let mut per_class_miss_rate = [0.0; JobClass::COUNT];
        let mut per_class_mean_slowdown = [0.0; JobClass::COUNT];
        for class in JobClass::ALL {
            let i = class.index();
            if b.per_class_count[i] > 0 {
                per_class_miss_rate[i] = b.per_class_missed[i] as f64 / b.per_class_count[i] as f64;
                per_class_mean_slowdown[i] =
                    b.per_class_sum_slowdown[i] / b.per_class_count[i] as f64;
            }
        }
        let effective_missed = b.missed + unfinished;
        Summary {
            total_jobs,
            completed_jobs: n,
            unfinished_jobs: unfinished,
            missed_jobs: b.missed,
            miss_rate: if total_jobs > 0 {
                effective_missed as f64 / total_jobs as f64
            } else {
                0.0
            },
            mean_slowdown: mean(b.sum_slowdown),
            p50_slowdown: b.slowdown_percentile(50.0),
            p95_slowdown: b.slowdown_percentile(95.0),
            p99_slowdown: b.slowdown_percentile(99.0),
            mean_wait: mean(b.sum_wait),
            mean_response: mean(b.sum_response),
            total_utility: b.total_utility,
            max_total_utility,
            utility_ratio: if max_total_utility > 0.0 {
                b.total_utility / max_total_utility
            } else {
                0.0
            },
            makespan: if n == 0 {
                0.0
            } else {
                (b.last_finish - b.first_arrival).max(0.0)
            },
            mean_utilization: if b.util_samples > 0 {
                b.util_sum / b.util_samples as f64
            } else {
                0.0
            },
            per_class_miss_rate,
            per_class_mean_slowdown,
            slowdown_fairness: if n == 0 || b.sum_slowdown_sq <= 0.0 {
                1.0
            } else {
                (b.sum_slowdown * b.sum_slowdown) / (n as f64 * b.sum_slowdown_sq)
            },
            mean_parallelism: mean(b.sum_parallelism),
            scale_events: c.scale_events,
            invalid_actions: c.invalid_actions,
            decision_epochs: c.decision_epochs,
        }
    }
}

/// Smallest bucketed slowdown; samples at or below land in bucket 0.
/// Bounded slowdown is `response / max(best_case, 1s)`, so values below 1
/// are rare and values below this are impossible in practice.
const MIN_SLOWDOWN: f64 = 1e-3;

/// Sub-buckets per factor-of-two octave of the bounded slowdown histogram.
const SLOWDOWN_SUBBUCKETS: u32 = 32;

/// Total bucket count of the bounded slowdown histogram: 64 octaves cover
/// `[1e-3, ~1.8e16)`.
const SLOWDOWN_BUCKETS: usize = 64 * SLOWDOWN_SUBBUCKETS as usize;

/// Fixed-size streaming replacement for the per-job completion log, used
/// when [`crate::SimConfig::bounded_metrics`] is on. Every [`Summary`]
/// aggregate is folded incrementally — sums, per-class arrays, extrema and
/// a log-bucketed slowdown histogram — so the metric footprint of a run is
/// O(1) in the number of jobs. All summary fields are exact except the
/// slowdown percentiles, whose bucket resolution bounds the relative error
/// at `2^(1/64) ≈ 1.1%` (clamped to the observed min/max, so degenerate
/// distributions stay exact).
#[derive(Debug, Clone, PartialEq)]
pub struct BoundedStats {
    completed: usize,
    missed: usize,
    sum_slowdown: f64,
    sum_slowdown_sq: f64,
    min_slowdown: f64,
    max_slowdown: f64,
    sum_wait: f64,
    sum_response: f64,
    sum_parallelism: f64,
    total_utility: f64,
    completed_max_utility: f64,
    first_arrival: f64,
    last_finish: f64,
    per_class_count: [usize; JobClass::COUNT],
    per_class_missed: [usize; JobClass::COUNT],
    per_class_sum_slowdown: [f64; JobClass::COUNT],
    slowdown_hist: Box<[u64; SLOWDOWN_BUCKETS]>,
    util_sum: f64,
    util_samples: u64,
}

impl Default for BoundedStats {
    fn default() -> Self {
        Self::new()
    }
}

impl BoundedStats {
    /// An empty accumulator. The histogram box is the only allocation this
    /// type ever performs; [`Self::reset`] reuses it across runs.
    pub fn new() -> Self {
        BoundedStats {
            completed: 0,
            missed: 0,
            sum_slowdown: 0.0,
            sum_slowdown_sq: 0.0,
            min_slowdown: f64::INFINITY,
            max_slowdown: f64::NEG_INFINITY,
            sum_wait: 0.0,
            sum_response: 0.0,
            sum_parallelism: 0.0,
            total_utility: 0.0,
            completed_max_utility: 0.0,
            first_arrival: f64::INFINITY,
            last_finish: f64::NEG_INFINITY,
            per_class_count: [0; JobClass::COUNT],
            per_class_missed: [0; JobClass::COUNT],
            per_class_sum_slowdown: [0.0; JobClass::COUNT],
            slowdown_hist: Box::new([0; SLOWDOWN_BUCKETS]),
            util_sum: 0.0,
            util_samples: 0,
        }
    }

    /// Clear every aggregate in place, keeping the histogram allocation.
    pub fn reset(&mut self) {
        self.completed = 0;
        self.missed = 0;
        self.sum_slowdown = 0.0;
        self.sum_slowdown_sq = 0.0;
        self.min_slowdown = f64::INFINITY;
        self.max_slowdown = f64::NEG_INFINITY;
        self.sum_wait = 0.0;
        self.sum_response = 0.0;
        self.sum_parallelism = 0.0;
        self.total_utility = 0.0;
        self.completed_max_utility = 0.0;
        self.first_arrival = f64::INFINITY;
        self.last_finish = f64::NEG_INFINITY;
        self.per_class_count = [0; JobClass::COUNT];
        self.per_class_missed = [0; JobClass::COUNT];
        self.per_class_sum_slowdown = [0.0; JobClass::COUNT];
        self.slowdown_hist.fill(0);
        self.util_sum = 0.0;
        self.util_samples = 0;
    }

    /// Number of completions folded in.
    pub fn completed(&self) -> usize {
        self.completed
    }

    fn bucket_index(value: f64) -> usize {
        if !(value > MIN_SLOWDOWN) {
            return 0;
        }
        let idx = ((value / MIN_SLOWDOWN).log2() * SLOWDOWN_SUBBUCKETS as f64) as usize;
        idx.min(SLOWDOWN_BUCKETS - 1)
    }

    fn bucket_mid(index: usize) -> f64 {
        MIN_SLOWDOWN * ((index as f64 + 0.5) / SLOWDOWN_SUBBUCKETS as f64).exp2()
    }

    /// Fold one completion record in. O(1), allocation-free.
    fn fold(&mut self, job: &CompletedJob) {
        self.completed += 1;
        if job.missed {
            self.missed += 1;
            self.per_class_missed[job.class.index()] += 1;
        }
        self.sum_slowdown += job.slowdown;
        self.sum_slowdown_sq += job.slowdown * job.slowdown;
        self.min_slowdown = self.min_slowdown.min(job.slowdown);
        self.max_slowdown = self.max_slowdown.max(job.slowdown);
        self.sum_wait += job.wait;
        self.sum_response += job.response;
        self.sum_parallelism += job.avg_parallelism;
        self.total_utility += job.utility;
        self.completed_max_utility += job.max_utility;
        self.first_arrival = self.first_arrival.min(job.arrival);
        self.last_finish = self.last_finish.max(job.finish);
        self.per_class_count[job.class.index()] += 1;
        self.per_class_sum_slowdown[job.class.index()] += job.slowdown;
        let v = if job.slowdown.is_finite() {
            job.slowdown.max(0.0)
        } else {
            0.0
        };
        self.slowdown_hist[Self::bucket_index(v)] += 1;
    }

    /// Fold one utilisation sample's overall scalar in.
    fn fold_sample(&mut self, overall: f64) {
        self.util_sum += overall;
        self.util_samples += 1;
    }

    /// Nearest-rank percentile estimate (`p` in `[0, 100]`) from the
    /// histogram, clamped to the observed extrema; 0 when empty.
    fn slowdown_percentile(&self, p: f64) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        let rank = ((p.clamp(0.0, 100.0) / 100.0 * self.completed as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.slowdown_hist.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_mid(i).clamp(self.min_slowdown, self.max_slowdown);
            }
        }
        self.max_slowdown
    }
}

/// Accumulates metrics while a simulation runs.
#[derive(Debug, Clone, Default)]
pub struct MetricsCollector {
    /// Completion records.
    pub completed: Vec<CompletedJob>,
    /// Utilisation trace.
    pub trace: UtilizationTrace,
    /// Count of rejected scheduler actions.
    pub invalid_actions: u64,
    /// Count of applied scale actions.
    pub scale_events: u64,
    /// Count of decision epochs.
    pub decision_epochs: u64,
    /// Maximum utility of jobs that never finished (filled in at the end of a
    /// run for jobs still pending/running when the engine gave up).
    pub unfinished_max_utility: f64,
    /// Streaming aggregation used instead of `completed`/`trace` when
    /// [`crate::SimConfig::bounded_metrics`] is on (see
    /// [`MetricsCollector::configure`]).
    bounded: Option<BoundedStats>,
}

impl MetricsCollector {
    /// Fresh collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Switch between the exact per-job completion log (`bounded == false`,
    /// the default) and the fixed-size [`BoundedStats`] aggregation. Called
    /// by the engine at the start of every run from
    /// [`crate::SimConfig::bounded_metrics`]; the bounded accumulator is
    /// reused across runs, so flipping the mode allocates at most once.
    pub fn configure(&mut self, bounded: bool) {
        match (bounded, &mut self.bounded) {
            (true, Some(stats)) => stats.reset(),
            (true, None) => self.bounded = Some(BoundedStats::new()),
            (false, _) => self.bounded = None,
        }
    }

    /// True when completions are folded into [`BoundedStats`] rather than
    /// logged per job (`completed` and `trace` stay empty in this mode).
    pub fn is_bounded(&self) -> bool {
        self.bounded.is_some()
    }

    /// Pre-size the completion log for a run of `total_jobs` jobs so
    /// steady-state recording never grows the buffer. No-op in bounded mode,
    /// where the footprint must stay independent of the job count.
    pub fn reserve(&mut self, total_jobs: usize) {
        if self.bounded.is_none() {
            self.completed.reserve(total_jobs);
        }
    }

    /// Pre-size the utilisation trace for roughly `samples` samples so
    /// steady-state sampling never grows the buffer.
    pub fn reserve_samples(&mut self, samples: usize) {
        let have = self.trace.samples.capacity() - self.trace.samples.len();
        if samples > have {
            self.trace.samples.reserve(samples - have);
        }
    }

    /// Clear every record and counter, retaining allocated capacity, so the
    /// collector can be reused for another run.
    pub fn reset(&mut self) {
        self.completed.clear();
        self.trace.samples.clear();
        self.invalid_actions = 0;
        self.scale_events = 0;
        self.decision_epochs = 0;
        self.unfinished_max_utility = 0.0;
        if let Some(stats) = &mut self.bounded {
            stats.reset();
        }
    }

    /// Record a finished job.
    pub fn record_completion(&mut self, job: CompletedJob) {
        match &mut self.bounded {
            Some(stats) => stats.fold(&job),
            None => self.completed.push(job),
        }
    }

    /// Record a utilisation sample.
    pub fn record_sample(&mut self, sample: UtilizationSample) {
        match &mut self.bounded {
            Some(stats) => stats.fold_sample(sample.overall),
            None => self.trace.samples.push(sample),
        }
    }

    /// Count an invalid action.
    pub fn record_invalid_action(&mut self) {
        self.invalid_actions += 1;
    }

    /// Count an applied scale action.
    pub fn record_scale_event(&mut self) {
        self.scale_events += 1;
    }

    /// Count a decision epoch.
    pub fn record_decision_epoch(&mut self) {
        self.decision_epochs += 1;
    }

    /// Add forfeited utility for a job that never finished.
    pub fn record_unfinished(&mut self, max_utility: f64) {
        self.unfinished_max_utility += max_utility;
    }

    /// Produce the summary for `total_jobs` submitted jobs.
    pub fn summarize(&self, total_jobs: usize) -> Summary {
        match &self.bounded {
            Some(stats) => Summary::from_bounded(self, stats, total_jobs),
            None => Summary::from_collector(self, total_jobs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, missed: bool, slowdown: f64, utility: f64) -> CompletedJob {
        CompletedJob {
            id: JobId(id),
            class: JobClass::Batch,
            arrival: 0.0,
            start: 1.0,
            finish: 11.0,
            deadline: if missed { 5.0 } else { 50.0 },
            wait: 1.0,
            response: 11.0,
            best_case_service: 10.0,
            slowdown,
            missed,
            utility,
            max_utility: 1.0,
            avg_parallelism: 2.0,
            scale_count: 0,
        }
    }

    #[test]
    fn summary_counts_and_rates() {
        let mut c = MetricsCollector::new();
        c.record_completion(record(1, false, 1.0, 1.0));
        c.record_completion(record(2, true, 3.0, 0.0));
        c.record_completion(record(3, false, 2.0, 1.0));
        let s = c.summarize(4); // one job never finished
        assert_eq!(s.total_jobs, 4);
        assert_eq!(s.completed_jobs, 3);
        assert_eq!(s.unfinished_jobs, 1);
        assert_eq!(s.missed_jobs, 1);
        assert!((s.miss_rate - 0.5).abs() < 1e-12); // (1 missed + 1 unfinished) / 4
        assert!((s.mean_slowdown - 2.0).abs() < 1e-12);
        assert!((s.total_utility - 2.0).abs() < 1e-12);
    }

    #[test]
    fn utility_ratio_penalises_unfinished_jobs() {
        let mut c = MetricsCollector::new();
        c.record_completion(record(1, false, 1.0, 1.0));
        c.record_unfinished(1.0);
        let s = c.summarize(2);
        assert!((s.utility_ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn per_class_miss_rates_are_isolated() {
        let mut c = MetricsCollector::new();
        let mut a = record(1, true, 1.0, 0.0);
        a.class = JobClass::MlTraining;
        let mut b = record(2, false, 1.0, 1.0);
        b.class = JobClass::MlTraining;
        c.record_completion(a);
        c.record_completion(b);
        c.record_completion(record(3, false, 1.0, 1.0));
        let s = c.summarize(3);
        assert!((s.per_class_miss_rate[JobClass::MlTraining.index()] - 0.5).abs() < 1e-12);
        assert_eq!(s.per_class_miss_rate[JobClass::Batch.index()], 0.0);
        assert_eq!(s.per_class_miss_rate[JobClass::Stream.index()], 0.0);
    }

    #[test]
    fn empty_collector_summarizes_to_zeros() {
        let s = MetricsCollector::new().summarize(0);
        assert_eq!(s.total_jobs, 0);
        assert_eq!(s.miss_rate, 0.0);
        assert_eq!(s.mean_slowdown, 0.0);
        assert_eq!(s.makespan, 0.0);
        assert_eq!(s.utility_ratio, 0.0);
    }

    #[test]
    fn zero_sample_trace_yields_zero_utilization_summary() {
        // A run shorter than one sampling interval records no samples at
        // all: every utilisation aggregate must degrade to zero, not panic.
        let mut c = MetricsCollector::new();
        c.record_completion(record(1, false, 1.0, 1.0));
        assert!(c.trace.samples.is_empty());
        assert_eq!(c.trace.mean_overall(), 0.0);
        assert_eq!(c.trace.mean_class_overall(0), 0.0);
        let report = c.trace.energy_report(&spec_for_energy(), 1);
        assert_eq!(report.duration, 0.0);
        assert_eq!(report.total_joules, 0.0);
        assert_eq!(report.mean_watts(), 0.0);
        let s = c.summarize(1);
        assert_eq!(s.mean_utilization, 0.0);
    }

    #[test]
    fn single_sample_trace_yields_degenerate_utilization_summary() {
        // One sample means a zero-length integration window: the mean is
        // that sample's value, but energy and duration stay zero.
        let mut c = MetricsCollector::new();
        c.record_sample(sample(10.0, 0.5, 0.25));
        assert!((c.trace.mean_overall() - 0.375).abs() < 1e-12);
        assert!((c.trace.mean_class_overall(0) - 0.5).abs() < 1e-12);
        let report = c.trace.energy_report(&spec_for_energy(), 0);
        assert_eq!(report.duration, 0.0);
        assert_eq!(report.total_joules, 0.0);
        let s = c.summarize(0);
        assert!((s.mean_utilization - 0.375).abs() < 1e-12);
    }

    #[test]
    fn summary_reports_per_class_slowdown_and_fairness() {
        let mut c = MetricsCollector::new();
        let mut a = record(1, false, 4.0, 1.0);
        a.class = JobClass::Stream;
        c.record_completion(a);
        c.record_completion(record(2, false, 1.0, 1.0));
        c.record_completion(record(3, false, 3.0, 1.0));
        let s = c.summarize(3);
        assert!((s.per_class_mean_slowdown[JobClass::Stream.index()] - 4.0).abs() < 1e-12);
        assert!((s.per_class_mean_slowdown[JobClass::Batch.index()] - 2.0).abs() < 1e-12);
        assert_eq!(s.per_class_mean_slowdown[JobClass::MlTraining.index()], 0.0);
        let expected = crate::stats::jain_fairness(&[4.0, 1.0, 3.0]);
        assert!((s.slowdown_fairness - expected).abs() < 1e-12);
        assert!(s.slowdown_fairness > 0.0 && s.slowdown_fairness <= 1.0);
    }

    #[test]
    fn equal_slowdowns_are_perfectly_fair() {
        let mut c = MetricsCollector::new();
        for i in 0..5 {
            c.record_completion(record(i, false, 2.5, 1.0));
        }
        let s = c.summarize(5);
        assert!((s.slowdown_fairness - 1.0).abs() < 1e-12);
    }

    fn spec_for_energy() -> ClusterSpec {
        use crate::config::{NodeClassSpec, PowerModel};
        use crate::node::SpeedProfile;
        ClusterSpec::new(vec![
            NodeClassSpec::new(
                "a",
                2,
                ResourceVector::of(8.0, 32.0, 0.0, 10.0),
                SpeedProfile::uniform(1.0),
            )
            .with_power(PowerModel::new(100.0, 300.0)),
            NodeClassSpec::new(
                "b",
                1,
                ResourceVector::of(16.0, 64.0, 4.0, 10.0),
                SpeedProfile::uniform(1.0),
            )
            .with_power(PowerModel::new(200.0, 800.0)),
        ])
    }

    fn sample(time: f64, util_a: f64, util_b: f64) -> UtilizationSample {
        UtilizationSample {
            time,
            per_class: PerClassUtilization::from_slice(&[
                ResourceVector::splat(util_a),
                ResourceVector::splat(util_b),
            ]),
            overall: (util_a + util_b) / 2.0,
            pending: 0,
            running: 0,
        }
    }

    #[test]
    fn idle_cluster_still_draws_idle_power() {
        let spec = spec_for_energy();
        let mut trace = UtilizationTrace::default();
        trace.samples.push(sample(0.0, 0.0, 0.0));
        trace.samples.push(sample(100.0, 0.0, 0.0));
        let report = trace.energy_report(&spec, 0);
        // 2 × 100 W + 1 × 200 W = 400 W over 100 s = 40 kJ.
        assert!((report.total_joules - 40_000.0).abs() < 1e-6);
        assert!((report.per_class_joules[0] - 20_000.0).abs() < 1e-6);
        assert!((report.per_class_joules[1] - 20_000.0).abs() < 1e-6);
        assert!((report.mean_watts() - 400.0).abs() < 1e-9);
        assert_eq!(report.joules_per_completed_job, 0.0);
        assert!((report.total_kwh - 40_000.0 / 3.6e6).abs() < 1e-12);
    }

    #[test]
    fn energy_grows_with_utilization() {
        let spec = spec_for_energy();
        let mut idle = UtilizationTrace::default();
        idle.samples.push(sample(0.0, 0.0, 0.0));
        idle.samples.push(sample(50.0, 0.0, 0.0));
        let mut busy = UtilizationTrace::default();
        busy.samples.push(sample(0.0, 0.8, 0.9));
        busy.samples.push(sample(50.0, 0.8, 0.9));
        let e_idle = idle.energy_report(&spec, 10);
        let e_busy = busy.energy_report(&spec, 10);
        assert!(e_busy.total_joules > e_idle.total_joules);
        assert!(e_busy.joules_per_completed_job > e_idle.joules_per_completed_job);
        // Full utilisation is bounded by peak power × duration.
        let peak_bound = (2.0 * 300.0 + 800.0) * 50.0;
        assert!(e_busy.total_joules <= peak_bound + 1e-6);
    }

    #[test]
    fn degenerate_traces_report_zero_energy() {
        let spec = spec_for_energy();
        let empty = UtilizationTrace::default();
        assert_eq!(empty.energy_report(&spec, 3).total_joules, 0.0);
        let mut single = UtilizationTrace::default();
        single.samples.push(sample(0.0, 0.5, 0.5));
        let report = single.energy_report(&spec, 3);
        assert_eq!(report.total_joules, 0.0);
        assert_eq!(report.duration, 0.0);
        assert_eq!(report.mean_watts(), 0.0);
    }

    #[test]
    fn bounded_mode_matches_exact_aggregates() {
        // Every summary field except the percentiles must be bit-identical
        // between the per-job log and the streaming aggregation.
        let mut exact = MetricsCollector::new();
        let mut bounded = MetricsCollector::new();
        bounded.configure(true);
        assert!(bounded.is_bounded() && !exact.is_bounded());
        for i in 0..50u64 {
            let mut job = record(i, i % 7 == 0, 1.0 + (i % 13) as f64 * 0.5, 0.8);
            job.class = JobClass::ALL[(i % 4) as usize];
            job.arrival = i as f64;
            job.finish = i as f64 + 20.0;
            exact.record_completion(job.clone());
            bounded.record_completion(job);
        }
        for t in 0..6 {
            let s = sample(t as f64 * 5.0, 0.1 * t as f64, 0.3);
            exact.record_sample(s.clone());
            bounded.record_sample(s);
        }
        exact.record_unfinished(2.5);
        bounded.record_unfinished(2.5);
        let se = exact.summarize(55);
        let sb = bounded.summarize(55);
        assert!(bounded.completed.is_empty() && bounded.trace.samples.is_empty());
        assert_eq!(se.total_jobs, sb.total_jobs);
        assert_eq!(se.completed_jobs, sb.completed_jobs);
        assert_eq!(se.unfinished_jobs, sb.unfinished_jobs);
        assert_eq!(se.missed_jobs, sb.missed_jobs);
        assert_eq!(se.miss_rate, sb.miss_rate);
        assert_eq!(se.mean_slowdown, sb.mean_slowdown);
        assert_eq!(se.mean_wait, sb.mean_wait);
        assert_eq!(se.mean_response, sb.mean_response);
        assert_eq!(se.total_utility, sb.total_utility);
        assert_eq!(se.max_total_utility, sb.max_total_utility);
        assert_eq!(se.utility_ratio, sb.utility_ratio);
        assert_eq!(se.makespan, sb.makespan);
        assert_eq!(se.mean_utilization, sb.mean_utilization);
        assert_eq!(se.per_class_miss_rate, sb.per_class_miss_rate);
        assert_eq!(se.per_class_mean_slowdown, sb.per_class_mean_slowdown);
        assert!((se.slowdown_fairness - sb.slowdown_fairness).abs() < 1e-12);
        assert_eq!(se.mean_parallelism, sb.mean_parallelism);
        // Percentiles are approximate, within the bucket resolution.
        for (e, b) in [
            (se.p50_slowdown, sb.p50_slowdown),
            (se.p95_slowdown, sb.p95_slowdown),
            (se.p99_slowdown, sb.p99_slowdown),
        ] {
            assert!((b / e - 1.0).abs() < 0.05, "percentile {b} vs exact {e}");
        }
    }

    #[test]
    fn bounded_mode_degenerate_cases() {
        let mut c = MetricsCollector::new();
        c.configure(true);
        let empty = c.summarize(0);
        assert_eq!(empty.mean_slowdown, 0.0);
        assert_eq!(empty.p99_slowdown, 0.0);
        assert_eq!(empty.makespan, 0.0);
        assert_eq!(empty.slowdown_fairness, 1.0);
        assert_eq!(empty.mean_utilization, 0.0);
        // A single completion reports its own slowdown exactly (min/max
        // clamping collapses the bucket error).
        c.record_completion(record(1, false, 3.25, 1.0));
        let one = c.summarize(1);
        assert_eq!(one.p50_slowdown, 3.25);
        assert_eq!(one.p99_slowdown, 3.25);
        assert!((one.slowdown_fairness - 1.0).abs() < 1e-12);
        // Reset clears the aggregates in place; configure(false) restores
        // the exact path.
        c.reset();
        assert_eq!(c.summarize(0).completed_jobs, 0);
        c.configure(false);
        c.record_completion(record(2, false, 1.0, 1.0));
        assert_eq!(c.completed.len(), 1);
    }

    #[test]
    fn trace_means() {
        let mut trace = UtilizationTrace::default();
        trace.samples.push(UtilizationSample {
            time: 0.0,
            per_class: PerClassUtilization::from_slice(&[ResourceVector::of(0.5, 0.5, 0.0, 0.0)]),
            overall: 0.4,
            pending: 1,
            running: 1,
        });
        trace.samples.push(UtilizationSample {
            time: 5.0,
            per_class: PerClassUtilization::from_slice(&[ResourceVector::of(1.0, 0.5, 0.0, 0.0)]),
            overall: 0.6,
            pending: 0,
            running: 2,
        });
        assert!((trace.mean_overall() - 0.5).abs() < 1e-12);
        assert!((trace.mean_class_overall(0) - 0.625).abs() < 1e-12);
        assert_eq!(trace.mean_class_overall(5), 0.0);
    }
}
