//! Cluster and simulation configuration.
//!
//! [`ClusterSpec`] describes the heterogeneous machine park (Table 1 of the
//! reconstructed evaluation); [`SimConfig`] collects the engine knobs
//! (decision epochs, reconfiguration cost, whether elastic re-scaling is
//! allowed at all).

use crate::job::JobClass;
use crate::node::{Node, NodeClassId, NodeId, SpeedProfile};
use crate::resources::ResourceVector;
use serde::{Deserialize, Serialize};

/// A simple linear machine power model: a machine draws `idle_watts` when
/// empty and `peak_watts` when its resources are fully utilised, interpolating
/// linearly in between. This is the standard utilisation-proportional model
/// used by cluster energy studies and feeds the energy accounting in
/// [`crate::metrics::EnergyReport`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Power draw of one idle machine, in watts.
    pub idle_watts: f64,
    /// Power draw of one fully utilised machine, in watts.
    pub peak_watts: f64,
}

impl PowerModel {
    /// Build a power model from idle and peak draw.
    pub fn new(idle_watts: f64, peak_watts: f64) -> Self {
        PowerModel {
            idle_watts,
            peak_watts,
        }
    }

    /// Power draw of one machine at scalar utilisation `util ∈ [0, 1]`.
    pub fn watts_at(&self, util: f64) -> f64 {
        let u = util.clamp(0.0, 1.0);
        self.idle_watts + (self.peak_watts - self.idle_watts) * u
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        // A generic dual-socket server: ~100 W idle, ~350 W at full load.
        PowerModel {
            idle_watts: 100.0,
            peak_watts: 350.0,
        }
    }
}

/// Description of one node class: how many machines, their capacity and their
/// job-class speed profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeClassSpec {
    /// Human-readable name used in tables/figures.
    pub name: String,
    /// Number of machines of this class.
    pub count: usize,
    /// Capacity of one machine.
    pub capacity: ResourceVector,
    /// Per-job-class execution speed factors.
    pub speed: SpeedProfile,
    /// Per-machine power model (defaults to a generic server when absent in
    /// serialised specs produced before energy accounting existed).
    #[serde(default)]
    pub power: PowerModel,
}

impl NodeClassSpec {
    /// Build a node class spec with the default power model.
    pub fn new(
        name: impl Into<String>,
        count: usize,
        capacity: ResourceVector,
        speed: SpeedProfile,
    ) -> Self {
        NodeClassSpec {
            name: name.into(),
            count,
            capacity,
            speed,
            power: PowerModel::default(),
        }
    }

    /// Override the per-machine power model.
    pub fn with_power(mut self, power: PowerModel) -> Self {
        self.power = power;
        self
    }

    /// Total capacity contributed by this class.
    pub fn total_capacity(&self) -> ResourceVector {
        self.capacity.scaled(self.count as f64)
    }
}

/// The full heterogeneous cluster description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// All node classes. `NodeClassId(i)` indexes into this vector.
    pub node_classes: Vec<NodeClassSpec>,
}

impl ClusterSpec {
    /// Build a spec from explicit classes.
    pub fn new(node_classes: Vec<NodeClassSpec>) -> Self {
        ClusterSpec { node_classes }
    }

    /// The default heterogeneous cluster used throughout the reconstructed
    /// evaluation (Table 1): four node classes mixing CPU-heavy, memory-heavy,
    /// GPU-accelerated and small edge machines.
    pub fn icpp_default() -> Self {
        ClusterSpec {
            node_classes: vec![
                NodeClassSpec::new(
                    "cpu-heavy",
                    8,
                    ResourceVector::of(32.0, 128.0, 0.0, 10.0),
                    SpeedProfile::new([1.2, 1.0, 0.8, 0.9]),
                )
                .with_power(PowerModel::new(120.0, 420.0)),
                NodeClassSpec::new(
                    "mem-heavy",
                    8,
                    ResourceVector::of(16.0, 256.0, 0.0, 10.0),
                    SpeedProfile::new([1.0, 1.3, 0.7, 0.8]),
                )
                .with_power(PowerModel::new(130.0, 380.0)),
                NodeClassSpec::new(
                    "gpu",
                    4,
                    ResourceVector::of(16.0, 128.0, 4.0, 25.0),
                    SpeedProfile::new([1.0, 1.0, 6.0, 3.0]),
                )
                .with_power(PowerModel::new(250.0, 950.0)),
                NodeClassSpec::new(
                    "edge",
                    4,
                    ResourceVector::of(8.0, 32.0, 0.0, 5.0),
                    SpeedProfile::new([0.7, 1.1, 0.3, 0.8]),
                )
                .with_power(PowerModel::new(25.0, 90.0)),
            ],
        }
    }

    /// A deliberately small homogeneous cluster used by unit tests and the
    /// quickstart example.
    pub fn tiny() -> Self {
        ClusterSpec {
            node_classes: vec![NodeClassSpec::new(
                "generic",
                2,
                ResourceVector::of(8.0, 32.0, 1.0, 10.0),
                SpeedProfile::uniform(1.0),
            )],
        }
    }

    /// A scaled variant of the default cluster with roughly `scale ×` the
    /// machine count in every class (at least one machine per class). Used by
    /// the scalability experiments (Table 4).
    pub fn icpp_scaled(scale: f64) -> Self {
        let mut spec = Self::icpp_default();
        for class in &mut spec.node_classes {
            class.count = ((class.count as f64 * scale).round() as usize).max(1);
        }
        spec
    }

    /// A homogeneous variant with the same aggregate capacity as this spec:
    /// every node class keeps its machine count but gets the average capacity
    /// and a uniform speed profile. Used by the heterogeneity ablation.
    pub fn homogenized(&self) -> Self {
        let total_nodes: usize = self.node_classes.iter().map(|c| c.count).sum();
        let total_cap = self.total_capacity();
        let avg_cap = if total_nodes > 0 {
            total_cap.scaled(1.0 / total_nodes as f64)
        } else {
            ResourceVector::zero()
        };
        ClusterSpec {
            node_classes: self
                .node_classes
                .iter()
                .map(|c| {
                    NodeClassSpec::new(
                        format!("{}-homog", c.name),
                        c.count,
                        avg_cap,
                        SpeedProfile::uniform(1.0),
                    )
                })
                .collect(),
        }
    }

    /// Number of node classes.
    pub fn num_classes(&self) -> usize {
        self.node_classes.len()
    }

    /// Total number of machines.
    pub fn num_nodes(&self) -> usize {
        self.node_classes.iter().map(|c| c.count).sum()
    }

    /// Aggregate capacity across the whole cluster.
    pub fn total_capacity(&self) -> ResourceVector {
        self.node_classes
            .iter()
            .fold(ResourceVector::zero(), |acc, c| acc + c.total_capacity())
    }

    /// Aggregate capacity of a single node class.
    pub fn class_capacity(&self, class: NodeClassId) -> ResourceVector {
        self.node_classes[class.0].total_capacity()
    }

    /// Speed factor of a node class for a job class.
    pub fn speed_factor(&self, class: NodeClassId, job_class: JobClass) -> f64 {
        self.node_classes[class.0].speed.factor(job_class)
    }

    /// The best speed factor available anywhere in the cluster for a job
    /// class.
    pub fn best_speed_factor(&self, job_class: JobClass) -> f64 {
        self.node_classes
            .iter()
            .map(|c| c.speed.factor(job_class))
            .fold(f64::MIN, f64::max)
    }

    /// Instantiate the concrete node list, ids dense and grouped by class.
    pub fn build_nodes(&self) -> Vec<Node> {
        let mut nodes = Vec::with_capacity(self.num_nodes());
        let mut next = 0usize;
        for (ci, class) in self.node_classes.iter().enumerate() {
            for _ in 0..class.count {
                nodes.push(Node::new(NodeId(next), NodeClassId(ci), class.capacity));
                next += 1;
            }
        }
        nodes
    }

    /// A rough aggregate "work capacity" in work-units per second for a given
    /// job-class mix (probabilities summing to 1). Used by the workload
    /// generator to translate an offered-load target into an arrival rate.
    pub fn work_capacity(&self, class_mix: &[(JobClass, f64)]) -> f64 {
        // Every machine can host roughly capacity/typical-unit demand units;
        // we approximate with the CPU dimension as the unit anchor: one
        // parallel unit ~ 2 cores.
        const CORES_PER_UNIT: f64 = 2.0;
        self.node_classes
            .iter()
            .map(|c| {
                let units = c.total_capacity().0[0] / CORES_PER_UNIT;
                let avg_speed: f64 = class_mix
                    .iter()
                    .map(|(jc, p)| p * c.speed.factor(*jc))
                    .sum();
                units * avg_speed
            })
            .sum()
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec::icpp_default()
    }
}

/// Engine knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// If set, a decision epoch is raised every `decision_interval` seconds
    /// even when no arrival/completion happened, letting the scheduler
    /// re-scale running jobs proactively.
    pub decision_interval: Option<f64>,
    /// Fraction of a job's total work added as overhead every time its degree
    /// of parallelism changes while running (elastic reconfiguration cost).
    pub reconfig_cost_frac: f64,
    /// If false, `Action::Scale` requests are rejected (rigid ablation).
    pub allow_scaling: bool,
    /// Minimum simulated time between two re-scaling operations on the same
    /// job (and between a job's start and its first re-scaling). Models the
    /// fact that elastic reconfiguration is not instantaneous and prevents
    /// degenerate policies from thrashing a job's parallelism.
    pub scale_cooldown: f64,
    /// Sampling period of the utilisation trace, in seconds.
    pub util_sample_interval: f64,
    /// Maximum number of scheduler invocations per decision epoch before the
    /// engine forces progress (guards against schedulers that keep emitting
    /// infeasible actions).
    pub max_decisions_per_epoch: usize,
    /// Hard cap on simulated time; the run aborts (completing metrics for the
    /// finished jobs only) if exceeded. Guards against livelock.
    pub max_sim_time: f64,
    /// Maintain scheduler snapshots incrementally (apply recorded deltas to
    /// a retained [`crate::view::ClusterView`] instead of rebuilding every
    /// row at every decision epoch). `false` forces the full-rebuild
    /// reference path on every refill — the two are property-tested
    /// byte-identical; the switch exists for differential testing and for
    /// benchmarking the refactor itself.
    #[serde(default = "default_incremental_view")]
    pub incremental_view: bool,
    /// Serve placement searches from the per-class bucketed free-capacity
    /// index ([`crate::fit_index::FitIndex`], delta-maintained by the
    /// cluster) instead of the reference slice walk. `false` forces the
    /// sorted-walk reference path — the two are property-tested
    /// byte-identical; the switch exists for differential testing and for
    /// benchmarking the refactor itself (the `sim_scale/*_walk` rows).
    #[serde(default = "default_placement_index")]
    pub placement_index: bool,
    /// Fold metrics into fixed-size streaming aggregates instead of keeping
    /// a per-job completion log and a full utilisation trace, so a run's
    /// metric footprint is O(1) in the number of jobs. Every
    /// [`crate::Summary`] field stays exact except the slowdown percentiles,
    /// which come from a log-bucketed histogram (relative error ≤ 2.2%).
    /// Million-arrival serving runs turn this on; evaluation sweeps that
    /// need exact percentiles or the utilisation trace leave it off.
    #[serde(default)]
    pub bounded_metrics: bool,
}

fn default_incremental_view() -> bool {
    true
}

fn default_placement_index() -> bool {
    true
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            decision_interval: Some(10.0),
            reconfig_cost_frac: 0.02,
            allow_scaling: true,
            scale_cooldown: 20.0,
            util_sample_interval: 5.0,
            max_decisions_per_epoch: 64,
            max_sim_time: 1e6,
            incremental_view: true,
            placement_index: true,
            bounded_metrics: false,
        }
    }
}

impl SimConfig {
    /// A configuration with elasticity disabled (used by the rigid ablation).
    pub fn rigid() -> Self {
        SimConfig {
            allow_scaling: false,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cluster_shape() {
        let spec = ClusterSpec::icpp_default();
        assert_eq!(spec.num_classes(), 4);
        assert_eq!(spec.num_nodes(), 24);
        let nodes = spec.build_nodes();
        assert_eq!(nodes.len(), 24);
        // Node ids are dense and grouped by class.
        assert_eq!(nodes[0].id, NodeId(0));
        assert_eq!(nodes[23].id, NodeId(23));
        assert_eq!(nodes[0].class, NodeClassId(0));
        assert_eq!(nodes[23].class, NodeClassId(3));
    }

    #[test]
    fn gpu_class_accelerates_ml() {
        let spec = ClusterSpec::icpp_default();
        let gpu = NodeClassId(2);
        assert!(spec.speed_factor(gpu, JobClass::MlTraining) > 3.0);
        assert!(spec.best_speed_factor(JobClass::MlTraining) >= 6.0);
        assert!(spec.best_speed_factor(JobClass::Batch) >= 1.0);
    }

    #[test]
    fn total_capacity_adds_up() {
        let spec = ClusterSpec::tiny();
        assert_eq!(
            spec.total_capacity(),
            ResourceVector::of(16.0, 64.0, 2.0, 20.0)
        );
    }

    #[test]
    fn scaled_cluster_grows() {
        let base = ClusterSpec::icpp_default();
        let big = ClusterSpec::icpp_scaled(4.0);
        assert_eq!(big.num_nodes(), base.num_nodes() * 4);
        let small = ClusterSpec::icpp_scaled(0.01);
        assert_eq!(small.num_nodes(), 4); // at least one per class
    }

    #[test]
    fn homogenized_preserves_aggregate_capacity() {
        let spec = ClusterSpec::icpp_default();
        let homog = spec.homogenized();
        let a = spec.total_capacity();
        let b = homog.total_capacity();
        for i in 0..crate::resources::NUM_RESOURCES {
            assert!((a.0[i] - b.0[i]).abs() < 1e-6);
        }
        for c in &homog.node_classes {
            assert_eq!(c.speed.factor(JobClass::MlTraining), 1.0);
        }
    }

    #[test]
    fn work_capacity_positive_for_default_mix() {
        let spec = ClusterSpec::icpp_default();
        let mix = [
            (JobClass::Batch, 0.4),
            (JobClass::Stream, 0.3),
            (JobClass::MlTraining, 0.15),
            (JobClass::MlInference, 0.15),
        ];
        assert!(spec.work_capacity(&mix) > 0.0);
    }

    #[test]
    fn power_model_interpolates_between_idle_and_peak() {
        let p = PowerModel::new(100.0, 500.0);
        assert!((p.watts_at(0.0) - 100.0).abs() < 1e-12);
        assert!((p.watts_at(1.0) - 500.0).abs() < 1e-12);
        assert!((p.watts_at(0.5) - 300.0).abs() < 1e-12);
        // Out-of-range utilisation is clamped.
        assert!((p.watts_at(-1.0) - 100.0).abs() < 1e-12);
        assert!((p.watts_at(2.0) - 500.0).abs() < 1e-12);
    }

    #[test]
    fn node_class_spec_without_power_field_deserialises_with_default() {
        // Specs serialised before energy accounting existed omit `power`.
        let json = r#"{
            "name": "legacy",
            "count": 2,
            "capacity": [8.0, 32.0, 0.0, 10.0],
            "speed": {"factors": [1.0, 1.0, 1.0, 1.0]}
        }"#;
        let spec: Result<NodeClassSpec, _> = serde_json::from_str(json);
        if let Ok(spec) = spec {
            assert_eq!(spec.power, PowerModel::default());
        } else {
            // If the capacity/speed wire format differs, round-trip a real
            // spec with the field stripped instead.
            let full = NodeClassSpec::new(
                "legacy",
                2,
                ResourceVector::of(8.0, 32.0, 0.0, 10.0),
                SpeedProfile::uniform(1.0),
            );
            let mut value = serde_json::to_value(&full).unwrap();
            value.as_object_mut().unwrap().remove("power");
            let back: NodeClassSpec = serde_json::from_value(value).unwrap();
            assert_eq!(back.power, PowerModel::default());
        }
    }

    #[test]
    fn default_cluster_power_reflects_hardware_classes() {
        let spec = ClusterSpec::icpp_default();
        let gpu = &spec.node_classes[2];
        let edge = &spec.node_classes[3];
        assert!(gpu.power.peak_watts > edge.power.peak_watts * 5.0);
        for class in &spec.node_classes {
            assert!(class.power.idle_watts > 0.0);
            assert!(class.power.peak_watts >= class.power.idle_watts);
        }
    }

    #[test]
    fn config_serde_roundtrip() {
        let cfg = SimConfig::default();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
        let spec = ClusterSpec::icpp_default();
        let json = serde_json::to_string(&spec).unwrap();
        let back: ClusterSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
