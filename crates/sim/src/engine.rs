//! The discrete-event simulation engine.
//!
//! Two levels of API are exposed:
//!
//! * [`Simulator::run`] drives a whole simulation with any [`Scheduler`]
//!   implementation and returns a [`SimulationResult`] — this is what the
//!   baselines, examples and benchmark harness use.
//! * the step-wise API ([`Simulator::start`], [`Simulator::advance`],
//!   [`Simulator::view`], [`Simulator::apply`], [`Simulator::finalize`]) gives
//!   a reinforcement-learning environment full control over decision epochs —
//!   `tcrm-core::env::SchedulingEnv` is built on it.

use crate::allocation::{Allocation, Placement};
use crate::cluster::Cluster;
use crate::config::{ClusterSpec, SimConfig};
use crate::event::{EventKind, EventQueue};
use crate::job::{Job, JobId};
use crate::metrics::{
    CompletedJob, MetricsCollector, PerClassUtilization, Summary, UtilizationSample,
    UtilizationTrace,
};
use crate::node::NodeClassId;
use crate::pending::PendingQueue;
use crate::resources::ResourceVector;
use crate::scheduler::{Action, ActionOutcome, Scheduler};
use crate::view::{ClusterView, NodeClassView, PendingJobView, RunningJobView, ViewSync};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Outcome of a full simulation run.
#[derive(Debug, Clone)]
pub struct SimulationResult {
    /// Aggregate statistics.
    pub summary: Summary,
    /// Per-job completion records.
    pub completed: Vec<CompletedJob>,
    /// Utilisation timeline.
    pub trace: UtilizationTrace,
}

/// What kind of event produced the decision epoch [`Simulator::advance`]
/// just returned for. Long-lived step-wise drivers (the serving plane, RL
/// environments) read this through [`Simulator::last_epoch`] to react to
/// arrivals (admission control) and completions (event streaming) without
/// diffing queue lengths between epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochKind {
    /// A job arrived and was appended to the pending queue.
    Arrival(JobId),
    /// A running job completed.
    Completion(JobId),
    /// A periodic decision-interval tick.
    Periodic,
}

/// Internal bookkeeping for one running job.
///
/// Progress is **lazily reconciled**: between two rate changes (start,
/// re-scale) a running job's execution rate is constant, so nothing touches
/// the job while time advances. `remaining_work` and `unit_seconds` are the
/// values *as of `last_update`*; [`Self::remaining_at`] derives the current
/// remaining work on demand and [`Self::reconcile`] folds the elapsed span in
/// exactly when the rate is about to change (or the job completes). Time
/// advances are therefore O(1) instead of O(running jobs).
#[derive(Debug, Clone)]
struct RunningJob {
    job: Job,
    alloc: Allocation,
    /// Remaining work as of `last_update` (not "now").
    remaining_work: f64,
    last_update: f64,
    started_at: f64,
    /// Invalidates stale completion events after re-scaling.
    version: u64,
    /// Time of the job's start or most recent re-scaling (cooldown tracking).
    last_scaled_at: f64,
    /// Integral of parallelism over time as of `last_update` (for the
    /// average-parallelism metric).
    unit_seconds: f64,
    scale_count: u32,
    /// Execution rate in work units per second — cached at start/re-scale
    /// (it only depends on the placement class and the degree of
    /// parallelism, both constant between re-scales).
    rate: f64,
}

impl RunningJob {
    fn compute_rate(cluster: &Cluster, alloc: &Allocation, job: &Job) -> f64 {
        let speed = cluster.speed_factor(alloc.class, job.class);
        speed * job.speedup.speedup(alloc.total_units())
    }

    /// Remaining work at `now`, derived from the last reconciled state.
    fn remaining_at(&self, now: f64) -> f64 {
        if now <= self.last_update {
            self.remaining_work
        } else {
            (self.remaining_work - (now - self.last_update) * self.rate).max(0.0)
        }
    }

    /// Fold the constant-rate span `[last_update, now]` into the stored
    /// progress. Must run before the rate changes (re-scale) and at
    /// completion.
    fn reconcile(&mut self, now: f64) {
        if now > self.last_update {
            let dt = now - self.last_update;
            self.remaining_work = (self.remaining_work - dt * self.rate).max(0.0);
            self.unit_seconds += dt * self.alloc.total_units() as f64;
            self.last_update = now;
        }
    }
}

/// One recorded change to the scheduler-visible state, the unit of the
/// incremental view protocol (see [`Simulator::view_into`]). Deltas are
/// **self-contained**: positions are valid in the view state that results
/// from applying every earlier delta, and rows/capacities are captured at
/// emit time, so a view can catch up from any recorded position.
// Row-carrying variants stay inline: boxing them would put one heap
// allocation on every arrival/start, breaking the allocation-free stepping
// contract the counting-allocator tests pin.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum ViewDelta {
    /// A job arrived: append this row to `pending` (its time-dependent
    /// `wait` field is refreshed on every refill).
    Arrived(PendingJobView),
    /// A pending job started: remove the row at this arrival-order position.
    PendingRemoved { pos: u32 },
    /// A job started: insert this row at the given start-order position
    /// (dynamic fields are refreshed on every refill).
    RunningInserted { pos: u32, row: RunningJobView },
    /// A running job completed: remove the row at this start-order position.
    RunningRemoved { pos: u32 },
    /// A node's free capacity changed: overwrite its `node_free` entry.
    NodeFree {
        class: u32,
        index: u32,
        free: ResourceVector,
    },
}

/// Process-unique simulator identity for the view-sync protocol. Cloning a
/// simulator deliberately mints a *fresh* id: a view synced against the
/// original must not incrementally follow the clone's diverging change log.
#[derive(Debug)]
struct SimId(u64);

static NEXT_SIM_ID: AtomicU64 = AtomicU64::new(1);

impl SimId {
    fn fresh() -> Self {
        SimId(NEXT_SIM_ID.fetch_add(1, Ordering::Relaxed))
    }
}

impl Clone for SimId {
    fn clone(&self) -> Self {
        SimId::fresh()
    }
}

/// The discrete-event simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    spec: Arc<ClusterSpec>,
    config: SimConfig,
    cluster: Cluster,
    time: f64,
    events: EventQueue,
    pending: PendingQueue,
    running: HashMap<JobId, RunningJob>,
    /// Running job ids kept sorted by `(started_at, id)` — the order
    /// [`Self::view`] exposes. Maintained incrementally on start/completion
    /// so building a view never re-sorts.
    running_order: Vec<JobId>,
    metrics: MetricsCollector,
    total_jobs: usize,
    arrivals_remaining: usize,
    /// Best-known count of arrivals still to come — what views report as
    /// `future_arrivals`. In batch runs this tracks `arrivals_remaining`
    /// exactly; in streaming runs it is seeded from the source's size hint
    /// and counted down per arrival, so schedulers (e.g. the DRL state
    /// encoder) see the same remaining-work signal as under [`Self::run`]
    /// even though only one arrival event is buffered at a time.
    arrival_hint: usize,
    started: bool,
    aborted: bool,
    /// What produced the most recent decision epoch (see [`EpochKind`]).
    last_epoch: EpochKind,
    /// Events whose timestamp was behind the simulation clock and was
    /// clamped forward to `self.time` (see [`Self::advance`]).
    clamped_events: u64,
    best_speed_cache: [f64; crate::job::JobClass::COUNT],
    /// Process-unique identity for the incremental-view sync protocol.
    sim_id: SimId,
    /// Bumped on every [`Self::reset`]; views synced to an earlier run
    /// rebuild instead of replaying a cleared change log.
    run_epoch: u64,
    /// Change log of scheduler-visible state (cleared on reset, skipped
    /// entirely when `config.incremental_view` is off). The drivers compact
    /// it once their view has consumed it — see [`Self::compact_log`] — so
    /// its length is bounded by the deltas of a single decision epoch, not
    /// the run: streaming runs keep their O(running + pending) memory
    /// contract.
    log: Vec<ViewDelta>,
    /// Absolute log position of `log[0]`: view cursors are absolute, so
    /// compaction just advances the base and views behind it rebuild.
    log_base: usize,
}

impl Simulator {
    /// Create a simulator for a cluster spec and engine configuration.
    pub fn new(spec: ClusterSpec, config: SimConfig) -> Self {
        let mut best_speed_cache = [1.0; crate::job::JobClass::COUNT];
        for class in crate::job::JobClass::ALL {
            best_speed_cache[class.index()] = spec.best_speed_factor(class);
        }
        let spec = Arc::new(spec);
        let mut cluster = Cluster::new((*spec).clone());
        cluster.set_indexed_placement(config.placement_index);
        Simulator {
            spec,
            config,
            cluster,
            time: 0.0,
            events: EventQueue::new(),
            pending: PendingQueue::new(),
            running: HashMap::new(),
            running_order: Vec::new(),
            metrics: MetricsCollector::new(),
            total_jobs: 0,
            arrivals_remaining: 0,
            arrival_hint: 0,
            started: false,
            aborted: false,
            last_epoch: EpochKind::Periodic,
            clamped_events: 0,
            best_speed_cache,
            sim_id: SimId::fresh(),
            run_epoch: 0,
            log: Vec::new(),
            log_base: 0,
        }
    }

    /// Current simulated time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The cluster spec.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The engine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Immutable access to the cluster (tests and invariant checks).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Number of jobs currently waiting.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Completion records collected so far (the RL environment reads newly
    /// appended entries to compute rewards between decision epochs).
    pub fn completed_so_far(&self) -> &[CompletedJob] {
        &self.metrics.completed
    }

    /// Total number of jobs submitted via [`Self::start`].
    pub fn total_jobs(&self) -> usize {
        self.total_jobs
    }

    /// Number of jobs currently running.
    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    /// Number of events whose timestamp was behind the simulation clock and
    /// was clamped forward (should stay 0 in a well-formed run; see
    /// [`Self::advance`]).
    pub fn clamped_event_count(&self) -> u64 {
        self.clamped_events
    }

    // ------------------------------------------------------------------
    // Step-wise API
    // ------------------------------------------------------------------

    /// Load a workload and schedule its arrival events. Must be called exactly
    /// once before [`Self::advance`].
    pub fn start(&mut self, mut jobs: Vec<Job>) {
        self.begin_run(jobs.len(), jobs.len());
        jobs.sort_by(|a, b| {
            a.arrival
                .partial_cmp(&b.arrival)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        self.total_jobs = jobs.len();
        self.arrivals_remaining = jobs.len();
        for job in jobs {
            debug_assert!(job.validate().is_ok(), "invalid job {}", job.id);
            self.events.push(job.arrival, EventKind::JobArrival(job));
        }
        // Periodic events scheduled after the arrivals, so same-timestamp
        // ties keep breaking arrival-first (insertion order).
        self.schedule_periodic_events();
    }

    // ------------------------------------------------------------------
    // Service hooks (the `tcrm-serve` serving plane is built on these)
    // ------------------------------------------------------------------

    /// Begin a run with **no upfront jobs**: arrivals are injected one by one
    /// through [`Self::submit`] while the run is live. `arrival_hint` seeds
    /// buffer pre-sizing and the `future_arrivals` count views report, like
    /// the streaming entry point's size hint.
    ///
    /// This is the external-ingress sibling of [`Self::start`]: a serving
    /// loop that receives jobs from producers (rather than owning an
    /// iterator) drives the run with `advance`/`apply` and keeps exactly as
    /// many future arrivals buffered as it wants.
    pub fn begin_service(&mut self, arrival_hint: usize) {
        // Serving loops keep at most the queue cap pending plus a one-job
        // lookahead buffered, so the pre-size is capped far below the hint:
        // a million-arrival hint must not translate into a million-slot
        // reservation (the reserve is capacity only — the hint itself still
        // sizes `future_arrivals` in scheduler views via `arrival_hint`).
        self.begin_run(arrival_hint.min(1024), arrival_hint.min(u32::MAX as usize));
        self.schedule_periodic_events();
    }

    /// Enqueue one externally submitted job as a future arrival event.
    /// Jobs must be submitted in non-decreasing arrival order (out-of-order
    /// arrivals are clamped forward and counted like any other stale event).
    pub fn submit(&mut self, job: Job) {
        assert!(self.started, "call Simulator::begin_service first");
        debug_assert!(job.validate().is_ok(), "invalid job {}", job.id);
        self.total_jobs += 1;
        self.arrivals_remaining += 1;
        self.events.push(job.arrival, EventKind::JobArrival(job));
    }

    /// Number of submitted-but-not-yet-arrived jobs buffered in the event
    /// queue. Serving loops keep this at one — the same single-lookahead
    /// invariant as [`Self::run_source`] — so results stay comparable to the
    /// batch drivers.
    pub fn buffered_arrivals(&self) -> usize {
        self.arrivals_remaining
    }

    /// What produced the decision epoch the latest [`Self::advance`] returned
    /// for.
    pub fn last_epoch(&self) -> EpochKind {
        self.last_epoch
    }

    /// Iterate the queued jobs in arrival order (admission policies inspect
    /// deadlines and classes without building a full view).
    pub fn pending_jobs(&self) -> impl Iterator<Item = &Job> + '_ {
        self.pending.iter()
    }

    /// One queued job by id.
    pub fn pending_job(&self, id: JobId) -> Option<&Job> {
        self.pending.get(id)
    }

    /// Remove a queued job before it ever starts (load shedding). The job's
    /// maximum utility is charged as forfeited — a shed job counts against
    /// the policy exactly like one that was never scheduled — and the job is
    /// returned to the caller for event reporting. Returns `None` when the
    /// id is not pending.
    pub fn cancel_pending(&mut self, id: JobId) -> Option<Job> {
        let (job, pos) = self.pending.remove(id)?;
        if self.config.incremental_view {
            self.log.push(ViewDelta::PendingRemoved { pos });
        }
        self.metrics.record_unfinished(job.utility.value);
        Some(job)
    }

    /// Degrade a queued job to rigid minimum-parallelism service (the
    /// `degrade-to-rigid` shed policy): the job loses malleability and its
    /// parallelism range collapses to `min_parallelism`, making it cheaper
    /// to place and immune to re-scaling churn. The job moves to the tail of
    /// the arrival order (remove + re-admit), which the incremental view
    /// protocol records as a removal plus a fresh arrival. Returns `false`
    /// when the id is not pending.
    pub fn degrade_pending_to_rigid(&mut self, id: JobId) -> bool {
        let Some((mut job, pos)) = self.pending.remove(id) else {
            return false;
        };
        if self.config.incremental_view {
            self.log.push(ViewDelta::PendingRemoved { pos });
        }
        job.malleable = false;
        job.max_parallelism = job.min_parallelism;
        if self.config.incremental_view {
            self.log
                .push(ViewDelta::Arrived(ClusterView::pending_view_of(
                    &job, self.time,
                )));
        }
        self.pending.push(job);
        true
    }

    /// Count jobs that were offered to the service but never reached
    /// [`Self::submit`] (e.g. a run aborted at `max_sim_time` with producers
    /// still queued), so truncated serving runs report the same totals as a
    /// batch run over the full job list — mirroring [`Self::run_source`]'s
    /// drain accounting.
    pub fn account_unsubmitted(&mut self, count: usize) {
        self.total_jobs += count;
    }

    /// Abort the run from an external driver (the serving loop's deadlock
    /// guard — the same condition the bundled drivers abort on). The next
    /// [`Self::advance`] returns `false`.
    pub fn abort_service(&mut self) {
        self.abort_run();
    }

    /// Finish a serving run **without consuming the simulator**: charge
    /// forfeited utility for unfinished jobs and summarize — exactly what
    /// [`Self::run_source`] does after its drive loop, so a serving run over
    /// the same jobs reports the identical [`Summary`]. The simulator stays
    /// reusable via [`Self::reset`].
    pub fn finish_service(&mut self) -> Summary {
        self.charge_unfinished();
        self.metrics.summarize(self.total_jobs)
    }

    /// True when the run was aborted (deadlock guard or `max_sim_time`).
    pub fn is_aborted(&self) -> bool {
        self.aborted
    }

    /// Run setup shared by [`Self::start`] and the streaming entry point:
    /// flags, buffer pre-sizing and the future-arrival hint. Event
    /// scheduling stays with the callers — their relative ordering of
    /// arrival vs periodic events differs and is part of the determinism
    /// contract.
    fn begin_run(&mut self, expected_jobs: usize, arrival_hint: usize) {
        assert!(!self.started, "Simulator::start called twice");
        self.started = true;
        self.arrival_hint = arrival_hint;
        self.metrics.configure(self.config.bounded_metrics);
        // Pre-size the per-run collections so steady-state stepping does not
        // grow them (part of the allocation-free stepping contract).
        self.pending.reserve(expected_jobs);
        self.running_order.reserve(expected_jobs.min(1024));
        self.metrics.reserve(expected_jobs);
        // Budget the view change log: one entry per arrival plus a few per
        // start/completion/scale, capped so huge streaming hints cannot
        // reserve unbounded memory (longer runs fall back to amortised
        // growth; the capacity persists across resets).
        if self.config.incremental_view {
            self.log.reserve(expected_jobs.saturating_mul(6).min(8_192));
        }
        // Budget the utilisation trace: enough for the horizon the workload
        // plausibly covers, capped so pathological sampling intervals cannot
        // reserve unbounded memory. Runs that outlive the budget fall back to
        // amortised growth. Bounded-metrics runs fold samples into fixed
        // state instead of storing them, so the trace stays unallocated.
        if !self.config.bounded_metrics {
            let sample_budget = (self.config.max_sim_time / self.config.util_sample_interval)
                .clamp(16.0, 1024.0) as usize;
            self.metrics.reserve_samples(sample_budget);
        }
    }

    /// Schedule the first periodic decision epoch and utilisation sample.
    fn schedule_periodic_events(&mut self) {
        if let Some(interval) = self.config.decision_interval {
            self.events.push(interval, EventKind::DecisionEpoch);
        }
        self.events.push(
            self.config.util_sample_interval,
            EventKind::UtilizationSample,
        );
    }

    /// True when every job has been processed (or the run aborted).
    pub fn is_done(&self) -> bool {
        self.aborted
            || (self.started
                && self.arrivals_remaining == 0
                && self.pending.is_empty()
                && self.running.is_empty())
    }

    /// Process events until the next decision epoch. Returns `true` if a
    /// decision is required, `false` if the simulation is over.
    pub fn advance(&mut self) -> bool {
        assert!(self.started, "call Simulator::start first");
        loop {
            if self.is_done() {
                return false;
            }
            let Some(event) = self.events.pop() else {
                // Nothing left to happen. If jobs are still pending they are
                // unschedulable or the policy refuses to start them; give the
                // caller one final decision opportunity only if something can
                // still change — otherwise abort.
                if !self.pending.is_empty() && self.running.is_empty() {
                    self.abort_run();
                }
                self.last_epoch = EpochKind::Periodic;
                return !self.is_done() && !self.aborted;
            };
            if event.time > self.config.max_sim_time {
                self.abort_run();
                return false;
            }
            // The engine never emits out-of-order events itself; if one ever
            // appears (e.g. a hand-crafted trace with a stale timestamp) it
            // is clamped forward to the current clock — time never runs
            // backwards. The clamp is explicit and counted so misuse is
            // observable instead of silently absorbed.
            let event_time = if event.time < self.time {
                debug_assert!(
                    event.time + 1e-9 >= self.time,
                    "event time {} is before simulation time {}",
                    event.time,
                    self.time
                );
                self.clamped_events += 1;
                self.time
            } else {
                event.time
            };
            // Running-job progress is lazily reconciled (constant rate
            // between re-scales), so advancing the clock touches no job.
            self.time = event_time;
            match event.kind {
                EventKind::JobArrival(job) => {
                    self.arrivals_remaining = self.arrivals_remaining.saturating_sub(1);
                    self.arrival_hint = self.arrival_hint.saturating_sub(1);
                    if self.config.incremental_view {
                        self.log
                            .push(ViewDelta::Arrived(ClusterView::pending_view_of(
                                &job, self.time,
                            )));
                    }
                    self.last_epoch = EpochKind::Arrival(job.id);
                    self.pending.push(job);
                    self.metrics.record_decision_epoch();
                    return true;
                }
                EventKind::JobCompletion { job, version } => {
                    let stale = self
                        .running
                        .get(&job)
                        .map(|r| r.version != version)
                        .unwrap_or(true);
                    if stale {
                        continue;
                    }
                    self.complete_job(job);
                    self.last_epoch = EpochKind::Completion(job);
                    self.metrics.record_decision_epoch();
                    return true;
                }
                EventKind::DecisionEpoch => {
                    if self.is_active() {
                        if let Some(interval) = self.config.decision_interval {
                            self.events
                                .push(self.time + interval, EventKind::DecisionEpoch);
                        }
                        self.last_epoch = EpochKind::Periodic;
                        self.metrics.record_decision_epoch();
                        return true;
                    }
                    // Inactive: drop the periodic timer.
                    continue;
                }
                EventKind::UtilizationSample => {
                    self.record_utilization_sample();
                    if self.is_active() {
                        self.events.push(
                            self.time + self.config.util_sample_interval,
                            EventKind::UtilizationSample,
                        );
                    }
                    continue;
                }
            }
        }
    }

    /// Build the scheduler-facing snapshot for the current time.
    pub fn view(&self) -> ClusterView {
        let mut out = ClusterView::new(
            self.time,
            Arc::clone(&self.spec),
            Vec::new(),
            Vec::new(),
            Vec::new(),
            self.arrivals_remaining,
        );
        self.view_into(&mut out);
        out
    }

    /// Refill a previously built snapshot in place — the allocation-free
    /// sibling of [`Self::view`].
    ///
    /// When the snapshot was last filled by **this simulator in this run**
    /// (tracked through an engine-owned sync cookie) and
    /// [`SimConfig::incremental_view`] is on, the refill is *incremental*:
    /// the structural deltas recorded since the last refill (job arrived /
    /// started / completed, node capacities touched) are replayed onto the
    /// retained rows, and only the time-dependent fields (pending `wait`,
    /// running `remaining_work`/`rate`/`units`/`scale_ready`, per-class free
    /// capacity, the deadline index and the pending-work aggregate) are
    /// refreshed — O(changes + rows) cheap field writes instead of
    /// reconstructing every row and re-reading every node.
    ///
    /// Any view that cannot prove it is in sync — freshly built, fabricated,
    /// last filled by another simulator or an earlier run — falls back to
    /// [`Self::rebuild_view_into`], the full-rebuild reference. Both paths
    /// produce byte-identical views (pinned by the paired-simulator property
    /// tests in `tests/incremental_view.rs`).
    pub fn view_into(&self, out: &mut ClusterView) {
        let in_sync = self.config.incremental_view
            && out.sync.sim_id == self.sim_id.0
            && out.sync.run_epoch == self.run_epoch
            && out.sync.log_pos >= self.log_base
            && out.sync.log_pos - self.log_base <= self.log.len()
            && Arc::ptr_eq(&out.spec, &self.spec);
        if !in_sync {
            self.rebuild_view_into(out);
            return;
        }
        let from = out.sync.log_pos - self.log_base;
        for delta in &self.log[from..] {
            match delta {
                ViewDelta::Arrived(row) => out.pending.push(row.clone()),
                ViewDelta::PendingRemoved { pos } => {
                    out.pending.remove(*pos as usize);
                }
                ViewDelta::RunningInserted { pos, row } => {
                    out.running.insert(*pos as usize, row.clone())
                }
                ViewDelta::RunningRemoved { pos } => {
                    out.running.remove(*pos as usize);
                }
                ViewDelta::NodeFree { class, index, free } => {
                    // Routed through the setter so the view's fit index
                    // tracks the change; the rebuild path re-derives it,
                    // keeping both paths byte-identical.
                    out.classes[*class as usize].set_node_free(*index as usize, *free);
                }
            }
        }
        out.sync.log_pos = self.log_base + self.log.len();
        self.refresh_dynamic_fields(out);
        // The deadline index comes straight from the engine-maintained
        // order; the rebuild reference recomputes it by sorting, so the
        // paired tests cross-check the maintained index itself.
        out.pending_by_deadline.clear();
        out.pending_by_deadline
            .extend(self.pending.deadline_positions());
    }

    /// Rebuild every row of the snapshot from scratch — the full-rebuild
    /// correctness reference of the incremental protocol (and the refill
    /// path when the view is out of sync or `incremental_view` is off). The
    /// static per-class skeleton (names, capacities, speed factors) is still
    /// reused when the spec is unchanged; pending/running rows are cleared
    /// and re-extended into the retained buffers, with running jobs in
    /// `(started_at, id)` order straight from the maintained index.
    pub fn rebuild_view_into(&self, out: &mut ClusterView) {
        // A spec change invalidates the whole static class skeleton (names,
        // node counts, capacities, speed factors), not just its length — a
        // view refilled from a different simulator must rebuild even when
        // both clusters happen to have the same number of classes.
        let spec_changed = !Arc::ptr_eq(&out.spec, &self.spec);
        if spec_changed {
            out.spec = Arc::clone(&self.spec);
        }
        if spec_changed || out.classes.len() != self.cluster.num_classes() {
            out.classes = self
                .cluster
                .class_ids()
                .map(|id| {
                    let spec = &self.spec.node_classes[id.0];
                    let mut view = NodeClassView {
                        id,
                        name: spec.name.clone(),
                        node_count: spec.count,
                        total_capacity: self.cluster.total_capacity_of_class(id),
                        free_capacity: self.cluster.free_capacity_of_class(id),
                        node_free: self.cluster.nodes_of_class(id).map(|n| n.free()).collect(),
                        // Straight from the spec (not derived by division) so
                        // view-side bucket ranks are bit-identical to the
                        // cluster's.
                        unit_capacity: spec.capacity,
                        fit_index: Default::default(),
                        speed_factors: spec.speed.as_array(),
                    };
                    view.rebuild_fit_index();
                    view
                })
                .collect();
        } else {
            for (class_view, id) in out.classes.iter_mut().zip(self.cluster.class_ids()) {
                class_view.node_free.clear();
                class_view
                    .node_free
                    .extend(self.cluster.nodes_of_class(id).map(|n| n.free()));
                // O(n) refill of the retained index buffers (no allocation
                // once warmed) — the reference recomputation the incremental
                // `set_node_free` maintenance is property-tested against.
                class_view.rebuild_fit_index();
            }
        }
        out.pending.clear();
        out.pending.extend(
            self.pending
                .iter()
                .map(|j| ClusterView::pending_view_of(j, self.time)),
        );
        out.running.clear();
        out.running.extend(
            self.running_order
                .iter()
                .map(|id| self.running_row(&self.running[id])),
        );
        self.refresh_dynamic_fields(out);
        // Reference computation of the deadline index: an actual sort over
        // the rows, independent of the engine-maintained order (into the
        // retained buffer).
        let (pending, index) = (&out.pending, &mut out.pending_by_deadline);
        ClusterView::fill_sorted_deadline_index(pending, index);
        out.sync = ViewSync {
            sim_id: self.sim_id.0,
            run_epoch: self.run_epoch,
            log_pos: self.log_base + self.log.len(),
        };
    }

    /// Rewrite the time-dependent fields shared by the incremental and
    /// rebuild refill paths, using identical expressions so both produce
    /// bit-identical snapshots: pending `wait` (and the pending-work
    /// aggregate, summed in row order), the running rows' progress/rate/
    /// cooldown state, per-class free capacity from the cluster's
    /// delta-maintained aggregates, and the header fields.
    fn refresh_dynamic_fields(&self, out: &mut ClusterView) {
        out.time = self.time;
        out.future_arrivals = self.arrivals_remaining.max(self.arrival_hint);
        for (class_view, id) in out.classes.iter_mut().zip(self.cluster.class_ids()) {
            class_view.free_capacity = self.cluster.free_capacity_of_class(id);
        }
        let mut pending_work = 0.0;
        for row in &mut out.pending {
            row.wait = (self.time - row.arrival).max(0.0);
            pending_work += row.total_work;
        }
        out.pending_work_total = pending_work;
        debug_assert_eq!(out.running.len(), self.running_order.len());
        for (row, id) in out.running.iter_mut().zip(self.running_order.iter()) {
            let r = &self.running[id];
            row.units = r.alloc.total_units();
            row.remaining_work = r.remaining_at(self.time);
            row.rate = r.rate;
            row.scale_ready = self.scale_ready(r);
        }
    }

    /// One running-job row, built with the exact expressions the refresh
    /// pass uses for the dynamic fields.
    fn running_row(&self, r: &RunningJob) -> RunningJobView {
        RunningJobView {
            id: r.job.id,
            class: r.job.class,
            node_class: r.alloc.class,
            units: r.alloc.total_units(),
            remaining_work: r.remaining_at(self.time),
            total_work: r.job.total_work,
            arrival: r.job.arrival,
            started_at: r.started_at,
            deadline: r.job.deadline,
            demand_per_unit: r.job.demand_per_unit,
            min_parallelism: r.job.min_parallelism,
            max_parallelism: r.job.max_parallelism,
            speedup: r.job.speedup,
            malleable: r.job.malleable,
            rate: r.rate,
            utility_value: r.job.utility.value,
            scale_ready: self.scale_ready(r),
        }
    }

    fn scale_ready(&self, r: &RunningJob) -> bool {
        self.config.allow_scaling
            && self.time - r.last_scaled_at >= self.config.scale_cooldown - 1e-9
    }

    /// Apply one scheduling action at the current decision epoch.
    pub fn apply(&mut self, action: &Action) -> ActionOutcome {
        let outcome = match *action {
            Action::Wait => ActionOutcome::Waited,
            Action::Start {
                job,
                class,
                parallelism,
            } => self.apply_start(job, class, parallelism),
            Action::Scale {
                job,
                new_parallelism,
            } => self.apply_scale(job, new_parallelism),
        };
        if outcome.is_invalid() {
            self.metrics.record_invalid_action();
        }
        debug_assert!(self.cluster.check_invariants().is_ok());
        outcome
    }

    /// Finish the run: charge forfeited utility for unfinished jobs and return
    /// the result. Consumes the simulator.
    pub fn finalize(mut self) -> SimulationResult {
        self.charge_unfinished();
        let summary = self.metrics.summarize(self.total_jobs);
        SimulationResult {
            summary,
            completed: self.metrics.completed,
            trace: self.metrics.trace,
        }
    }

    /// Return the simulator to its freshly constructed state — cluster fully
    /// free, clock at zero, queues and metrics empty — while retaining every
    /// allocated buffer, so one simulator instance can serve many
    /// replications without rebuilding the cluster or regrowing collections.
    pub fn reset(&mut self) {
        self.cluster.reset();
        self.time = 0.0;
        self.events.clear();
        self.pending.clear();
        self.running.clear();
        self.running_order.clear();
        self.metrics.reset();
        self.total_jobs = 0;
        self.arrivals_remaining = 0;
        self.arrival_hint = 0;
        self.started = false;
        self.aborted = false;
        self.last_epoch = EpochKind::Periodic;
        self.clamped_events = 0;
        // Views synced to the previous run must rebuild, not replay a
        // cleared change log.
        self.run_epoch = self.run_epoch.wrapping_add(1);
        self.log.clear();
        self.log_base = 0;
    }

    // ------------------------------------------------------------------
    // Convenience driver
    // ------------------------------------------------------------------

    /// Run a complete simulation of `jobs` under `scheduler`.
    pub fn run<S: Scheduler + ?Sized>(
        mut self,
        jobs: Vec<Job>,
        scheduler: &mut S,
    ) -> SimulationResult {
        scheduler.on_simulation_start();
        self.start(jobs);
        // One view allocated for the whole run; every decision epoch refills
        // it in place (clear-and-refill, no rebuild).
        let mut view = self.view();
        self.drive(scheduler, &mut view);
        self.finalize()
    }

    /// Run a complete simulation reusing this simulator and a caller-retained
    /// snapshot buffer, returning only the [`Summary`].
    ///
    /// This is the sweep-loop sibling of [`Self::run`]: the simulator is
    /// [`Self::reset`] first, so the same instance (and the same `view`) can
    /// serve replication after replication while every per-run buffer —
    /// cluster nodes, event heap, pending/running sets, metrics, the
    /// utilisation trace and the view itself — is reused in place. Results
    /// are identical to a fresh `Simulator::new(..).run(..)` over the same
    /// jobs and scheduler state. Completion records of the run remain
    /// readable through [`Self::completed_so_far`] until the next reset.
    pub fn run_reusing<S: Scheduler + ?Sized>(
        &mut self,
        jobs: Vec<Job>,
        scheduler: &mut S,
        view: &mut ClusterView,
    ) -> Summary {
        self.reset();
        scheduler.on_simulation_start();
        self.start(jobs);
        self.drive(scheduler, view);
        self.charge_unfinished();
        self.metrics.summarize(self.total_jobs)
    }

    /// Run a complete simulation pulling jobs **on demand** from a streaming
    /// source instead of requiring an upfront `Vec<Job>`.
    ///
    /// The engine keeps exactly one future arrival buffered: each time an
    /// arrival fires, the next job is pulled from the iterator and its
    /// arrival event enqueued, so arbitrarily long (or lazily generated)
    /// workloads simulate in O(running + pending) memory. The source must
    /// yield jobs in non-decreasing arrival order (`tcrm-workload` sources
    /// do); out-of-order arrivals are clamped forward and counted like any
    /// other stale event. Results are identical to [`Self::run`] over the
    /// same job list, with one caveat: events at *exactly* equal timestamps
    /// break ties by scheduling order, and lazily enqueued arrivals schedule
    /// later than in a batch run — only observable for hand-crafted traces
    /// whose arrivals exactly coincide with completions or sampling ticks.
    ///
    /// Like [`Self::run_reusing`], the simulator is [`Self::reset`] first and
    /// every per-run buffer — including the collections pre-sized from the
    /// source's `size_hint` — is retained across calls, so replication
    /// sweeps stay allocation-free after the first (warm-up) run (pinned by
    /// `tests/alloc_free_stream.rs`).
    pub fn run_source<S, I>(
        &mut self,
        mut source: I,
        scheduler: &mut S,
        view: &mut ClusterView,
    ) -> Summary
    where
        S: Scheduler + ?Sized,
        I: Iterator<Item = Job>,
    {
        self.reset();
        scheduler.on_simulation_start();
        self.start_stream(&mut source);
        self.drive_stream(&mut source, scheduler, view);
        if self.aborted {
            // An aborted run (max_sim_time exceeded) may leave jobs unpulled.
            // They still count toward the total — exactly as the batch path
            // counts every upfront arrival as unfinished — so truncated
            // streamed runs report the same miss/unfinished rates as
            // `Self::run` over the same job list. Only sources advertising a
            // finite upper size bound are drained; an endless generator
            // keeps the pulled-only count (it has no meaningful total).
            if source.size_hint().1.is_some() {
                self.total_jobs += source.count();
            }
        }
        self.charge_unfinished();
        self.metrics.summarize(self.total_jobs)
    }

    /// Begin a streaming run: pre-size the per-run collections from the
    /// source's size hint, seed the future-arrival hint (so views report the
    /// expected remaining-arrival count, not just the single buffered
    /// arrival), schedule the periodic events, and buffer the first arrival.
    fn start_stream<I: Iterator<Item = Job>>(&mut self, source: &mut I) {
        let (lower, upper) = source.size_hint();
        // An exact hint (every bundled source provides one) sizes the
        // buffers and the arrival count for the whole run; unbounded sources
        // get bounded values and fall back to amortised growth.
        let expected = upper.unwrap_or(lower);
        self.begin_run(expected.min(65_536), expected.min(u32::MAX as usize));
        self.schedule_periodic_events();
        self.pull_next_arrival(source);
    }

    /// Buffer the next arrival from the source, if any. Maintains the
    /// streaming invariant: while the source is not exhausted, exactly one
    /// future arrival event is enqueued (`arrivals_remaining == 1`).
    fn pull_next_arrival<I: Iterator<Item = Job>>(&mut self, source: &mut I) {
        if let Some(job) = source.next() {
            debug_assert!(job.validate().is_ok(), "invalid job {}", job.id);
            self.total_jobs += 1;
            self.arrivals_remaining += 1;
            self.events.push(job.arrival, EventKind::JobArrival(job));
        }
    }

    /// The decision loop shared by [`Self::run`] and [`Self::run_reusing`].
    fn drive<S: Scheduler + ?Sized>(&mut self, scheduler: &mut S, view: &mut ClusterView) {
        self.drive_stream(&mut std::iter::empty(), scheduler, view)
    }

    /// The decision loop of every driver. In batch mode `source` is an empty
    /// iterator (all arrivals were enqueued by [`Self::start`]); in streaming
    /// mode the next arrival is pulled as soon as the buffered one fires —
    /// `arrivals_remaining` drops to zero only when the source is exhausted,
    /// so the refill happens before the scheduler sees the epoch.
    fn drive_stream<S, I>(&mut self, source: &mut I, scheduler: &mut S, view: &mut ClusterView)
    where
        S: Scheduler + ?Sized,
        I: Iterator<Item = Job>,
    {
        while self.advance() {
            if self.arrivals_remaining == 0 {
                self.pull_next_arrival(source);
            }
            let epoch_changed_state = self.decision_rounds(scheduler, view);
            // The driver's view has consumed every recorded delta by the
            // end of the epoch: drop them so the log stays O(one epoch)
            // instead of O(whole run) — load-bearing for the streaming
            // entry point's O(running + pending) memory contract.
            self.compact_log(view);
            // Deadlock guard: nothing is running, nothing is left to arrive
            // and the scheduler did not (or could not) start any pending job
            // at this epoch — the state can never change again, so abort
            // rather than spin on periodic decision epochs.
            if !epoch_changed_state
                && self.running.is_empty()
                && self.arrivals_remaining == 0
                && !self.pending.is_empty()
            {
                self.abort_run();
            }
        }
    }

    /// Let the scheduler act (possibly repeatedly) at the current decision
    /// epoch. Returns whether any action changed simulator state.
    fn decision_rounds<S: Scheduler + ?Sized>(
        &mut self,
        scheduler: &mut S,
        view: &mut ClusterView,
    ) -> bool {
        self.decision_rounds_hooked(scheduler, view, &mut |_, _| {})
    }

    /// `decision_rounds` semantics (identical round/termination
    /// logic, so external drivers reproduce the bundled drivers' results
    /// exactly), with `on_action` observing every `(action, outcome)` pair
    /// as it is applied — the event hook the serving plane uses to stream
    /// start/scale decisions and record per-job decision latency.
    pub fn decision_rounds_hooked<S, F>(
        &mut self,
        scheduler: &mut S,
        view: &mut ClusterView,
        on_action: &mut F,
    ) -> bool
    where
        S: Scheduler + ?Sized,
        F: FnMut(&Action, &ActionOutcome),
    {
        let mut rounds = 0;
        let mut epoch_changed_state = false;
        loop {
            rounds += 1;
            if rounds > self.config.max_decisions_per_epoch {
                break;
            }
            self.view_into(view);
            let actions = scheduler.decide(view);
            if actions.is_empty() {
                break;
            }
            let mut any_change = false;
            let mut all_wait = true;
            for action in &actions {
                if !matches!(action, Action::Wait) {
                    all_wait = false;
                }
                let outcome = self.apply(action);
                any_change |= outcome.changed_state();
                on_action(action, &outcome);
            }
            epoch_changed_state |= any_change;
            if all_wait || !any_change {
                break;
            }
        }
        epoch_changed_state
    }

    /// Drop change-log entries the given view has fully consumed (a no-op
    /// unless the view is synced to the log tip). Cursors are absolute
    /// positions, so compaction just advances `log_base` and clears the
    /// buffer (capacity retained — the stepping paths stay
    /// allocation-free); any *other* view still synced behind the new base
    /// fails the `log_pos >= log_base` check on its next refill and falls
    /// back to the full rebuild, never to a wrong replay.
    ///
    /// The bundled drivers ([`Self::run`], [`Self::run_reusing`],
    /// [`Self::run_source`]) call this every epoch. Long-lived users of the
    /// step-wise API that keep one refilled view (e.g. an RL environment)
    /// should do the same after refilling it, so the log stays bounded by
    /// one epoch instead of growing with the run.
    pub fn compact_log(&mut self, view: &ClusterView) {
        if self.config.incremental_view
            && view.sync.sim_id == self.sim_id.0
            && view.sync.run_epoch == self.run_epoch
            && view.sync.log_pos == self.log_base + self.log.len()
        {
            self.log_base += self.log.len();
            self.log.clear();
        }
    }

    /// Charge forfeited utility for every job still pending or running.
    fn charge_unfinished(&mut self) {
        for job in self.pending.iter() {
            self.metrics.record_unfinished(job.utility.value);
        }
        for r in self.running.values() {
            self.metrics.record_unfinished(r.job.utility.value);
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn is_active(&self) -> bool {
        self.arrivals_remaining > 0 || !self.pending.is_empty() || !self.running.is_empty()
    }

    fn abort_run(&mut self) {
        self.aborted = true;
    }

    /// Record the current free capacity of every node a placement touched
    /// (after the cluster mutation), so incremental views patch exactly the
    /// dirty `node_free` entries.
    fn log_node_frees(&mut self, placements: &[Placement]) {
        if !self.config.incremental_view {
            return;
        }
        for p in placements {
            let node = &self.cluster.nodes()[p.node.0];
            self.log.push(ViewDelta::NodeFree {
                class: node.class.0 as u32,
                index: self.cluster.index_in_class(p.node) as u32,
                free: node.free(),
            });
        }
    }

    /// (Re-)schedule the completion event of a job whose progress was just
    /// reconciled (start or re-scale): `remaining_work` is current as of
    /// `self.time` and `rate` freshly cached, so the finish prediction is a
    /// single constant-rate extrapolation.
    fn schedule_completion(&mut self, job: JobId) {
        let (finish, version) = {
            let r = self.running.get_mut(&job).expect("unknown running job");
            r.version += 1;
            debug_assert_eq!(r.last_update, self.time, "schedule before reconcile");
            (self.time + r.remaining_work / r.rate.max(1e-12), r.version)
        };
        self.events
            .push(finish, EventKind::JobCompletion { job, version });
    }

    fn complete_job(&mut self, job_id: JobId) {
        let Some(started_at) = self.running.get(&job_id).map(|r| r.started_at) else {
            return;
        };
        // Must happen while the job is still in the map: the order index's
        // sort key is looked up there.
        let pos = self.remove_running_order(job_id, started_at);
        if self.config.incremental_view {
            self.log.push(ViewDelta::RunningRemoved { pos: pos as u32 });
        }
        let mut r = self.running.remove(&job_id).expect("running job vanished");
        // Fold the final constant-rate span into the progress integrals
        // before the record is written.
        r.reconcile(self.time);
        self.cluster
            .release_placement(&r.alloc.demand_per_unit, &r.alloc.placements);
        self.log_node_frees(&r.alloc.placements);
        let job = &r.job;
        let finish = self.time;
        let wait = r.started_at - job.arrival;
        let response = finish - job.arrival;
        let best_speed = self.best_speed_cache[job.class.index()];
        let best_case = job.best_case_service_time(best_speed);
        let slowdown = response / best_case.max(1.0);
        let missed = finish > job.deadline + 1e-9;
        let utility = job.utility.utility(job.arrival, job.deadline, finish);
        let elapsed = (finish - r.started_at).max(1e-9);
        let avg_parallelism = r.unit_seconds / elapsed;
        self.metrics.record_completion(CompletedJob {
            id: job.id,
            class: job.class,
            arrival: job.arrival,
            start: r.started_at,
            finish,
            deadline: job.deadline,
            wait,
            response,
            best_case_service: best_case,
            slowdown,
            missed,
            utility,
            max_utility: job.utility.value,
            avg_parallelism,
            scale_count: r.scale_count,
        });
    }

    fn apply_start(
        &mut self,
        job_id: JobId,
        class: NodeClassId,
        parallelism: u32,
    ) -> ActionOutcome {
        if class.0 >= self.cluster.num_classes() {
            return ActionOutcome::Invalid("unknown node class");
        }
        // O(1) id-indexed lookup (the old path scanned the whole queue).
        let Some(job) = self.pending.get(job_id) else {
            return ActionOutcome::Invalid("job not pending");
        };
        let units = job.clamp_parallelism(parallelism);
        let demand = job.demand_per_unit;
        let Some(placements) = self.cluster.find_placement(class, &demand, units) else {
            return ActionOutcome::Invalid("insufficient capacity");
        };
        let (job, pending_pos) = self.pending.remove(job_id).expect("pending job vanished");
        if self.config.incremental_view {
            self.log
                .push(ViewDelta::PendingRemoved { pos: pending_pos });
        }
        self.cluster.apply_placement(&demand, &placements);
        self.log_node_frees(&placements);
        let alloc = Allocation::new(job.id, class, placements, demand);
        let rate = RunningJob::compute_rate(&self.cluster, &alloc, &job);
        let running = RunningJob {
            remaining_work: job.total_work,
            last_update: self.time,
            started_at: self.time,
            version: 0,
            last_scaled_at: self.time,
            unit_seconds: 0.0,
            scale_count: 0,
            rate,
            alloc,
            job,
        };
        self.running.insert(job_id, running);
        let order_pos = self.insert_running_order(job_id);
        if self.config.incremental_view {
            let row = self.running_row(&self.running[&job_id]);
            self.log.push(ViewDelta::RunningInserted {
                pos: order_pos as u32,
                row,
            });
        }
        self.schedule_completion(job_id);
        ActionOutcome::Started
    }

    /// Insert `job_id` into the `(started_at, id)`-sorted order index and
    /// return its position. Jobs start at the current clock, so the
    /// insertion point is at or very near the tail; the binary search only
    /// resolves same-timestamp ties.
    fn insert_running_order(&mut self, job_id: JobId) -> usize {
        let key = |id: &JobId| {
            let r = &self.running[id];
            (r.started_at, *id)
        };
        let probe = key(&job_id);
        let pos = self.running_order.partition_point(|id| key(id) < probe);
        self.running_order.insert(pos, job_id);
        pos
    }

    /// Remove `job_id` from the order index and return the position it
    /// occupied. Pure binary search — O(log n) in all cases: the
    /// `(started_at, id)` key is unique and totally ordered (start times are
    /// engine clock readings, which are always finite and non-decreasing),
    /// so the probe lands exactly on the job's entry. Index corruption is a
    /// bug, not a recoverable state — it would silently desynchronise every
    /// incremental view — so it panics instead of degrading to a linear
    /// scan.
    fn remove_running_order(&mut self, job_id: JobId, started_at: f64) -> usize {
        let probe = (started_at, job_id);
        let pos = self.running_order.partition_point(|id| {
            let r = &self.running[id];
            (r.started_at, *id) < probe
        });
        assert!(
            self.running_order.get(pos) == Some(&job_id),
            "running-order index out of sync for {job_id}"
        );
        self.running_order.remove(pos);
        pos
    }

    fn apply_scale(&mut self, job_id: JobId, new_parallelism: u32) -> ActionOutcome {
        if !self.config.allow_scaling {
            return ActionOutcome::Invalid("scaling disabled");
        }
        let Some(r) = self.running.get(&job_id) else {
            return ActionOutcome::Invalid("job not running");
        };
        if !r.job.malleable {
            return ActionOutcome::Invalid("job is rigid");
        }
        let target = new_parallelism.clamp(r.job.min_parallelism, r.job.max_parallelism);
        let current = r.alloc.total_units();
        if target == current {
            return ActionOutcome::Invalid("no parallelism change");
        }
        if self.time - r.last_scaled_at < self.config.scale_cooldown - 1e-9 {
            return ActionOutcome::Invalid("reconfiguration cooldown");
        }
        let class = r.alloc.class;
        let demand = r.job.demand_per_unit;
        let reconfig_cost = r.job.total_work * self.config.reconfig_cost_frac;
        let speed = self.cluster.speed_factor(class, r.job.class);
        let speedup = r.job.speedup;
        if target > current {
            let extra = target - current;
            let Some(placements) = self.cluster.find_placement(class, &demand, extra) else {
                return ActionOutcome::Invalid("insufficient capacity for scale-up");
            };
            self.cluster.apply_placement(&demand, &placements);
            self.log_node_frees(&placements);
            let r = self.running.get_mut(&job_id).expect("running job vanished");
            // Fold the progress of the old-rate span in before the rate
            // changes (lazy-reconciliation contract).
            r.reconcile(self.time);
            r.alloc.grow(&placements);
            r.remaining_work += reconfig_cost;
            r.scale_count += 1;
            r.last_scaled_at = self.time;
            r.rate = speed * speedup.speedup(r.alloc.total_units());
        } else {
            let shrink_by = current - target;
            let r = self.running.get_mut(&job_id).expect("running job vanished");
            r.reconcile(self.time);
            let released = r.alloc.shrink(shrink_by);
            r.remaining_work += reconfig_cost;
            r.scale_count += 1;
            r.last_scaled_at = self.time;
            r.rate = speed * speedup.speedup(r.alloc.total_units());
            self.cluster.release_placement(&demand, &released);
            self.log_node_frees(&released);
        }
        self.metrics.record_scale_event();
        self.schedule_completion(job_id);
        ActionOutcome::Scaled
    }

    fn record_utilization_sample(&mut self) {
        let mut per_class = PerClassUtilization::new();
        for id in self.cluster.class_ids() {
            per_class.push(self.cluster.class_utilization(id));
        }
        let sample = UtilizationSample {
            time: self.time,
            per_class,
            overall: self.cluster.overall_utilization(),
            pending: self.pending.len(),
            running: self.running.len(),
        };
        self.metrics.record_sample(sample);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterSpec, NodeClassSpec};
    use crate::job::{Job, JobClass, SpeedupModel, TimeUtility};
    use crate::node::SpeedProfile;
    use crate::resources::ResourceVector;

    /// A scheduler that starts every pending job on class 0 at minimum
    /// parallelism as soon as it fits.
    struct EagerMin;
    impl Scheduler for EagerMin {
        fn name(&self) -> &str {
            "eager-min"
        }
        fn decide(&mut self, view: &ClusterView) -> Vec<Action> {
            view.pending
                .iter()
                .filter(|j| view.can_start(j, NodeClassId(0), j.min_parallelism))
                .map(|j| Action::Start {
                    job: j.id,
                    class: NodeClassId(0),
                    parallelism: j.min_parallelism,
                })
                .collect()
        }
    }

    /// A scheduler that never starts anything.
    struct Lazy;
    impl Scheduler for Lazy {
        fn name(&self) -> &str {
            "lazy"
        }
        fn decide(&mut self, _view: &ClusterView) -> Vec<Action> {
            vec![Action::Wait]
        }
    }

    fn tiny_spec() -> ClusterSpec {
        ClusterSpec::new(vec![NodeClassSpec::new(
            "generic",
            2,
            ResourceVector::of(8.0, 32.0, 0.0, 10.0),
            SpeedProfile::uniform(1.0),
        )])
    }

    fn simple_job(id: u64, arrival: f64, work: f64, deadline: f64) -> Job {
        Job::builder(JobId(id), JobClass::Batch)
            .arrival(arrival)
            .total_work(work)
            .demand_per_unit(ResourceVector::of(2.0, 4.0, 0.0, 1.0))
            .parallelism_range(1, 4)
            .speedup(SpeedupModel::Linear)
            .deadline(deadline)
            .utility(TimeUtility::hard(1.0))
            .build()
    }

    #[test]
    fn single_job_completes_on_time() {
        let sim = Simulator::new(tiny_spec(), SimConfig::default());
        let jobs = vec![simple_job(0, 0.0, 10.0, 100.0)];
        let result = sim.run(jobs, &mut EagerMin);
        assert_eq!(result.summary.completed_jobs, 1);
        assert_eq!(result.summary.missed_jobs, 0);
        let rec = &result.completed[0];
        assert!((rec.finish - 10.0).abs() < 1e-6, "finish = {}", rec.finish);
        assert!((rec.wait - 0.0).abs() < 1e-9);
        assert_eq!(result.summary.total_utility, 1.0);
    }

    #[test]
    fn deadline_miss_is_recorded() {
        let sim = Simulator::new(tiny_spec(), SimConfig::default());
        // Needs 50s at p=1 but deadline is 20s away.
        let jobs = vec![simple_job(0, 0.0, 50.0, 20.0)];
        let result = sim.run(jobs, &mut EagerMin);
        assert_eq!(result.summary.completed_jobs, 1);
        assert_eq!(result.summary.missed_jobs, 1);
        assert_eq!(result.summary.total_utility, 0.0);
        assert!(result.summary.miss_rate > 0.99);
    }

    #[test]
    fn jobs_queue_when_cluster_is_full() {
        // Each node fits 4 units of 2 cpu; with 2 nodes and p=1 jobs of 8 cpu
        // demand, only 2 can run at once.
        let spec = ClusterSpec::new(vec![NodeClassSpec::new(
            "small",
            2,
            ResourceVector::of(8.0, 32.0, 0.0, 10.0),
            SpeedProfile::uniform(1.0),
        )]);
        let big_demand = ResourceVector::of(8.0, 8.0, 0.0, 1.0);
        let mk = |id: u64| {
            Job::builder(JobId(id), JobClass::Batch)
                .arrival(0.0)
                .total_work(10.0)
                .demand_per_unit(big_demand)
                .parallelism_range(1, 1)
                .speedup(SpeedupModel::Linear)
                .deadline(1000.0)
                .build()
        };
        let sim = Simulator::new(spec, SimConfig::default());
        let result = sim.run(vec![mk(0), mk(1), mk(2), mk(3)], &mut EagerMin);
        assert_eq!(result.summary.completed_jobs, 4);
        // Two waves of two jobs: makespan about 20 seconds.
        assert!((result.summary.makespan - 20.0).abs() < 1.0);
        // The second wave waited ~10 seconds.
        let waits: Vec<f64> = result.completed.iter().map(|j| j.wait).collect();
        assert!(waits.iter().filter(|w| **w > 5.0).count() == 2);
    }

    #[test]
    fn lazy_scheduler_aborts_instead_of_hanging() {
        let mut cfg = SimConfig::default();
        cfg.decision_interval = Some(5.0);
        cfg.max_sim_time = 500.0;
        let sim = Simulator::new(tiny_spec(), cfg);
        let jobs = vec![simple_job(0, 0.0, 10.0, 100.0)];
        let result = sim.run(jobs, &mut Lazy);
        assert_eq!(result.summary.completed_jobs, 0);
        assert_eq!(result.summary.unfinished_jobs, 1);
        assert!(result.summary.miss_rate > 0.99);
    }

    #[test]
    fn scaling_accelerates_completion() {
        struct ScaleUp {
            scaled: bool,
        }
        impl Scheduler for ScaleUp {
            fn name(&self) -> &str {
                "scale-up"
            }
            fn decide(&mut self, view: &ClusterView) -> Vec<Action> {
                let mut actions = Vec::new();
                for j in &view.pending {
                    actions.push(Action::Start {
                        job: j.id,
                        class: NodeClassId(0),
                        parallelism: 1,
                    });
                }
                if !self.scaled {
                    if let Some(r) = view.running.first() {
                        self.scaled = true;
                        actions.push(Action::Scale {
                            job: r.id,
                            new_parallelism: 4,
                        });
                    }
                }
                actions
            }
        }
        let mut cfg = SimConfig::default();
        cfg.decision_interval = Some(2.0);
        cfg.reconfig_cost_frac = 0.0;
        cfg.scale_cooldown = 0.0;
        let sim = Simulator::new(tiny_spec(), cfg);
        let jobs = vec![simple_job(0, 0.0, 40.0, 1000.0)];
        let result = sim.run(jobs, &mut ScaleUp { scaled: false });
        assert_eq!(result.summary.completed_jobs, 1);
        let finish = result.completed[0].finish;
        // Without scaling it would take 40s; with a scale-up to 4 after ~2s it
        // finishes around 2 + 38/4 ≈ 11.5s.
        assert!(finish < 20.0, "finish = {finish}");
        assert_eq!(result.summary.scale_events, 1);
        assert!(result.completed[0].avg_parallelism > 1.5);
    }

    #[test]
    fn scaling_disabled_is_rejected() {
        let mut sim = Simulator::new(tiny_spec(), SimConfig::rigid());
        sim.start(vec![simple_job(0, 0.0, 40.0, 1000.0)]);
        assert!(sim.advance());
        let outcome = sim.apply(&Action::Start {
            job: JobId(0),
            class: NodeClassId(0),
            parallelism: 1,
        });
        assert_eq!(outcome, ActionOutcome::Started);
        let outcome = sim.apply(&Action::Scale {
            job: JobId(0),
            new_parallelism: 4,
        });
        assert_eq!(outcome, ActionOutcome::Invalid("scaling disabled"));
    }

    #[test]
    fn invalid_actions_are_counted_not_fatal() {
        let mut sim = Simulator::new(tiny_spec(), SimConfig::default());
        sim.start(vec![simple_job(0, 0.0, 10.0, 100.0)]);
        assert!(sim.advance());
        // Unknown job.
        assert!(sim
            .apply(&Action::Start {
                job: JobId(99),
                class: NodeClassId(0),
                parallelism: 1
            })
            .is_invalid());
        // Unknown class.
        assert!(sim
            .apply(&Action::Start {
                job: JobId(0),
                class: NodeClassId(7),
                parallelism: 1
            })
            .is_invalid());
        // Too much demand: request more units than the cluster holds.
        let fat = Job::builder(JobId(1), JobClass::Batch)
            .arrival(0.0)
            .total_work(1.0)
            .demand_per_unit(ResourceVector::of(100.0, 1.0, 0.0, 0.0))
            .deadline(10.0)
            .build();
        let _ = fat; // demand is checked through the real pending job below
        let outcome = sim.apply(&Action::Start {
            job: JobId(0),
            class: NodeClassId(0),
            parallelism: 1,
        });
        assert_eq!(outcome, ActionOutcome::Started);
        let result = Simulator::finalize(sim);
        assert!(result.summary.invalid_actions >= 2);
    }

    #[test]
    fn gpu_speedup_shortens_ml_jobs() {
        let spec = ClusterSpec::icpp_default();
        let job = Job::builder(JobId(0), JobClass::MlTraining)
            .arrival(0.0)
            .total_work(60.0)
            .demand_per_unit(ResourceVector::of(2.0, 8.0, 1.0, 1.0))
            .parallelism_range(1, 2)
            .speedup(SpeedupModel::Linear)
            .deadline(1000.0)
            .build();
        struct GpuFirst;
        impl Scheduler for GpuFirst {
            fn name(&self) -> &str {
                "gpu-first"
            }
            fn decide(&mut self, view: &ClusterView) -> Vec<Action> {
                view.pending
                    .iter()
                    .map(|j| Action::Start {
                        job: j.id,
                        class: NodeClassId(2),
                        parallelism: 1,
                    })
                    .collect()
            }
        }
        let result = Simulator::new(spec, SimConfig::default()).run(vec![job], &mut GpuFirst);
        // 60 work units at 6x speed = 10 seconds.
        assert!((result.completed[0].finish - 10.0).abs() < 1e-6);
    }

    #[test]
    fn utilization_trace_is_sampled() {
        let mut cfg = SimConfig::default();
        cfg.util_sample_interval = 1.0;
        let sim = Simulator::new(tiny_spec(), cfg);
        let jobs = vec![
            simple_job(0, 0.0, 10.0, 100.0),
            simple_job(1, 1.0, 10.0, 100.0),
        ];
        let result = sim.run(jobs, &mut EagerMin);
        assert!(result.trace.samples.len() >= 5);
        assert!(result.summary.mean_utilization > 0.0);
        // Samples are in time order.
        for w in result.trace.samples.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn out_of_order_events_are_clamped_and_counted() {
        let mut sim = Simulator::new(tiny_spec(), SimConfig::default());
        sim.start(vec![simple_job(0, 1.0, 10.0, 100.0)]);
        assert!(sim.advance()); // arrival at t = 1.0
        assert_eq!(sim.time(), 1.0);
        assert_eq!(sim.clamped_event_count(), 0);
        // Inject an event whose timestamp is (within float tolerance) behind
        // the clock: the engine must clamp it forward, never run time
        // backwards, and count the clamp.
        sim.events.push(1.0 - 5e-10, EventKind::DecisionEpoch);
        sim.events.push(2.0, EventKind::DecisionEpoch);
        assert!(sim.advance()); // the stale epoch fires, clamped to t = 1.0
        assert_eq!(
            sim.time(),
            1.0,
            "clamped event must not move time backwards"
        );
        assert_eq!(sim.clamped_event_count(), 1);
        assert!(sim.advance()); // the healthy epoch fires at t = 2.0
        assert_eq!(sim.time(), 2.0);
        assert_eq!(sim.clamped_event_count(), 1);
    }

    #[test]
    fn view_into_matches_fresh_view_throughout_a_run() {
        // Pin the clear-and-refill path to the rebuild-from-scratch
        // semantics: at every decision epoch of a mixed start/scale run the
        // refilled snapshot must equal a freshly built one, field for field.
        let mut cfg = SimConfig::default();
        cfg.decision_interval = Some(2.0);
        cfg.scale_cooldown = 0.0;
        let mut sim = Simulator::new(tiny_spec(), cfg);
        let jobs: Vec<Job> = (0..12)
            .map(|i| simple_job(i, i as f64 * 1.5, 8.0 + i as f64, 500.0))
            .collect();
        sim.start(jobs);
        let mut reused = sim.view();
        let mut epochs = 0;
        while sim.advance() {
            sim.view_into(&mut reused);
            let fresh = sim.view();
            assert_eq!(fresh.time, reused.time);
            assert_eq!(fresh.future_arrivals, reused.future_arrivals);
            assert_eq!(fresh.classes, reused.classes);
            assert_eq!(fresh.pending, reused.pending);
            assert_eq!(fresh.running, reused.running);
            assert_eq!(fresh.pending_by_deadline, reused.pending_by_deadline);
            assert_eq!(fresh.pending_work_total, reused.pending_work_total);
            epochs += 1;
            // Drive a simple policy so the running set stays busy.
            if let Some(job) = reused.pending.first() {
                let _ = sim.apply(&Action::Start {
                    job: job.id,
                    class: NodeClassId(0),
                    parallelism: job.min_parallelism,
                });
            } else if let Some(r) = reused.running.iter().find(|r| r.scale_ready) {
                let _ = sim.apply(&Action::Scale {
                    job: r.id,
                    new_parallelism: r.units + 1,
                });
            }
            if epochs > 500 {
                break;
            }
        }
        assert!(epochs >= 12, "expected at least one epoch per job");
    }

    #[test]
    fn running_view_order_is_start_time_then_id() {
        // Start jobs out of id order at identical timestamps and verify the
        // incrementally maintained order matches the documented sort key.
        let spec = ClusterSpec::new(vec![NodeClassSpec::new(
            "wide",
            8,
            ResourceVector::of(8.0, 32.0, 0.0, 10.0),
            SpeedProfile::uniform(1.0),
        )]);
        let mut sim = Simulator::new(spec, SimConfig::default());
        let jobs: Vec<Job> = [5u64, 1, 9, 3, 7]
            .iter()
            .map(|&id| simple_job(id, 0.0, 50.0, 1000.0))
            .collect();
        sim.start(jobs);
        // Drain all five arrivals (same timestamp).
        for _ in 0..5 {
            assert!(sim.advance());
        }
        // Start in a scrambled order; started_at is identical for all.
        for id in [9u64, 1, 7, 5, 3] {
            let outcome = sim.apply(&Action::Start {
                job: JobId(id),
                class: NodeClassId(0),
                parallelism: 1,
            });
            assert_eq!(outcome, ActionOutcome::Started);
        }
        let order: Vec<u64> = sim.view().running.iter().map(|r| r.id.0).collect();
        assert_eq!(order, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn run_reusing_matches_fresh_runs_across_replications() {
        // One simulator + one view serving several replications must produce
        // exactly the summaries of fresh per-replication simulators, and the
        // per-run records must be readable until the next reset.
        let workloads: Vec<Vec<Job>> = (0..4)
            .map(|rep| {
                (0..15)
                    .map(|i| {
                        simple_job(
                            i,
                            i as f64 * (0.5 + rep as f64 * 0.3),
                            5.0 + ((i + rep) % 7) as f64,
                            300.0,
                        )
                    })
                    .collect()
            })
            .collect();
        let mut reused = Simulator::new(tiny_spec(), SimConfig::default());
        let mut view = reused.view();
        for jobs in &workloads {
            let fresh =
                Simulator::new(tiny_spec(), SimConfig::default()).run(jobs.clone(), &mut EagerMin);
            let summary = reused.run_reusing(jobs.clone(), &mut EagerMin, &mut view);
            assert_eq!(summary, fresh.summary);
            assert_eq!(reused.completed_so_far(), fresh.completed.as_slice());
        }
    }

    #[test]
    fn run_source_matches_batch_run_over_the_same_jobs() {
        // Streaming the jobs one at a time must produce exactly the result
        // of loading them upfront (arrival times are chosen off the decision
        // grid so no event-timestamp ties exist to break differently).
        let jobs: Vec<Job> = (0..25)
            .map(|i| simple_job(i, i as f64 * 1.37, 4.0 + (i as f64) * 0.93, 400.0))
            .collect();
        let mut cfg = SimConfig::default();
        cfg.decision_interval = Some(2.0);
        let batch = Simulator::new(tiny_spec(), cfg.clone()).run(jobs.clone(), &mut EagerMin);

        let mut sim = Simulator::new(tiny_spec(), cfg);
        let mut view = sim.view();
        let summary = sim.run_source(jobs.iter().cloned(), &mut EagerMin, &mut view);
        assert_eq!(summary, batch.summary);
        assert_eq!(sim.completed_so_far(), batch.completed.as_slice());
        assert_eq!(sim.total_jobs(), 25);

        // And the same simulator streams the next replication correctly.
        let summary2 = sim.run_source(jobs.iter().cloned(), &mut EagerMin, &mut view);
        assert_eq!(summary2, batch.summary);
    }

    #[test]
    fn streaming_views_report_true_future_arrival_counts() {
        // A scheduler that only observes: the future_arrivals sequence seen
        // under run_source must match the batch run's, even though the
        // stream buffers a single arrival at a time (the DRL state encoder
        // feeds on this field).
        struct Recorder {
            seen: Vec<usize>,
        }
        impl Scheduler for Recorder {
            fn name(&self) -> &str {
                "recorder"
            }
            fn decide(&mut self, view: &ClusterView) -> Vec<Action> {
                self.seen.push(view.future_arrivals);
                Vec::new()
            }
        }
        let jobs: Vec<Job> = (0..20)
            .map(|i| simple_job(i, i as f64 * 1.7, 3.0, 1e5))
            .collect();

        let mut batch_recorder = Recorder { seen: Vec::new() };
        let _ = Simulator::new(tiny_spec(), SimConfig::default())
            .run(jobs.clone(), &mut batch_recorder);
        assert!(
            batch_recorder.seen.contains(&19),
            "early views see the tail"
        );

        let mut stream_recorder = Recorder { seen: Vec::new() };
        let mut sim = Simulator::new(tiny_spec(), SimConfig::default());
        let mut view = sim.view();
        let _ = sim.run_source(jobs.iter().cloned(), &mut stream_recorder, &mut view);
        assert_eq!(stream_recorder.seen, batch_recorder.seen);
    }

    #[test]
    fn run_source_counts_unarrived_jobs_when_truncated_by_max_sim_time() {
        // A horizon shorter than the arrival span: the batch path counts the
        // never-arrived tail as unfinished, and the streamed path must agree
        // even though it never pulled those jobs.
        let jobs: Vec<Job> = (0..40)
            .map(|i| simple_job(i, i as f64 * 5.3, 2.0, 1e6))
            .collect();
        let mut cfg = SimConfig::default();
        cfg.max_sim_time = 60.0;
        let batch = Simulator::new(tiny_spec(), cfg.clone()).run(jobs.clone(), &mut EagerMin);
        assert!(batch.summary.unfinished_jobs > 0, "the run must truncate");

        let mut sim = Simulator::new(tiny_spec(), cfg);
        let mut view = sim.view();
        let summary = sim.run_source(jobs.iter().cloned(), &mut EagerMin, &mut view);
        assert_eq!(summary.total_jobs, 40);
        assert_eq!(summary, batch.summary);
    }

    #[test]
    fn run_source_handles_an_empty_stream() {
        let mut sim = Simulator::new(tiny_spec(), SimConfig::default());
        let mut view = sim.view();
        let summary = sim.run_source(std::iter::empty(), &mut EagerMin, &mut view);
        assert_eq!(summary.total_jobs, 0);
        assert_eq!(summary.completed_jobs, 0);
    }

    #[test]
    fn run_source_pulls_lazily_from_an_unbounded_stream() {
        // An endless generator driven through `take`: the engine must only
        // pull what it simulates, never trying to materialise the stream.
        let endless = (0u64..).map(|i| simple_job(i, i as f64 * 3.1, 2.0, 1e7));
        let mut cfg = SimConfig::default();
        cfg.max_sim_time = 1e6;
        let mut sim = Simulator::new(tiny_spec(), cfg);
        let mut view = sim.view();
        let summary = sim.run_source(endless.take(40), &mut EagerMin, &mut view);
        assert_eq!(summary.total_jobs, 40);
        assert_eq!(summary.completed_jobs, 40);
    }

    #[test]
    fn change_log_stays_bounded_over_long_streaming_runs() {
        // The drivers compact the view change log each epoch: a long
        // streamed run must keep the log at O(one epoch), not O(jobs) —
        // the streaming entry point's O(running + pending) memory contract.
        let endless = (0u64..).map(|i| simple_job(i, i as f64 * 2.3, 2.0, 1e8));
        let mut cfg = SimConfig::default();
        cfg.max_sim_time = 1e7;
        let mut sim = Simulator::new(tiny_spec(), cfg);
        let mut view = sim.view();
        let summary = sim.run_source(endless.take(2000), &mut EagerMin, &mut view);
        assert_eq!(summary.completed_jobs, 2000);
        assert!(
            sim.log.len() <= 64,
            "change log not compacted: {} entries retained",
            sim.log.len()
        );
        assert!(
            sim.log_base > 2000,
            "compaction never advanced the base ({})",
            sim.log_base
        );
        // And the compacted engine still refills views correctly.
        sim.reset();
        sim.start(vec![simple_job(0, 0.0, 5.0, 100.0)]);
        assert!(sim.advance());
        sim.view_into(&mut view);
        let fresh = sim.view();
        assert_eq!(fresh.pending, view.pending);
        assert_eq!(fresh.running, view.running);
    }

    #[test]
    fn reset_restores_pristine_state() {
        let mut sim = Simulator::new(tiny_spec(), SimConfig::default());
        let mut view = sim.view();
        let jobs = vec![simple_job(0, 0.0, 10.0, 100.0)];
        let _ = sim.run_reusing(jobs, &mut EagerMin, &mut view);
        sim.reset();
        assert_eq!(sim.time(), 0.0);
        assert_eq!(sim.pending_count(), 0);
        assert_eq!(sim.running_count(), 0);
        assert_eq!(sim.total_jobs(), 0);
        assert_eq!(sim.clamped_event_count(), 0);
        assert!(sim.completed_so_far().is_empty());
        assert_eq!(
            sim.cluster().free_capacity(),
            sim.spec().total_capacity(),
            "reset must free every allocation"
        );
    }

    #[test]
    fn determinism_same_seedless_run_is_identical() {
        let jobs: Vec<Job> = (0..20)
            .map(|i| simple_job(i, i as f64 * 0.5, 5.0 + i as f64, 200.0))
            .collect();
        let r1 = Simulator::new(tiny_spec(), SimConfig::default()).run(jobs.clone(), &mut EagerMin);
        let r2 = Simulator::new(tiny_spec(), SimConfig::default()).run(jobs, &mut EagerMin);
        assert_eq!(r1.summary, r2.summary);
        assert_eq!(r1.completed.len(), r2.completed.len());
        for (a, b) in r1.completed.iter().zip(r2.completed.iter()) {
            assert_eq!(a, b);
        }
    }
}
