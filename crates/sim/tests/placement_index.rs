//! Paired-simulator differential tests of the bucketed placement index:
//! two engines run the **same** workload and action sequence, one serving
//! `find_placement` from the per-class `FitIndex` (`placement_index = true`,
//! the default) and one from the reference slice walk. Because placements
//! mutate real cluster state, any ordering divergence between the two paths
//! would compound — so the views (including every per-node free vector and
//! the view-side fit index), action outcomes, summaries and completion
//! records must all stay **byte-identical** at every step.
//!
//! Also hosts the direct `Cluster`-level differential proptest and the
//! 64k-scale saturating `units_available` regression test (the `u32` sum
//! used to wrap in release builds).

use proptest::prelude::*;
use tcrm_sim::node::SpeedProfile;
use tcrm_sim::prelude::*;

/// Same paired cluster as `tests/incremental_view.rs`: two classes with
/// different shapes so placement is non-trivial.
fn paired_spec() -> ClusterSpec {
    ClusterSpec::new(vec![
        NodeClassSpec::new(
            "generic",
            3,
            ResourceVector::of(8.0, 32.0, 0.0, 10.0),
            SpeedProfile::uniform(1.0),
        ),
        NodeClassSpec::new(
            "fast-small",
            2,
            ResourceVector::of(8.0, 8.0, 0.0, 10.0),
            SpeedProfile::uniform(2.0),
        ),
    ])
}

#[derive(Debug, Clone)]
struct JobParams {
    gap: f64,
    work: f64,
    slack: f64,
    cpu: f64,
    mem: f64,
    min_par: u32,
    extra_par: u32,
    malleable: bool,
}

fn arb_job_params() -> impl Strategy<Value = JobParams> {
    (
        0.0f64..4.0,
        1.0f64..40.0,
        5.0f64..200.0,
        1.0f64..4.0,
        1.0f64..8.0,
        1u32..3,
        0u32..4,
        any::<bool>(),
    )
        .prop_map(
            |(gap, work, slack, cpu, mem, min_par, extra_par, malleable)| JobParams {
                gap,
                work,
                slack,
                cpu,
                mem,
                min_par,
                extra_par,
                malleable,
            },
        )
}

fn build_jobs(params: &[JobParams]) -> Vec<Job> {
    let mut arrival = 0.0;
    params
        .iter()
        .enumerate()
        .map(|(i, p)| {
            arrival += p.gap;
            Job::builder(JobId(i as u64), JobClass::Batch)
                .arrival(arrival)
                .total_work(p.work)
                .demand_per_unit(ResourceVector::of(p.cpu, p.mem, 0.0, 0.5))
                .parallelism_range(p.min_par, p.min_par + p.extra_par)
                .speedup(SpeedupModel::Linear)
                .deadline(arrival + p.slack)
                .malleable(p.malleable)
                .utility(TimeUtility::hard(1.0))
                .build()
        })
        .collect()
}

/// Derive one (possibly invalid) action from a script triple and the
/// current reference view — the same mix of starts, scales, unknown ids and
/// waits the incremental-view harness uses, so placements and releases churn
/// the index hard.
fn script_action(view: &ClusterView, kind: u8, x: u8, y: u8) -> Action {
    match kind % 5 {
        0 | 1 => {
            if view.pending.is_empty() {
                Action::Wait
            } else {
                let job = &view.pending[x as usize % view.pending.len()];
                Action::Start {
                    job: job.id,
                    class: NodeClassId(y as usize % (view.num_classes() + 1)),
                    parallelism: 1 + y as u32 % 6,
                }
            }
        }
        2 => {
            if view.running.is_empty() {
                Action::Wait
            } else {
                let job = &view.running[x as usize % view.running.len()];
                Action::Scale {
                    job: job.id,
                    new_parallelism: 1 + y as u32 % 6,
                }
            }
        }
        3 => Action::Start {
            job: JobId(1_000_000 + x as u64),
            class: NodeClassId(0),
            parallelism: 1,
        },
        _ => Action::Wait,
    }
}

fn assert_views_equal(indexed: &ClusterView, reference: &ClusterView) {
    assert_eq!(indexed.time, reference.time, "time diverged");
    assert_eq!(
        indexed.future_arrivals, reference.future_arrivals,
        "future_arrivals diverged"
    );
    // `NodeClassView`'s derived PartialEq covers node_free row-for-row plus
    // the view-side fit index, so identical classes ⇒ identical placements
    // were applied on both simulators.
    assert_eq!(indexed.classes, reference.classes, "class views diverged");
    assert_eq!(indexed.pending, reference.pending, "pending rows diverged");
    assert_eq!(indexed.running, reference.running, "running rows diverged");
    assert_eq!(
        indexed.pending_by_deadline, reference.pending_by_deadline,
        "deadline index diverged"
    );
    assert_eq!(
        indexed.pending_work_total, reference.pending_work_total,
        "pending-work aggregate diverged"
    );
}

/// Drive a fit-indexed simulator and a reference-walk simulator through the
/// same script, asserting byte-identical state at every step.
fn run_paired(jobs: Vec<Job>, script: &[(u8, u8, u8)], decision_interval: f64) -> usize {
    let mut cfg = SimConfig::default();
    cfg.decision_interval = Some(decision_interval);
    cfg.scale_cooldown = 3.0;
    cfg.util_sample_interval = 2.5;
    cfg.max_sim_time = 5e4;
    let mut cfg_ref = cfg.clone();
    cfg_ref.placement_index = false;
    assert!(cfg.placement_index, "indexed path must be the default");

    let mut sim_idx = Simulator::new(paired_spec(), cfg);
    let mut sim_ref = Simulator::new(paired_spec(), cfg_ref);
    sim_idx.start(jobs.clone());
    sim_ref.start(jobs);
    let mut view_idx = sim_idx.view();
    let mut view_ref = sim_ref.view();
    assert_views_equal(&view_idx, &view_ref);

    let mut cursor = 0usize;
    let mut epochs = 0usize;
    let mut post_script_epochs = 0usize;
    loop {
        let alive_idx = sim_idx.advance();
        let alive_ref = sim_ref.advance();
        assert_eq!(alive_idx, alive_ref, "engines fell out of lockstep");
        if !alive_idx {
            break;
        }
        epochs += 1;
        if cursor >= script.len() {
            post_script_epochs += 1;
            if post_script_epochs > 300 {
                sim_idx.view_into(&mut view_idx);
                sim_ref.view_into(&mut view_ref);
                assert_views_equal(&view_idx, &view_ref);
                break;
            }
        }
        sim_idx.view_into(&mut view_idx);
        sim_ref.view_into(&mut view_ref);
        assert_views_equal(&view_idx, &view_ref);
        for _ in 0..2 {
            let Some(&(kind, x, y)) = script.get(cursor) else {
                break;
            };
            cursor += 1;
            let action = script_action(&view_ref, kind, x, y);
            let out_idx = sim_idx.apply(&action);
            let out_ref = sim_ref.apply(&action);
            assert_eq!(out_idx, out_ref, "action outcomes diverged");
            sim_idx.view_into(&mut view_idx);
            sim_ref.view_into(&mut view_ref);
            assert_views_equal(&view_idx, &view_ref);
        }
        // The maintained fit indices stay consistent with the node state on
        // both engines (this also cross-checks the aggregates).
        sim_idx.cluster().check_invariants().expect("indexed sim");
        sim_ref.cluster().check_invariants().expect("reference sim");
        assert!(epochs < 20_000, "paired run did not terminate");
    }

    let res_idx = sim_idx.finalize();
    let res_ref = sim_ref.finalize();
    assert_eq!(res_idx.summary, res_ref.summary, "summaries diverged");
    assert_eq!(
        res_idx.completed, res_ref.completed,
        "completion records diverged"
    );
    epochs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random workloads × random valid/invalid action scripts: the indexed
    /// placement path is byte-identical to the reference walk at every
    /// epoch, after every action, and in the final run records.
    #[test]
    fn indexed_placement_matches_reference_walk(
        params in prop::collection::vec(arb_job_params(), 1..18),
        script in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..120),
        interval in 1.0f64..6.0,
    ) {
        let jobs = build_jobs(&params);
        run_paired(jobs, &script, interval);
    }

    /// Direct cluster-level differential: random demand/unit sequences with
    /// interleaved releases; `find_placement` must return the identical
    /// placement vector on both paths after every mutation, and the counting
    /// queries must match a fresh per-node saturating sum.
    #[test]
    fn cluster_paths_agree_under_random_churn(
        ops in prop::collection::vec(
            (0usize..4, 0.5f64..8.0, 0.5f64..40.0, 0.0f64..2.0, 1u32..7, any::<bool>()),
            1..60,
        ),
    ) {
        let mut c = Cluster::new(ClusterSpec::icpp_default());
        let mut live: Vec<(ResourceVector, Vec<Placement>)> = Vec::new();
        for (class, cpu, mem, gpu, units, release) in ops {
            let class = NodeClassId(class % c.num_classes());
            let per_unit = ResourceVector::of(cpu, mem, gpu.floor(), 0.25);
            c.set_indexed_placement(true);
            let indexed = c.find_placement(class, &per_unit, units);
            c.set_indexed_placement(false);
            let walk = c.find_placement(class, &per_unit, units);
            prop_assert_eq!(&indexed, &walk, "placement paths diverged");
            let fresh_sum = c
                .nodes_of_class(class)
                .map(|n| n.units_that_fit(&per_unit))
                .filter(|&u| u != u32::MAX)
                .fold(0u32, |a, u| a.saturating_add(u));
            prop_assert_eq!(c.units_available(class, &per_unit), fresh_sum);
            prop_assert_eq!(
                c.max_placeable_units(class, &per_unit, units),
                fresh_sum.min(units)
            );
            if let Some(p) = indexed {
                c.apply_placement(&per_unit, &p);
                live.push((per_unit, p));
            }
            if release && !live.is_empty() {
                let (d, p) = live.remove(live.len() / 2);
                c.release_placement(&d, &p);
            }
            c.check_invariants().expect("invariants hold under churn");
        }
    }
}

#[test]
fn paired_run_with_dense_script_churns_the_index() {
    // Deterministic, action-dense companion to the proptest.
    let params: Vec<JobParams> = (0..14)
        .map(|i| JobParams {
            gap: 0.7 + (i % 3) as f64,
            work: 8.0 + (i * 3 % 25) as f64,
            slack: 20.0 + (i * 11 % 90) as f64,
            cpu: 1.0 + (i % 3) as f64,
            mem: 2.0 + (i % 5) as f64,
            min_par: 1 + (i % 2) as u32,
            extra_par: (i % 4) as u32,
            malleable: i % 3 != 0,
        })
        .collect();
    let jobs = build_jobs(&params);
    let script: Vec<(u8, u8, u8)> = (0..200u32)
        .map(|i| ((i % 5) as u8, (i * 7 % 251) as u8, (i * 13 % 241) as u8))
        .collect();
    let epochs = run_paired(jobs, &script, 2.0);
    assert!(epochs >= 14, "expected at least one epoch per job");
}

#[test]
fn units_available_saturates_at_scale_instead_of_wrapping() {
    // Satellite regression at the new scale tier: a 16k-node class whose
    // per-node fit is ~2^20 sums to ~2^34 — far past u32::MAX. The old
    // unchecked `.sum::<u32>()` wrapped in release builds; the count must
    // saturate (and the capped variant must exit early with the exact cap).
    let spec = ClusterSpec::new(vec![NodeClassSpec::new(
        "huge",
        16_384,
        ResourceVector::of(1_048_576.0, 0.0, 0.0, 0.0),
        SpeedProfile::uniform(1.0),
    )]);
    let c = Cluster::new(spec);
    let sliver = ResourceVector::of(1.0, 0.0, 0.0, 0.0);
    assert_eq!(c.units_available(NodeClassId(0), &sliver), u32::MAX);
    assert_eq!(
        c.units_available_capped(NodeClassId(0), &sliver, 1000),
        1000
    );
    assert_eq!(c.max_placeable_units(NodeClassId(0), &sliver, 64), 64);

    // The view-side count saturates identically.
    let sim = Simulator::new(c.spec().clone(), SimConfig::default());
    let view = sim.view();
    assert_eq!(view.classes[0].units_available(&sliver), u32::MAX);
    assert_eq!(view.classes[0].units_available_capped(&sliver, 1000), 1000);
}

#[test]
fn walk_and_indexed_configs_round_trip_through_serde() {
    // The toggle (and the legacy default) survive config serialisation.
    let cfg = SimConfig::default();
    let json = serde_json::to_string(&cfg).unwrap();
    let back: SimConfig = serde_json::from_str(&json).unwrap();
    assert!(back.placement_index);
    // A config JSON predating the field deserialises to the default (on).
    let legacy_json = json
        .replace(",\"placement_index\":true", "")
        .replace("\"placement_index\":true,", "");
    assert_ne!(legacy_json, json, "field must have been present");
    let legacy: SimConfig = serde_json::from_str(&legacy_json).unwrap();
    assert!(legacy.placement_index);
}
