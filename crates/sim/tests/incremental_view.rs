//! Paired-simulator differential tests of the incremental observation
//! layer: two engines run the **same** workload and action sequence, one
//! refilling its retained `ClusterView` through the incremental delta
//! protocol (`incremental_view = true`, the default) and one through the
//! full-rebuild reference path. At every decision epoch — and after every
//! single applied action — the two snapshots must be **byte-identical**
//! field for field, and the finished runs must produce identical summaries
//! and completion records.
//!
//! The action scripts deliberately mix valid and invalid actions (unknown
//! jobs, unknown classes, out-of-range parallelism, re-scaling rigid jobs,
//! waiting) so the protocol is exercised across rejected applications too.

use proptest::prelude::*;
use tcrm_sim::node::SpeedProfile;
use tcrm_sim::prelude::*;

/// A small heterogeneous cluster: two classes with different speeds and
/// capacities so placement and speed lookups are non-trivial.
fn paired_spec() -> ClusterSpec {
    ClusterSpec::new(vec![
        NodeClassSpec::new(
            "generic",
            3,
            ResourceVector::of(8.0, 32.0, 0.0, 10.0),
            SpeedProfile::uniform(1.0),
        ),
        NodeClassSpec::new(
            "fast-small",
            2,
            ResourceVector::of(8.0, 8.0, 0.0, 10.0),
            SpeedProfile::uniform(2.0),
        ),
    ])
}

/// Raw per-job parameters produced by the proptest strategies.
#[derive(Debug, Clone)]
struct JobParams {
    gap: f64,
    work: f64,
    slack: f64,
    cpu: f64,
    mem: f64,
    min_par: u32,
    extra_par: u32,
    malleable: bool,
}

fn arb_job_params() -> impl Strategy<Value = JobParams> {
    (
        0.0f64..4.0,
        1.0f64..40.0,
        5.0f64..200.0,
        1.0f64..4.0,
        1.0f64..8.0,
        1u32..3,
        0u32..4,
        any::<bool>(),
    )
        .prop_map(
            |(gap, work, slack, cpu, mem, min_par, extra_par, malleable)| JobParams {
                gap,
                work,
                slack,
                cpu,
                mem,
                min_par,
                extra_par,
                malleable,
            },
        )
}

fn build_jobs(params: &[JobParams]) -> Vec<Job> {
    let mut arrival = 0.0;
    params
        .iter()
        .enumerate()
        .map(|(i, p)| {
            arrival += p.gap;
            Job::builder(JobId(i as u64), JobClass::Batch)
                .arrival(arrival)
                .total_work(p.work)
                .demand_per_unit(ResourceVector::of(p.cpu, p.mem, 0.0, 0.5))
                .parallelism_range(p.min_par, p.min_par + p.extra_par)
                .speedup(SpeedupModel::Linear)
                .deadline(arrival + p.slack)
                .malleable(p.malleable)
                .utility(TimeUtility::hard(1.0))
                .build()
        })
        .collect()
}

/// Derive one (possibly invalid) action from a script triple and the
/// current reference view.
fn script_action(view: &ClusterView, kind: u8, x: u8, y: u8) -> Action {
    match kind % 5 {
        0 | 1 => {
            // Start a pending job — class index deliberately runs one past
            // the real classes so "unknown node class" is exercised, and the
            // parallelism may exceed the job's range (the engine clamps).
            if view.pending.is_empty() {
                Action::Wait
            } else {
                let job = &view.pending[x as usize % view.pending.len()];
                Action::Start {
                    job: job.id,
                    class: NodeClassId(y as usize % (view.num_classes() + 1)),
                    parallelism: 1 + y as u32 % 6,
                }
            }
        }
        2 => {
            // Re-scale a running job (often rejected: rigid, cooldown, no
            // change, insufficient capacity).
            if view.running.is_empty() {
                Action::Wait
            } else {
                let job = &view.running[x as usize % view.running.len()];
                Action::Scale {
                    job: job.id,
                    new_parallelism: 1 + y as u32 % 6,
                }
            }
        }
        3 => Action::Start {
            // Unknown job id.
            job: JobId(1_000_000 + x as u64),
            class: NodeClassId(0),
            parallelism: 1,
        },
        _ => Action::Wait,
    }
}

/// Field-for-field equality of two snapshots (`ClusterView` itself has no
/// `PartialEq`; comparing fields keeps failures readable).
fn assert_views_equal(inc: &ClusterView, reference: &ClusterView) {
    assert_eq!(inc.time, reference.time, "time diverged");
    assert_eq!(
        inc.future_arrivals, reference.future_arrivals,
        "future_arrivals diverged"
    );
    assert_eq!(inc.classes, reference.classes, "class views diverged");
    assert_eq!(inc.pending, reference.pending, "pending rows diverged");
    assert_eq!(inc.running, reference.running, "running rows diverged");
    assert_eq!(
        inc.pending_by_deadline, reference.pending_by_deadline,
        "deadline index diverged"
    );
    assert_eq!(
        inc.pending_work_total, reference.pending_work_total,
        "pending-work aggregate diverged"
    );
}

/// Drive the paired simulators through the script and assert equality at
/// every step. Returns the number of epochs observed.
fn run_paired(jobs: Vec<Job>, script: &[(u8, u8, u8)], decision_interval: f64) -> usize {
    let mut cfg = SimConfig::default();
    cfg.decision_interval = Some(decision_interval);
    cfg.scale_cooldown = 3.0;
    cfg.util_sample_interval = 2.5;
    cfg.max_sim_time = 5e4;
    let mut cfg_ref = cfg.clone();
    cfg_ref.incremental_view = false;
    assert!(cfg.incremental_view, "incremental path must be the default");

    let mut sim_inc = Simulator::new(paired_spec(), cfg);
    let mut sim_ref = Simulator::new(paired_spec(), cfg_ref);
    sim_inc.start(jobs.clone());
    sim_ref.start(jobs);
    let mut view_inc = sim_inc.view();
    let mut view_ref = sim_ref.view();
    assert_views_equal(&view_inc, &view_ref);

    let mut cursor = 0usize;
    let mut epochs = 0usize;
    let mut post_script_epochs = 0usize;
    loop {
        let alive_inc = sim_inc.advance();
        let alive_ref = sim_ref.advance();
        assert_eq!(alive_inc, alive_ref, "engines fell out of lockstep");
        if !alive_inc {
            break;
        }
        epochs += 1;
        if cursor >= script.len() {
            // The script issues no further starts: let completions drain for
            // a while, then stop stepping (unstarted pending jobs would spin
            // on periodic epochs forever; finalize charges them below).
            post_script_epochs += 1;
            if post_script_epochs > 300 {
                sim_inc.view_into(&mut view_inc);
                sim_ref.view_into(&mut view_ref);
                assert_views_equal(&view_inc, &view_ref);
                break;
            }
        }
        sim_inc.view_into(&mut view_inc);
        sim_ref.view_into(&mut view_ref);
        assert_views_equal(&view_inc, &view_ref);
        for _ in 0..2 {
            let Some(&(kind, x, y)) = script.get(cursor) else {
                break;
            };
            cursor += 1;
            let action = script_action(&view_ref, kind, x, y);
            let out_inc = sim_inc.apply(&action);
            let out_ref = sim_ref.apply(&action);
            assert_eq!(out_inc, out_ref, "action outcomes diverged");
            sim_inc.view_into(&mut view_inc);
            sim_ref.view_into(&mut view_ref);
            assert_views_equal(&view_inc, &view_ref);
        }
        assert!(epochs < 20_000, "paired run did not terminate");
    }

    let res_inc = sim_inc.finalize();
    let res_ref = sim_ref.finalize();
    assert_eq!(res_inc.summary, res_ref.summary, "summaries diverged");
    assert_eq!(
        res_inc.completed, res_ref.completed,
        "completion records diverged"
    );
    epochs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random workloads × random valid/invalid action scripts: the
    /// incremental view is byte-identical to the rebuilt reference at every
    /// epoch, after every action, and in the final run records.
    #[test]
    fn incremental_view_matches_rebuild_reference(
        params in prop::collection::vec(arb_job_params(), 1..18),
        script in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..120),
        interval in 1.0f64..6.0,
    ) {
        let jobs = build_jobs(&params);
        run_paired(jobs, &script, interval);
    }
}

#[test]
fn paired_run_with_dense_script_exercises_scales_and_rejections() {
    // A deterministic, action-dense companion to the proptest (fast enough
    // to step through in a debugger when something diverges).
    let params: Vec<JobParams> = (0..14)
        .map(|i| JobParams {
            gap: 0.7 + (i % 3) as f64,
            work: 8.0 + (i * 3 % 25) as f64,
            slack: 20.0 + (i * 11 % 90) as f64,
            cpu: 1.0 + (i % 3) as f64,
            mem: 2.0 + (i % 5) as f64,
            min_par: 1 + (i % 2) as u32,
            extra_par: (i % 4) as u32,
            malleable: i % 3 != 0,
        })
        .collect();
    let jobs = build_jobs(&params);
    let script: Vec<(u8, u8, u8)> = (0..200u32)
        .map(|i| ((i % 5) as u8, (i * 7 % 251) as u8, (i * 13 % 241) as u8))
        .collect();
    let epochs = run_paired(jobs, &script, 2.0);
    assert!(epochs >= 14, "expected at least one epoch per job");
}

#[test]
fn view_taken_mid_run_resyncs_after_reset() {
    // A view refilled across a reset must rebuild against the new run, not
    // replay the cleared change log.
    let params: Vec<JobParams> = (0..6)
        .map(|i| JobParams {
            gap: 1.0,
            work: 10.0 + i as f64,
            slack: 100.0,
            cpu: 2.0,
            mem: 4.0,
            min_par: 1,
            extra_par: 2,
            malleable: true,
        })
        .collect();
    let jobs = build_jobs(&params);
    let mut sim = Simulator::new(paired_spec(), SimConfig::default());
    sim.start(jobs.clone());
    let mut view = sim.view();
    for _ in 0..4 {
        assert!(sim.advance());
        sim.view_into(&mut view);
    }
    sim.reset();
    sim.start(jobs);
    assert!(sim.advance());
    sim.view_into(&mut view);
    let fresh = sim.view();
    assert_views_equal(&view, &fresh);
}
