//! Property-based tests of the simulator's core data structures: resource
//! algebra, placement/release round-trips, event ordering, speedup models and
//! time-utility functions.

use proptest::prelude::*;
use tcrm_sim::allocation::{Allocation, Placement};
use tcrm_sim::prelude::*;
use tcrm_sim::{EventKind, EventQueue};

fn arb_resources() -> impl Strategy<Value = ResourceVector> {
    (0.0f64..64.0, 0.0f64..256.0, 0.0f64..8.0, 0.0f64..40.0)
        .prop_map(|(c, m, g, i)| ResourceVector::of(c, m, g, i))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ------------------------------------------------------------------
    // Resource vector algebra
    // ------------------------------------------------------------------

    #[test]
    fn addition_then_subtraction_is_identity(a in arb_resources(), b in arb_resources()) {
        let back = (a + b) - b;
        for i in 0..NUM_RESOURCES {
            prop_assert!((back.0[i] - a.0[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn fits_in_is_monotone_in_capacity(demand in arb_resources(), cap in arb_resources(), extra in arb_resources()) {
        if demand.fits_in(&cap) {
            prop_assert!(demand.fits_in(&(cap + extra)));
        }
    }

    #[test]
    fn dominant_share_bounds(demand in arb_resources(), cap in arb_resources()) {
        let share = demand.dominant_share(&cap);
        prop_assert!(share >= 0.0);
        if share <= 1.0 && share.is_finite() {
            // A demand whose dominant share is <= 1 fits in the capacity.
            prop_assert!(demand.fits_in(&cap));
        }
        if !demand.fits_in(&cap) {
            prop_assert!(share > 1.0 - 1e-12 || share.is_infinite());
        }
    }

    #[test]
    fn saturating_sub_never_negative(a in arb_resources(), b in arb_resources()) {
        let r = a.saturating_sub(&b);
        prop_assert!(r.is_non_negative());
        for i in 0..NUM_RESOURCES {
            prop_assert!(r.0[i] <= a.0[i] + 1e-12);
        }
    }

    #[test]
    fn normalization_is_bounded_when_demand_fits(demand in arb_resources(), cap in arb_resources()) {
        if demand.fits_in(&cap) {
            let n = demand.normalized_by(&cap);
            for i in 0..NUM_RESOURCES {
                prop_assert!(n.0[i] >= 0.0 && n.0[i] <= 1.0 + 1e-9);
            }
        }
    }

    // ------------------------------------------------------------------
    // Node and allocation bookkeeping
    // ------------------------------------------------------------------

    #[test]
    fn node_allocate_release_roundtrip(cap in arb_resources(), demand in arb_resources()) {
        let mut node = Node::new(NodeId(0), NodeClassId(0), cap);
        let fitted = node.allocate(&demand);
        prop_assert_eq!(fitted, demand.fits_in(&cap));
        if fitted {
            prop_assert!(node.used == demand);
            node.release(&demand);
        }
        prop_assert!(node.is_idle());
        prop_assert!(node.utilization() <= 1.0);
    }

    #[test]
    fn allocation_shrink_conserves_units(units in prop::collection::vec(1u32..6, 1..6), shrink_by in 0u32..30) {
        let placements: Vec<Placement> = units
            .iter()
            .enumerate()
            .map(|(i, &u)| Placement { node: NodeId(i), units: u })
            .collect();
        let total: u32 = units.iter().sum();
        let mut alloc = Allocation::new(
            JobId(0),
            NodeClassId(0),
            placements,
            ResourceVector::of(1.0, 1.0, 0.0, 0.0),
        );
        let released = alloc.shrink(shrink_by);
        let released_units: u32 = released.iter().map(|p| p.units).sum();
        prop_assert_eq!(released_units, shrink_by.min(total));
        prop_assert_eq!(alloc.total_units(), total - shrink_by.min(total));
        prop_assert!(alloc.placements.iter().all(|p| p.units > 0));
    }

    // ------------------------------------------------------------------
    // Event queue ordering
    // ------------------------------------------------------------------

    #[test]
    fn events_always_pop_in_nondecreasing_time(times in prop::collection::vec(0.0f64..1e6, 1..64)) {
        let mut q = EventQueue::new();
        for t in &times {
            q.push(*t, EventKind::DecisionEpoch);
        }
        let mut last = f64::NEG_INFINITY;
        while let Some(e) = q.pop() {
            prop_assert!(e.time >= last);
            last = e.time;
        }
    }

    // ------------------------------------------------------------------
    // Speedup models and utility functions
    // ------------------------------------------------------------------

    #[test]
    fn speedup_models_are_monotone_and_at_most_linear(
        serial in 0.0f64..1.0,
        alpha in 0.1f64..1.0,
        p in 1u32..64,
    ) {
        for model in [
            SpeedupModel::Linear,
            SpeedupModel::Amdahl { serial_fraction: serial },
            SpeedupModel::Power { alpha },
        ] {
            let s = model.speedup(p);
            let s_next = model.speedup(p + 1);
            prop_assert!(s >= 1.0 - 1e-12);
            prop_assert!(s_next + 1e-12 >= s, "{model:?} not monotone at {p}");
            prop_assert!(s <= p as f64 + 1e-9, "{model:?} super-linear at {p}");
        }
    }

    #[test]
    fn utility_is_bounded_and_monotone_in_finish_time(
        value in 0.1f64..10.0,
        grace in 0.0f64..2.0,
        rel_deadline in 1.0f64..500.0,
        finish_a in 0.0f64..2000.0,
        finish_b in 0.0f64..2000.0,
    ) {
        let u = TimeUtility::soft(value, grace);
        let arrival = 0.0;
        let deadline = rel_deadline;
        let ua = u.utility(arrival, deadline, finish_a);
        let ub = u.utility(arrival, deadline, finish_b);
        prop_assert!(ua >= 0.0 && ua <= value + 1e-9);
        if finish_a <= finish_b {
            prop_assert!(ua + 1e-9 >= ub, "utility must not increase with later finish");
        }
        // Finishing exactly at the deadline earns full value.
        prop_assert!((u.utility(arrival, deadline, deadline) - value).abs() < 1e-9);
    }

    // ------------------------------------------------------------------
    // Cluster placement invariants
    // ------------------------------------------------------------------

    #[test]
    fn placement_never_exceeds_capacity(
        cpu in 0.5f64..10.0,
        mem in 1.0f64..40.0,
        units in 1u32..20,
    ) {
        let mut cluster = Cluster::new(ClusterSpec::icpp_default());
        let per_unit = ResourceVector::of(cpu, mem, 0.0, 0.2);
        for class in cluster.class_ids().collect::<Vec<_>>() {
            if let Some(placement) = cluster.find_placement(class, &per_unit, units) {
                let placed: u32 = placement.iter().map(|p| p.units).sum();
                prop_assert_eq!(placed, units);
                cluster.apply_placement(&per_unit, &placement);
                prop_assert!(cluster.check_invariants().is_ok());
                cluster.release_placement(&per_unit, &placement);
            }
            prop_assert!(cluster.check_invariants().is_ok());
        }
        // After all releases the cluster is back to full capacity.
        let free = cluster.free_capacity();
        let total = cluster.spec().total_capacity();
        for i in 0..NUM_RESOURCES {
            prop_assert!((free.0[i] - total.0[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn find_placement_agrees_with_units_available(
        cpu in 0.5f64..12.0,
        mem in 1.0f64..80.0,
        units in 1u32..24,
    ) {
        let cluster = Cluster::new(ClusterSpec::icpp_default());
        let per_unit = ResourceVector::of(cpu, mem, 0.0, 0.1);
        for class in cluster.class_ids() {
            let available = cluster.units_available(class, &per_unit);
            let placement = cluster.find_placement(class, &per_unit, units);
            prop_assert_eq!(placement.is_some(), available >= units);
        }
    }
}
