//! Counting-allocator proof that the streaming entry point
//! (`Simulator::run_source`) stays allocation-free after warm-up: the first
//! run sizes every retained buffer (pending/running sets, event heap,
//! metrics, the reusable view), and every subsequent full run over the same
//! source — pulled job by job, never materialised — performs **zero** heap
//! allocations on the engine side.
//!
//! The replayed jobs are plain value types (no heap-owning fields), and the
//! driving scheduler returns the empty action list (no allocation), so every
//! counted allocation is attributable to the engine's streaming path. A
//! single `#[test]` in its own binary keeps concurrent test threads from
//! polluting the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn count_allocations(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

#[test]
fn run_source_is_allocation_free_after_warm_up() {
    use tcrm_sim::node::SpeedProfile;
    use tcrm_sim::{
        Action, ClusterSpec, ClusterView, Job, JobClass, JobId, NodeClassSpec, ResourceVector,
        Scheduler, SimConfig, Simulator, SpeedupModel, TimeUtility,
    };

    /// A scheduler that never acts: `decide` returns an **empty** vec (which
    /// does not allocate), so the measurement isolates the engine's
    /// streaming path — arrival pulls, event scheduling, pending growth,
    /// utilisation sampling and view refills.
    struct Inert;
    impl Scheduler for Inert {
        fn name(&self) -> &str {
            "inert"
        }
        fn decide(&mut self, _view: &ClusterView) -> Vec<Action> {
            Vec::new()
        }
    }

    let spec = ClusterSpec::new(vec![NodeClassSpec::new(
        "generic",
        4,
        ResourceVector::of(16.0, 64.0, 0.0, 10.0),
        SpeedProfile::uniform(1.0),
    )]);
    let mut cfg = SimConfig::default();
    cfg.decision_interval = Some(1.0);
    cfg.util_sample_interval = 0.5;
    cfg.max_sim_time = 1e5;

    // A fixed job list replayed through a cloning iterator: `Job` holds no
    // heap-owning fields, so cloning one allocates nothing.
    let jobs: Vec<Job> = (0..64)
        .map(|i| {
            Job::builder(JobId(i), JobClass::Batch)
                .arrival(i as f64 * 0.9)
                .total_work(25.0 + 3.0 * i as f64)
                .demand_per_unit(ResourceVector::of(2.0, 4.0, 0.0, 1.0))
                .parallelism_range(1, 4)
                .speedup(SpeedupModel::Linear)
                .deadline(1e6)
                .utility(TimeUtility::hard(1.0))
                .build()
        })
        .collect();

    let mut sim = Simulator::new(spec, cfg);
    let mut view = sim.view();

    // Warm-up run: sizes the event heap, pending queue, metrics buffers and
    // the view.
    let warm = sim.run_source(jobs.iter().cloned(), &mut Inert, &mut view);
    assert_eq!(warm.total_jobs, 64);

    // Steady state: whole replications, measured end to end. Judged on the
    // minimum across runs so a rare counter pollution from a harness thread
    // cannot fail the test spuriously — the engine's own behaviour is
    // identical in every run.
    let mut min_allocations = u64::MAX;
    for _ in 0..4 {
        let allocations = count_allocations(|| {
            let summary = sim.run_source(jobs.iter().cloned(), &mut Inert, &mut view);
            assert_eq!(summary.total_jobs, 64);
        });
        min_allocations = min_allocations.min(allocations);
    }
    assert_eq!(
        min_allocations, 0,
        "a warmed-up run_source replication allocated ({min_allocations} allocations)"
    );
}
