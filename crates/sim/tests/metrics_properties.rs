//! Property-based tests for the fairness and energy accounting added on top
//! of the core metrics: Jain-index bounds, scale invariance, and the
//! idle/peak power envelope of the energy report.

use proptest::prelude::*;
use tcrm_sim::config::PowerModel;
use tcrm_sim::stats::jain_fairness;
use tcrm_sim::{
    ClusterSpec, NodeClassSpec, PerClassUtilization, ResourceVector, UtilizationSample,
    UtilizationTrace,
};

fn small_cluster(idle: f64, peak: f64) -> ClusterSpec {
    use tcrm_sim::node::SpeedProfile;
    ClusterSpec::new(vec![
        NodeClassSpec::new(
            "a",
            3,
            ResourceVector::of(8.0, 32.0, 0.0, 10.0),
            SpeedProfile::uniform(1.0),
        )
        .with_power(PowerModel::new(idle, peak)),
        NodeClassSpec::new(
            "b",
            2,
            ResourceVector::of(16.0, 64.0, 2.0, 10.0),
            SpeedProfile::uniform(1.5),
        )
        .with_power(PowerModel::new(idle * 1.5, peak * 1.5)),
    ])
}

fn trace_from_utils(utils: &[(f64, f64)], dt: f64) -> UtilizationTrace {
    let mut trace = UtilizationTrace::default();
    for (i, &(ua, ub)) in utils.iter().enumerate() {
        trace.samples.push(UtilizationSample {
            time: i as f64 * dt,
            per_class: PerClassUtilization::from_slice(&[
                ResourceVector::splat(ua),
                ResourceVector::splat(ub),
            ]),
            overall: (ua + ub) / 2.0,
            pending: 0,
            running: 0,
        });
    }
    trace
}

proptest! {
    /// Jain's index always lies in (0, 1] for non-negative inputs, is exactly
    /// 1 for constant inputs, and is invariant under positive scaling.
    #[test]
    fn jain_index_bounds_and_scale_invariance(
        values in prop::collection::vec(0.0f64..1e4, 1..64),
        scale in 0.001f64..1000.0,
    ) {
        let f = jain_fairness(&values);
        prop_assert!(f > 0.0 && f <= 1.0 + 1e-12, "index {f} out of range");

        let scaled: Vec<f64> = values.iter().map(|v| v * scale).collect();
        let fs = jain_fairness(&scaled);
        prop_assert!((f - fs).abs() < 1e-9, "not scale invariant: {f} vs {fs}");

        let n = values.len() as f64;
        prop_assert!(f >= 1.0 / n - 1e-12, "index below 1/n");
    }

    /// A constant vector is perfectly fair regardless of its value.
    #[test]
    fn constant_vectors_are_perfectly_fair(v in 0.0f64..1e6, n in 1usize..50) {
        let values = vec![v; n];
        let f = jain_fairness(&values);
        prop_assert!((f - 1.0).abs() < 1e-12);
    }

    /// The energy report always lies between the idle floor and the peak
    /// ceiling, and is monotone when every utilisation sample rises.
    #[test]
    fn energy_between_idle_and_peak_and_monotone_in_utilisation(
        utils in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 2..40),
        dt in 0.5f64..60.0,
        idle in 10.0f64..200.0,
        headroom in 1.0f64..500.0,
        bump in 0.0f64..0.5,
    ) {
        let peak = idle + headroom;
        let spec = small_cluster(idle, peak);
        let trace = trace_from_utils(&utils, dt);
        let report = trace.energy_report(&spec, 1);

        let duration = (utils.len() - 1) as f64 * dt;
        let idle_floor: f64 = spec
            .node_classes
            .iter()
            .map(|c| c.power.idle_watts * c.count as f64)
            .sum::<f64>() * duration;
        let peak_ceiling: f64 = spec
            .node_classes
            .iter()
            .map(|c| c.power.peak_watts * c.count as f64)
            .sum::<f64>() * duration;
        prop_assert!(report.total_joules >= idle_floor - 1e-6);
        prop_assert!(report.total_joules <= peak_ceiling + 1e-6);
        prop_assert!((report.total_kwh * 3.6e6 - report.total_joules).abs() < 1e-3);
        prop_assert_eq!(report.per_class_joules.len(), spec.num_classes());

        // Raising every utilisation sample (clamped to 1) never lowers energy.
        let bumped: Vec<(f64, f64)> = utils
            .iter()
            .map(|&(a, b)| ((a + bump).min(1.0), (b + bump).min(1.0)))
            .collect();
        let bumped_report = trace_from_utils(&bumped, dt).energy_report(&spec, 1);
        prop_assert!(bumped_report.total_joules >= report.total_joules - 1e-6);
    }

    /// Power interpolation stays within [idle, peak] for any utilisation.
    #[test]
    fn power_model_is_bounded(idle in 0.0f64..500.0, extra in 0.0f64..1500.0, util in -2.0f64..3.0) {
        let p = PowerModel::new(idle, idle + extra);
        let w = p.watts_at(util);
        prop_assert!(w >= idle - 1e-9);
        prop_assert!(w <= idle + extra + 1e-9);
    }
}
