//! Counting-allocator proof of allocation-free simulator stepping: once a
//! run has warmed up (arrivals drained, buffers sized), `Simulator::advance`
//! plus `Simulator::view_into` perform **zero heap allocations** per decision
//! epoch. Utilisation sampling is included: samples store their per-class
//! vectors inline (`PerClassUtilization`, fixed arity) and the trace buffer
//! is pre-reserved at `Simulator::start`, so sampling-heavy runs stay on the
//! allocation-free path too.
//!
//! A single `#[test]` keeps concurrent test threads from polluting the
//! counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn count_allocations(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

#[test]
fn steady_state_stepping_does_not_allocate() {
    use tcrm_sim::node::SpeedProfile;
    use tcrm_sim::{
        Action, ClusterSpec, Job, JobClass, JobId, NodeClassId, NodeClassSpec, ResourceVector,
        SimConfig, Simulator, SpeedupModel, TimeUtility,
    };

    let spec = ClusterSpec::new(vec![NodeClassSpec::new(
        "generic",
        4,
        ResourceVector::of(16.0, 64.0, 0.0, 10.0),
        SpeedProfile::uniform(1.0),
    )]);
    let mut cfg = SimConfig::default();
    cfg.decision_interval = Some(1.0);
    // Sampling enabled well inside the measured window: per-class vectors
    // are stored inline and the trace is pre-reserved, so sampling must not
    // allocate either.
    cfg.util_sample_interval = 0.5;
    cfg.max_sim_time = 1e5;

    let jobs: Vec<Job> = (0..30)
        .map(|i| {
            Job::builder(JobId(i), JobClass::Batch)
                .arrival(0.0)
                .total_work(40.0 + 7.0 * i as f64)
                .demand_per_unit(ResourceVector::of(2.0, 4.0, 0.0, 1.0))
                .parallelism_range(1, 4)
                .speedup(SpeedupModel::Linear)
                .deadline(1e6)
                .utility(TimeUtility::hard(1.0))
                .build()
        })
        .collect();

    let mut sim = Simulator::new(spec, cfg);
    sim.start(jobs);

    // Warm-up: drain every arrival (pending peaks at 30), start a handful of
    // long-running jobs, and size the reusable view.
    let mut view = sim.view();
    let mut arrivals = 0;
    while arrivals < 30 {
        assert!(sim.advance());
        sim.view_into(&mut view);
        arrivals = 30 - view.future_arrivals;
    }
    for id in 0..8u64 {
        let outcome = sim.apply(&Action::Start {
            job: JobId(id),
            class: NodeClassId(0),
            parallelism: 1,
        });
        assert!(!outcome.is_invalid(), "warm-up start rejected: {outcome:?}");
    }
    // A couple of warm epochs after the starts so every buffer is sized.
    for _ in 0..3 {
        assert!(sim.advance());
        sim.view_into(&mut view);
    }

    // Steady state: periodic decision epochs and job completions only.
    // Measured over several windows, judged on the minimum: the engine's
    // own behaviour is identical in every window, so a zero minimum proves
    // the hot path never allocates, while rare counter pollution from a
    // harness thread cannot fail the test spuriously.
    let mut epochs = 0u32;
    let mut min_allocations = u64::MAX;
    for _ in 0..4 {
        let allocations = count_allocations(|| {
            for _ in 0..50 {
                if !sim.advance() {
                    break;
                }
                sim.view_into(&mut view);
                epochs += 1;
            }
        });
        min_allocations = min_allocations.min(allocations);
    }
    assert!(
        epochs >= 50,
        "expected a long steady-state window, got {epochs}"
    );
    assert_eq!(
        min_allocations, 0,
        "advance+view_into allocated in steady state ({min_allocations} allocations per 50-epoch window)"
    );
}
