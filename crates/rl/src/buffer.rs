//! Trajectory storage, discounted returns and Generalised Advantage
//! Estimation — in two shapes: the per-episode [`Trajectory`] (one `Vec` per
//! step, convenient for tests and offline analysis) and the flat
//! [`RolloutBatch`] the batched training path runs on (one matrix / flat
//! vector per field for the whole rollout, reused across iterations, with
//! returns/GAE computed in a single backward sweep over all episodes).

use serde::{Deserialize, Serialize};
use tcrm_nn::Matrix;

/// One episode (or rollout segment) of experience.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trajectory {
    /// Observations, one per step.
    pub observations: Vec<Vec<f32>>,
    /// Action masks, one per step.
    pub masks: Vec<Vec<bool>>,
    /// Actions taken.
    pub actions: Vec<usize>,
    /// Rewards received.
    pub rewards: Vec<f64>,
    /// Log-probabilities of the taken actions under the behaviour policy.
    pub log_probs: Vec<f32>,
    /// Critic value estimates at each step (empty for critic-free algorithms).
    pub values: Vec<f32>,
    /// Episode-termination flags (true on the final step of an episode).
    pub dones: Vec<bool>,
}

impl Trajectory {
    /// An empty trajectory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one transition.
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        observation: Vec<f32>,
        mask: Vec<bool>,
        action: usize,
        reward: f64,
        log_prob: f32,
        value: f32,
        done: bool,
    ) {
        self.observations.push(observation);
        self.masks.push(mask);
        self.actions.push(action);
        self.rewards.push(reward);
        self.log_probs.push(log_prob);
        self.values.push(value);
        self.dones.push(done);
    }

    /// Number of steps stored.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True if no steps are stored.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Undiscounted episode return (sum of rewards).
    pub fn total_reward(&self) -> f64 {
        self.rewards.iter().sum()
    }
}

/// Discounted returns `G_t = r_t + γ G_{t+1}`, resetting at episode
/// boundaries (`dones`).
pub fn discounted_returns(rewards: &[f64], dones: &[bool], gamma: f64) -> Vec<f64> {
    assert_eq!(rewards.len(), dones.len());
    let mut returns = vec![0.0; rewards.len()];
    let mut acc = 0.0;
    for t in (0..rewards.len()).rev() {
        if dones[t] {
            acc = 0.0;
        }
        acc = rewards[t] + gamma * acc;
        returns[t] = acc;
    }
    returns
}

/// Generalised Advantage Estimation.
///
/// Returns `(advantages, targets)` where `targets[t] = advantages[t] +
/// values[t]` is the regression target for the critic. The bootstrap value
/// after the final step is taken as 0 when that step is terminal, otherwise
/// `bootstrap_value`.
pub fn gae(
    rewards: &[f64],
    values: &[f32],
    dones: &[bool],
    bootstrap_value: f32,
    gamma: f64,
    lambda: f64,
) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(rewards.len(), values.len());
    assert_eq!(rewards.len(), dones.len());
    let n = rewards.len();
    let mut advantages = vec![0.0; n];
    let mut next_value = bootstrap_value as f64;
    let mut next_advantage = 0.0;
    for t in (0..n).rev() {
        let non_terminal = if dones[t] { 0.0 } else { 1.0 };
        if dones[t] {
            next_advantage = 0.0;
        }
        let delta = rewards[t] + gamma * next_value * non_terminal - values[t] as f64;
        next_advantage = delta + gamma * lambda * non_terminal * next_advantage;
        advantages[t] = next_advantage;
        next_value = values[t] as f64;
    }
    let targets: Vec<f64> = advantages
        .iter()
        .zip(values.iter())
        .map(|(a, v)| a + *v as f64)
        .collect();
    (advantages, targets)
}

/// Discounted returns over a *flat* multi-episode batch, written into a
/// caller-owned buffer (allocation-free once warmed).
///
/// `dones[t]` marks terminal steps; `ends[t]` marks the last step stored for
/// an episode (terminal **or** truncated). The accumulator resets whenever
/// either flag is set, so returns never leak across episode boundaries even
/// when an episode was cut off mid-flight.
pub fn discounted_returns_flat_into(
    rewards: &[f64],
    dones: &[bool],
    ends: &[bool],
    gamma: f64,
    out: &mut Vec<f64>,
) {
    assert_eq!(rewards.len(), dones.len());
    assert_eq!(rewards.len(), ends.len());
    out.clear();
    out.resize(rewards.len(), 0.0);
    let mut acc = 0.0;
    for t in (0..rewards.len()).rev() {
        if dones[t] || ends[t] {
            acc = 0.0;
        }
        acc = rewards[t] + gamma * acc;
        out[t] = acc;
    }
}

/// GAE over a *flat* multi-episode batch, written into caller-owned buffers
/// (allocation-free once warmed). Matches running [`gae`] per episode with a
/// bootstrap value of zero: at each `ends[t]` the sweep zeroes both the
/// successor value and the accumulated advantage before processing step `t`,
/// and within an episode `dones[t]` zeroes the successor exactly as the
/// per-episode sweep does.
#[allow(clippy::too_many_arguments)]
pub fn gae_flat_into(
    rewards: &[f64],
    values: &[f32],
    dones: &[bool],
    ends: &[bool],
    gamma: f64,
    lambda: f64,
    advantages: &mut Vec<f64>,
    targets: &mut Vec<f64>,
) {
    let n = rewards.len();
    assert_eq!(n, values.len());
    assert_eq!(n, dones.len());
    assert_eq!(n, ends.len());
    advantages.clear();
    advantages.resize(n, 0.0);
    targets.clear();
    targets.resize(n, 0.0);
    let mut next_value = 0.0f64;
    let mut next_advantage = 0.0f64;
    for t in (0..n).rev() {
        if ends[t] {
            next_value = 0.0;
            next_advantage = 0.0;
        }
        let non_terminal = if dones[t] { 0.0 } else { 1.0 };
        if dones[t] {
            next_advantage = 0.0;
        }
        let delta = rewards[t] + gamma * next_value * non_terminal - values[t] as f64;
        next_advantage = delta + gamma * lambda * non_terminal * next_advantage;
        advantages[t] = next_advantage;
        targets[t] = next_advantage + values[t] as f64;
        next_value = values[t] as f64;
    }
}

/// A whole rollout (many episodes) flattened into batch-major storage: one
/// observation matrix, one flat mask vector and one flat vector per scalar
/// field. This is the shape the batched policy/value forwards and the
/// algorithm update loops consume directly, and every buffer is retained
/// across [`RolloutBatch::clear`] so steady-state collection performs no
/// heap allocation.
#[derive(Debug, Clone)]
pub struct RolloutBatch {
    obs_dim: usize,
    action_count: usize,
    observations: Matrix,
    masks: Vec<bool>,
    actions: Vec<usize>,
    rewards: Vec<f64>,
    log_probs: Vec<f32>,
    values: Vec<f32>,
    dones: Vec<bool>,
    ends: Vec<bool>,
    episodes: usize,
    advantages: Vec<f64>,
    returns: Vec<f64>,
    value_targets: Vec<f64>,
}

impl RolloutBatch {
    /// An empty batch for `obs_dim`-dimensional observations and
    /// `action_count` discrete actions.
    pub fn new(obs_dim: usize, action_count: usize) -> Self {
        RolloutBatch {
            obs_dim,
            action_count,
            observations: Matrix::zeros(0, obs_dim),
            masks: Vec::new(),
            actions: Vec::new(),
            rewards: Vec::new(),
            log_probs: Vec::new(),
            values: Vec::new(),
            dones: Vec::new(),
            ends: Vec::new(),
            episodes: 0,
            advantages: Vec::new(),
            returns: Vec::new(),
            value_targets: Vec::new(),
        }
    }

    /// Flatten per-episode trajectories into one batch, preserving step order
    /// (trajectory 0's steps first, then trajectory 1's, ...). Critic value
    /// estimates are carried over; each trajectory closes one episode.
    pub fn from_trajectories(trajectories: &[Trajectory]) -> Self {
        let first = trajectories
            .iter()
            .find(|t| !t.is_empty())
            .expect("cannot flatten empty trajectories");
        let mut batch = RolloutBatch::new(first.observations[0].len(), first.masks[0].len());
        for traj in trajectories.iter().filter(|t| !t.is_empty()) {
            for t in 0..traj.len() {
                batch.push_step(
                    &traj.observations[t],
                    &traj.masks[t],
                    traj.actions[t],
                    traj.rewards[t],
                    traj.log_probs[t],
                    traj.dones[t],
                );
                if let Some(&v) = traj.values.get(t) {
                    *batch.values.last_mut().unwrap() = v;
                }
            }
            batch.close_episode();
        }
        batch
    }

    /// Observation dimensionality.
    pub fn obs_dim(&self) -> usize {
        self.obs_dim
    }

    /// Total number of discrete actions (mask stride).
    pub fn action_count(&self) -> usize {
        self.action_count
    }

    /// Number of steps stored.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True if no steps are stored.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Number of closed episodes.
    pub fn episodes(&self) -> usize {
        self.episodes
    }

    /// Drop all steps but keep every buffer's capacity.
    pub fn clear(&mut self) {
        self.observations.clear_rows();
        self.masks.clear();
        self.actions.clear();
        self.rewards.clear();
        self.log_probs.clear();
        self.values.clear();
        self.dones.clear();
        self.ends.clear();
        self.episodes = 0;
        self.advantages.clear();
        self.returns.clear();
        self.value_targets.clear();
    }

    /// Append one transition. The critic value slot is initialised to zero;
    /// collectors that score values in a deferred batched pass fill it
    /// through [`Self::values_mut`].
    pub fn push_step(
        &mut self,
        observation: &[f32],
        mask: &[bool],
        action: usize,
        reward: f64,
        log_prob: f32,
        done: bool,
    ) {
        assert_eq!(mask.len(), self.action_count, "mask length mismatch");
        self.observations.push_row(observation);
        self.masks.extend_from_slice(mask);
        self.actions.push(action);
        self.rewards.push(reward);
        self.log_probs.push(log_prob);
        self.values.push(0.0);
        self.dones.push(done);
        self.ends.push(false);
    }

    /// Mark the most recent step as the last one of its episode (terminal or
    /// truncated) and count the episode closed.
    pub fn close_episode(&mut self) {
        let last = self
            .ends
            .last_mut()
            .expect("close_episode on an empty batch");
        assert!(!*last, "episode already closed at this step");
        *last = true;
        self.episodes += 1;
    }

    /// Append every step of `other` (which must share dimensions) after this
    /// batch's steps.
    pub fn append(&mut self, other: &RolloutBatch) {
        assert_eq!(self.obs_dim, other.obs_dim, "obs_dim mismatch");
        assert_eq!(
            self.action_count, other.action_count,
            "action_count mismatch"
        );
        for i in 0..other.len() {
            self.observations.push_row(other.observation(i));
        }
        self.masks.extend_from_slice(&other.masks);
        self.actions.extend_from_slice(&other.actions);
        self.rewards.extend_from_slice(&other.rewards);
        self.log_probs.extend_from_slice(&other.log_probs);
        self.values.extend_from_slice(&other.values);
        self.dones.extend_from_slice(&other.dones);
        self.ends.extend_from_slice(&other.ends);
        self.episodes += other.episodes;
    }

    /// The stacked observation matrix (`len()` rows × `obs_dim` columns).
    pub fn observations(&self) -> &Matrix {
        &self.observations
    }

    /// Observation row for step `i`.
    pub fn observation(&self, i: usize) -> &[f32] {
        self.observations.row(i)
    }

    /// Action mask for step `i`.
    pub fn mask(&self, i: usize) -> &[bool] {
        &self.masks[i * self.action_count..(i + 1) * self.action_count]
    }

    /// Actions taken, one per step.
    pub fn actions(&self) -> &[usize] {
        &self.actions
    }

    /// Rewards, one per step.
    pub fn rewards(&self) -> &[f64] {
        &self.rewards
    }

    /// Behaviour-policy log-probabilities, one per step.
    pub fn log_probs(&self) -> &[f32] {
        &self.log_probs
    }

    /// Critic value estimates, one per step.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Mutable critic value estimates (for deferred batched scoring).
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.values
    }

    /// Terminal flags, one per step.
    pub fn dones(&self) -> &[bool] {
        &self.dones
    }

    /// Episode-end flags (terminal or truncated), one per step.
    pub fn ends(&self) -> &[bool] {
        &self.ends
    }

    /// Fill [`Self::returns`] with discounted returns over the whole batch
    /// in one backward sweep (allocation-free once warmed).
    pub fn compute_returns(&mut self, gamma: f64) {
        discounted_returns_flat_into(
            &self.rewards,
            &self.dones,
            &self.ends,
            gamma,
            &mut self.returns,
        );
    }

    /// Fill [`Self::advantages`] and [`Self::value_targets`] with GAE over
    /// the whole batch in one backward sweep (allocation-free once warmed).
    pub fn compute_gae(&mut self, gamma: f64, lambda: f64) {
        gae_flat_into(
            &self.rewards,
            &self.values,
            &self.dones,
            &self.ends,
            gamma,
            lambda,
            &mut self.advantages,
            &mut self.value_targets,
        );
    }

    /// Overwrite [`Self::advantages`] with `returns − baseline` (REINFORCE's
    /// Monte-Carlo advantage against a scalar baseline). Requires
    /// [`Self::compute_returns`] to have run.
    pub fn set_advantages_to_returns_minus(&mut self, baseline: f64) {
        assert_eq!(self.returns.len(), self.len(), "compute_returns not run");
        self.advantages.clear();
        self.advantages
            .extend(self.returns.iter().map(|g| g - baseline));
    }

    /// Normalise [`Self::advantages`] to zero mean / unit variance in place.
    pub fn normalize_advantages(&mut self) {
        normalize_advantages(&mut self.advantages);
    }

    /// Advantages from the last [`Self::compute_gae`] call (or as overwritten
    /// through [`Self::advantages_mut`]).
    pub fn advantages(&self) -> &[f64] {
        &self.advantages
    }

    /// Mutable advantages (REINFORCE overwrites them with baselined returns).
    pub fn advantages_mut(&mut self) -> &mut Vec<f64> {
        &mut self.advantages
    }

    /// Discounted returns from the last [`Self::compute_returns`] call.
    pub fn returns(&self) -> &[f64] {
        &self.returns
    }

    /// Critic regression targets from the last [`Self::compute_gae`] call.
    pub fn value_targets(&self) -> &[f64] {
        &self.value_targets
    }
}

/// Normalise advantages to zero mean and unit variance (standard variance
/// reduction). A tiny epsilon guards against constant advantages.
pub fn normalize_advantages(advantages: &mut [f64]) {
    if advantages.len() < 2 {
        return;
    }
    let mean = advantages.iter().sum::<f64>() / advantages.len() as f64;
    let var = advantages
        .iter()
        .map(|a| (a - mean) * (a - mean))
        .sum::<f64>()
        / advantages.len() as f64;
    let std = var.sqrt().max(1e-8);
    for a in advantages.iter_mut() {
        *a = (*a - mean) / std;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_push_and_totals() {
        let mut t = Trajectory::new();
        assert!(t.is_empty());
        t.push(vec![0.0], vec![true], 0, 1.0, -0.1, 0.5, false);
        t.push(vec![1.0], vec![true], 1, 2.0, -0.2, 0.4, true);
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_reward(), 3.0);
    }

    #[test]
    fn returns_with_full_discount_reduce_to_suffix_sums() {
        let rewards = [1.0, 1.0, 1.0];
        let dones = [false, false, true];
        let r = discounted_returns(&rewards, &dones, 1.0);
        assert_eq!(r, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn returns_discount_correctly() {
        let rewards = [0.0, 0.0, 1.0];
        let dones = [false, false, true];
        let r = discounted_returns(&rewards, &dones, 0.5);
        assert_eq!(r, vec![0.25, 0.5, 1.0]);
    }

    #[test]
    fn returns_reset_at_episode_boundaries() {
        let rewards = [1.0, 1.0, 5.0, 5.0];
        let dones = [false, true, false, true];
        let r = discounted_returns(&rewards, &dones, 1.0);
        assert_eq!(r, vec![2.0, 1.0, 10.0, 5.0]);
    }

    #[test]
    fn gae_with_lambda_one_matches_mc_advantage() {
        let rewards = [1.0, 2.0, 3.0];
        let values = [0.5, 0.5, 0.5];
        let dones = [false, false, true];
        let gamma = 0.9;
        let (adv, targets) = gae(&rewards, &values, &dones, 0.0, gamma, 1.0);
        let returns = discounted_returns(&rewards, &dones, gamma);
        for t in 0..3 {
            assert!((adv[t] - (returns[t] - values[t] as f64)).abs() < 1e-9);
            assert!((targets[t] - (adv[t] + values[t] as f64)).abs() < 1e-12);
        }
    }

    #[test]
    fn gae_with_lambda_zero_is_one_step_td() {
        let rewards = [1.0, 2.0];
        let values = [0.3, 0.7];
        let dones = [false, true];
        let gamma = 0.95;
        let (adv, _) = gae(&rewards, &values, &dones, 0.0, gamma, 0.0);
        assert!((adv[0] - (1.0 + gamma * 0.7 - 0.3)).abs() < 1e-6);
        assert!((adv[1] - (2.0 - 0.7)).abs() < 1e-6);
    }

    #[test]
    fn gae_uses_bootstrap_for_truncated_rollouts() {
        let rewards = [1.0];
        let values = [0.0];
        let dones = [false]; // truncated, not terminal
        let (adv, _) = gae(&rewards, &values, &dones, 10.0, 0.9, 1.0);
        assert!((adv[0] - (1.0 + 0.9 * 10.0)).abs() < 1e-5);
    }

    /// Three ragged episodes: lengths 3 (terminal), 1 (terminal), 2
    /// (truncated — `done` stays false on the last step).
    fn ragged_batch() -> RolloutBatch {
        let mut b = RolloutBatch::new(2, 2);
        let specs: [(&[f64], bool); 3] = [
            (&[1.0, -0.5, 2.0], true),
            (&[4.0], true),
            (&[0.5, 0.25], false),
        ];
        for (e, (rewards, terminal)) in specs.iter().enumerate() {
            for (t, &r) in rewards.iter().enumerate() {
                let done = *terminal && t + 1 == rewards.len();
                b.push_step(
                    &[e as f32, t as f32],
                    &[true, t % 2 == 0],
                    t % 2,
                    r,
                    -0.1,
                    done,
                );
            }
            b.close_episode();
        }
        let n = b.len();
        for (i, v) in b.values_mut().iter_mut().enumerate() {
            *v = 0.1 * (i as f32 + 1.0);
        }
        assert_eq!(n, 6);
        b
    }

    #[test]
    fn rollout_batch_stores_steps_and_episode_boundaries() {
        let b = ragged_batch();
        assert_eq!(b.episodes(), 3);
        assert_eq!(b.ends(), &[false, false, true, true, false, true]);
        assert_eq!(b.dones(), &[false, false, true, true, false, false]);
        assert_eq!(b.observation(4), &[2.0, 0.0]);
        assert_eq!(b.mask(1), &[true, false]);
        assert_eq!(b.observations().rows(), 6);
    }

    #[test]
    fn flat_returns_match_per_episode_reference() {
        let mut b = ragged_batch();
        let gamma = 0.9;
        b.compute_returns(gamma);
        let mut expected = Vec::new();
        for (rewards, dones) in [
            (vec![1.0, -0.5, 2.0], vec![false, false, true]),
            (vec![4.0], vec![true]),
            (vec![0.5, 0.25], vec![false, false]),
        ] {
            // Per-episode sweeps can never see beyond their own episode, so
            // the truncated third episode behaves as if it simply stopped.
            expected.extend(discounted_returns(&rewards, &dones, gamma));
        }
        assert_eq!(b.returns(), expected.as_slice());
    }

    #[test]
    fn flat_gae_matches_per_episode_reference_with_zero_bootstrap() {
        let mut b = ragged_batch();
        let (gamma, lambda) = (0.97, 0.95);
        b.compute_gae(gamma, lambda);
        let values = b.values().to_vec();
        let mut expected_adv = Vec::new();
        let mut expected_tgt = Vec::new();
        for (lo, hi, dones) in [
            (0usize, 3usize, vec![false, false, true]),
            (3, 4, vec![true]),
            (4, 6, vec![false, false]),
        ] {
            let (a, t) = gae(
                &b.rewards()[lo..hi],
                &values[lo..hi],
                &dones,
                0.0,
                gamma,
                lambda,
            );
            expected_adv.extend(a);
            expected_tgt.extend(t);
        }
        for t in 0..b.len() {
            assert!((b.advantages()[t] - expected_adv[t]).abs() < 1e-12);
            assert!((b.value_targets()[t] - expected_tgt[t]).abs() < 1e-12);
        }
    }

    #[test]
    fn from_trajectories_matches_manual_flattening() {
        let mut t1 = Trajectory::new();
        t1.push(vec![0.0, 0.0], vec![true, true], 0, 1.0, -0.5, 0.2, false);
        t1.push(vec![1.0, 0.0], vec![true, false], 1, 2.0, -0.4, 0.3, true);
        let mut t2 = Trajectory::new();
        t2.push(vec![0.0, 1.0], vec![false, true], 1, 3.0, -0.3, 0.4, false);
        let b = RolloutBatch::from_trajectories(&[t1, t2]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.episodes(), 2);
        assert_eq!(b.actions(), &[0, 1, 1]);
        assert_eq!(b.values(), &[0.2, 0.3, 0.4]);
        assert_eq!(b.dones(), &[false, true, false]);
        assert_eq!(b.ends(), &[false, true, true]);
        assert_eq!(b.observation(2), &[0.0, 1.0]);
    }

    #[test]
    fn append_concatenates_batches() {
        let mut a = ragged_batch();
        let before = a.len();
        let b = ragged_batch();
        a.append(&b);
        assert_eq!(a.len(), 2 * before);
        assert_eq!(a.episodes(), 6);
        assert_eq!(a.mask(before + 1), b.mask(1));
        assert_eq!(a.observation(before + 4), b.observation(4));
    }

    #[test]
    fn clear_resets_length_but_keeps_dimensions() {
        let mut b = ragged_batch();
        b.compute_gae(0.9, 0.95);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.episodes(), 0);
        assert_eq!(b.obs_dim(), 2);
        assert_eq!(b.action_count(), 2);
        b.push_step(&[1.0, 2.0], &[true, true], 0, 1.0, 0.0, true);
        b.close_episode();
        assert_eq!(b.len(), 1);
        assert_eq!(b.episodes(), 1);
    }

    #[test]
    fn normalisation_produces_zero_mean_unit_std() {
        let mut adv = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        normalize_advantages(&mut adv);
        let mean: f64 = adv.iter().sum::<f64>() / 5.0;
        let var: f64 = adv.iter().map(|a| a * a).sum::<f64>() / 5.0;
        assert!(mean.abs() < 1e-9);
        assert!((var - 1.0).abs() < 1e-6);
        // Degenerate cases do not blow up.
        let mut single = vec![3.0];
        normalize_advantages(&mut single);
        assert_eq!(single, vec![3.0]);
        let mut constant = vec![2.0, 2.0, 2.0];
        normalize_advantages(&mut constant);
        assert!(constant.iter().all(|a| a.abs() < 1e-6));
    }
}
