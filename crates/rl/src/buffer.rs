//! Trajectory storage, discounted returns and Generalised Advantage
//! Estimation.

use serde::{Deserialize, Serialize};

/// One episode (or rollout segment) of experience.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trajectory {
    /// Observations, one per step.
    pub observations: Vec<Vec<f32>>,
    /// Action masks, one per step.
    pub masks: Vec<Vec<bool>>,
    /// Actions taken.
    pub actions: Vec<usize>,
    /// Rewards received.
    pub rewards: Vec<f64>,
    /// Log-probabilities of the taken actions under the behaviour policy.
    pub log_probs: Vec<f32>,
    /// Critic value estimates at each step (empty for critic-free algorithms).
    pub values: Vec<f32>,
    /// Episode-termination flags (true on the final step of an episode).
    pub dones: Vec<bool>,
}

impl Trajectory {
    /// An empty trajectory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one transition.
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        observation: Vec<f32>,
        mask: Vec<bool>,
        action: usize,
        reward: f64,
        log_prob: f32,
        value: f32,
        done: bool,
    ) {
        self.observations.push(observation);
        self.masks.push(mask);
        self.actions.push(action);
        self.rewards.push(reward);
        self.log_probs.push(log_prob);
        self.values.push(value);
        self.dones.push(done);
    }

    /// Number of steps stored.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True if no steps are stored.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Undiscounted episode return (sum of rewards).
    pub fn total_reward(&self) -> f64 {
        self.rewards.iter().sum()
    }
}

/// Discounted returns `G_t = r_t + γ G_{t+1}`, resetting at episode
/// boundaries (`dones`).
pub fn discounted_returns(rewards: &[f64], dones: &[bool], gamma: f64) -> Vec<f64> {
    assert_eq!(rewards.len(), dones.len());
    let mut returns = vec![0.0; rewards.len()];
    let mut acc = 0.0;
    for t in (0..rewards.len()).rev() {
        if dones[t] {
            acc = 0.0;
        }
        acc = rewards[t] + gamma * acc;
        returns[t] = acc;
    }
    returns
}

/// Generalised Advantage Estimation.
///
/// Returns `(advantages, targets)` where `targets[t] = advantages[t] +
/// values[t]` is the regression target for the critic. The bootstrap value
/// after the final step is taken as 0 when that step is terminal, otherwise
/// `bootstrap_value`.
pub fn gae(
    rewards: &[f64],
    values: &[f32],
    dones: &[bool],
    bootstrap_value: f32,
    gamma: f64,
    lambda: f64,
) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(rewards.len(), values.len());
    assert_eq!(rewards.len(), dones.len());
    let n = rewards.len();
    let mut advantages = vec![0.0; n];
    let mut next_value = bootstrap_value as f64;
    let mut next_advantage = 0.0;
    for t in (0..n).rev() {
        let non_terminal = if dones[t] { 0.0 } else { 1.0 };
        if dones[t] {
            next_advantage = 0.0;
        }
        let delta = rewards[t] + gamma * next_value * non_terminal - values[t] as f64;
        next_advantage = delta + gamma * lambda * non_terminal * next_advantage;
        advantages[t] = next_advantage;
        next_value = values[t] as f64;
    }
    let targets: Vec<f64> = advantages
        .iter()
        .zip(values.iter())
        .map(|(a, v)| a + *v as f64)
        .collect();
    (advantages, targets)
}

/// Normalise advantages to zero mean and unit variance (standard variance
/// reduction). A tiny epsilon guards against constant advantages.
pub fn normalize_advantages(advantages: &mut [f64]) {
    if advantages.len() < 2 {
        return;
    }
    let mean = advantages.iter().sum::<f64>() / advantages.len() as f64;
    let var = advantages
        .iter()
        .map(|a| (a - mean) * (a - mean))
        .sum::<f64>()
        / advantages.len() as f64;
    let std = var.sqrt().max(1e-8);
    for a in advantages.iter_mut() {
        *a = (*a - mean) / std;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_push_and_totals() {
        let mut t = Trajectory::new();
        assert!(t.is_empty());
        t.push(vec![0.0], vec![true], 0, 1.0, -0.1, 0.5, false);
        t.push(vec![1.0], vec![true], 1, 2.0, -0.2, 0.4, true);
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_reward(), 3.0);
    }

    #[test]
    fn returns_with_full_discount_reduce_to_suffix_sums() {
        let rewards = [1.0, 1.0, 1.0];
        let dones = [false, false, true];
        let r = discounted_returns(&rewards, &dones, 1.0);
        assert_eq!(r, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn returns_discount_correctly() {
        let rewards = [0.0, 0.0, 1.0];
        let dones = [false, false, true];
        let r = discounted_returns(&rewards, &dones, 0.5);
        assert_eq!(r, vec![0.25, 0.5, 1.0]);
    }

    #[test]
    fn returns_reset_at_episode_boundaries() {
        let rewards = [1.0, 1.0, 5.0, 5.0];
        let dones = [false, true, false, true];
        let r = discounted_returns(&rewards, &dones, 1.0);
        assert_eq!(r, vec![2.0, 1.0, 10.0, 5.0]);
    }

    #[test]
    fn gae_with_lambda_one_matches_mc_advantage() {
        let rewards = [1.0, 2.0, 3.0];
        let values = [0.5, 0.5, 0.5];
        let dones = [false, false, true];
        let gamma = 0.9;
        let (adv, targets) = gae(&rewards, &values, &dones, 0.0, gamma, 1.0);
        let returns = discounted_returns(&rewards, &dones, gamma);
        for t in 0..3 {
            assert!((adv[t] - (returns[t] - values[t] as f64)).abs() < 1e-9);
            assert!((targets[t] - (adv[t] + values[t] as f64)).abs() < 1e-12);
        }
    }

    #[test]
    fn gae_with_lambda_zero_is_one_step_td() {
        let rewards = [1.0, 2.0];
        let values = [0.3, 0.7];
        let dones = [false, true];
        let gamma = 0.95;
        let (adv, _) = gae(&rewards, &values, &dones, 0.0, gamma, 0.0);
        assert!((adv[0] - (1.0 + gamma * 0.7 - 0.3)).abs() < 1e-6);
        assert!((adv[1] - (2.0 - 0.7)).abs() < 1e-6);
    }

    #[test]
    fn gae_uses_bootstrap_for_truncated_rollouts() {
        let rewards = [1.0];
        let values = [0.0];
        let dones = [false]; // truncated, not terminal
        let (adv, _) = gae(&rewards, &values, &dones, 10.0, 0.9, 1.0);
        assert!((adv[0] - (1.0 + 0.9 * 10.0)).abs() < 1e-5);
    }

    #[test]
    fn normalisation_produces_zero_mean_unit_std() {
        let mut adv = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        normalize_advantages(&mut adv);
        let mean: f64 = adv.iter().sum::<f64>() / 5.0;
        let var: f64 = adv.iter().map(|a| a * a).sum::<f64>() / 5.0;
        assert!(mean.abs() < 1e-9);
        assert!((var - 1.0).abs() < 1e-6);
        // Degenerate cases do not blow up.
        let mut single = vec![3.0];
        normalize_advantages(&mut single);
        assert_eq!(single, vec![3.0]);
        let mut constant = vec![2.0, 2.0, 2.0];
        normalize_advantages(&mut constant);
        assert!(constant.iter().all(|a| a.abs() < 1e-6));
    }
}
