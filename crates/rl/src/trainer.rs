//! The training loop: roll out episodes, update the learner, record history.
//!
//! Two collection paths share the same seeding discipline (episode `e` of
//! iteration `i` draws from `StdRng::seed_from_u64(seed + i·E + e)` and
//! resets its environment with the same value):
//!
//! * [`Trainer::train_in_place`] — the legacy single-environment loop, one
//!   policy forward per step;
//! * [`Trainer::train_in_place_vec`] — the vectorized loop over a lockstep
//!   [`VecEnv`] pool: one **batched** policy forward per step for all active
//!   environments, per-episode batched critic scoring, and a flat
//!   [`RolloutBatch`] handed straight to [`Algorithm::update_batch`]. With a
//!   one-environment pool it reproduces the legacy loop seed for seed (see
//!   `tests/vec_env_parity.rs`).

use crate::algorithm::{Algorithm, UpdateStats};
use crate::buffer::{RolloutBatch, Trajectory};
use crate::env::Environment;
use crate::policy::sample_categorical;
use crate::vec_env::VecEnv;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tcrm_nn::{masked_softmax_into, Matrix, Workspace};

/// Trainer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Episodes collected per update.
    pub episodes_per_iteration: usize,
    /// Number of update iterations.
    pub iterations: usize,
    /// Maximum steps per episode (guards against non-terminating
    /// environments).
    pub max_steps_per_episode: usize,
    /// Base seed: episode `e` of iteration `i` uses
    /// `seed + i * episodes_per_iteration + e` so every rollout is
    /// reproducible and distinct.
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            episodes_per_iteration: 8,
            iterations: 100,
            max_steps_per_episode: 10_000,
            seed: 0,
        }
    }
}

/// Aggregate statistics of one training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpisodeStats {
    /// Iteration index.
    pub iteration: usize,
    /// Mean undiscounted episode return.
    pub mean_return: f64,
    /// Minimum episode return in the batch.
    pub min_return: f64,
    /// Maximum episode return in the batch.
    pub max_return: f64,
    /// Mean episode length.
    pub mean_length: f64,
    /// Learner diagnostics for the update that followed.
    pub update: UpdateStats,
}

/// The per-iteration history of a training run (the data behind the
/// training-convergence figure).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainingHistory {
    /// One entry per iteration, in order.
    pub iterations: Vec<EpisodeStats>,
}

impl TrainingHistory {
    /// Mean return of the last `k` iterations (or fewer if the run was
    /// shorter).
    pub fn final_mean_return(&self, k: usize) -> f64 {
        if self.iterations.is_empty() {
            return 0.0;
        }
        let tail: Vec<f64> = self
            .iterations
            .iter()
            .rev()
            .take(k.max(1))
            .map(|s| s.mean_return)
            .collect();
        tail.iter().sum::<f64>() / tail.len() as f64
    }

    /// Best iteration mean return seen.
    pub fn best_mean_return(&self) -> f64 {
        self.iterations
            .iter()
            .map(|s| s.mean_return)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Rolls out episodes with the learner's policy and feeds them back for
/// updates.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainerConfig,
}

impl Trainer {
    /// Create a trainer.
    pub fn new(config: TrainerConfig) -> Self {
        Trainer { config }
    }

    /// The configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Roll out one episode with the current policy (stochastic actions) and
    /// record it as a trajectory. The critic is scored once over the whole
    /// episode (a single batched forward pass through
    /// [`Algorithm::value_estimates_into`]) instead of once per step — the
    /// policy and critic do not change during a rollout, so the recorded
    /// values are the same and the per-row forward passes are gone.
    pub fn rollout<E: Environment + ?Sized, A: Algorithm + ?Sized>(
        &self,
        env: &mut E,
        algo: &mut A,
        seed: u64,
    ) -> Trajectory {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trajectory = Trajectory::new();
        let mut step = env.reset(seed);
        for _ in 0..self.config.max_steps_per_episode {
            let (action, log_prob, _) =
                algo.policy()
                    .sample(&step.observation, &step.action_mask, &mut rng);
            let transition = env.step(action);
            trajectory.push(
                step.observation.clone(),
                step.action_mask.clone(),
                action,
                transition.reward,
                log_prob,
                0.0,
                transition.done,
            );
            if transition.done {
                break;
            }
            step = transition.next;
        }
        if !trajectory.is_empty() {
            let mut obs = Matrix::zeros(0, trajectory.observations[0].len());
            for o in &trajectory.observations {
                obs.push_row(o);
            }
            algo.value_estimates_into(&obs, &mut trajectory.values);
        }
        trajectory
    }

    /// Run a full training loop and return the learner together with its
    /// history.
    pub fn train<E: Environment + ?Sized, A: Algorithm>(
        &mut self,
        env: &mut E,
        mut algo: A,
    ) -> TrainingHistory {
        self.train_in_place(env, &mut algo)
    }

    /// Like [`Self::train`] but keeps ownership of the learner with the
    /// caller (used when the caller wants the trained policy afterwards).
    pub fn train_in_place<E: Environment + ?Sized, A: Algorithm + ?Sized>(
        &mut self,
        env: &mut E,
        algo: &mut A,
    ) -> TrainingHistory {
        let mut history = TrainingHistory::default();
        for iteration in 0..self.config.iterations {
            let mut trajectories = Vec::with_capacity(self.config.episodes_per_iteration);
            for e in 0..self.config.episodes_per_iteration {
                let seed =
                    self.config.seed + (iteration * self.config.episodes_per_iteration + e) as u64;
                trajectories.push(self.rollout(env, algo, seed));
            }
            let returns: Vec<f64> = trajectories.iter().map(|t| t.total_reward()).collect();
            let lengths: Vec<f64> = trajectories.iter().map(|t| t.len() as f64).collect();
            let update = algo.update(&trajectories);
            history.iterations.push(EpisodeStats {
                iteration,
                mean_return: mean(&returns),
                min_return: returns.iter().cloned().fold(f64::INFINITY, f64::min),
                max_return: returns.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                mean_length: mean(&lengths),
                update,
            });
        }
        history
    }

    /// Vectorized counterpart of [`Self::train`]: collect every iteration's
    /// episodes over a lockstep [`VecEnv`] pool with batched policy/value
    /// forwards, then update from the flat batch.
    pub fn train_vec<E: Environment + Send, A: Algorithm>(
        &mut self,
        vec_env: &mut VecEnv<E>,
        mut algo: A,
    ) -> TrainingHistory {
        self.train_in_place_vec(vec_env, &mut algo)
    }

    /// Like [`Self::train_vec`] but keeps ownership of the learner with the
    /// caller.
    ///
    /// Episodes are distributed over the pool work-queue style: slot `j`
    /// starts on episode `j`, and whenever a slot finishes (terminal or
    /// truncated at `max_steps_per_episode`) it is reset *in place* onto the
    /// next unstarted episode index — so per-episode seeds, RNG streams and
    /// episode boundaries are independent of the pool size, and a
    /// one-environment pool reproduces [`Self::train_in_place`] seed for
    /// seed. All rollout storage lives in persistent scratch buffers reused
    /// across iterations; steady-state collection allocates nothing.
    pub fn train_in_place_vec<E: Environment + Send, A: Algorithm + ?Sized>(
        &mut self,
        vec_env: &mut VecEnv<E>,
        algo: &mut A,
    ) -> TrainingHistory {
        let mut scratch = VecScratch::new(
            vec_env.observation_dim(),
            vec_env.action_count(),
            vec_env.num_envs(),
            self.config.episodes_per_iteration,
        );
        let mut history = TrainingHistory::default();
        for iteration in 0..self.config.iterations {
            self.collect_vec(iteration, vec_env, algo, &mut scratch);
            let update = algo.update_batch(&mut scratch.batch);
            history.iterations.push(EpisodeStats {
                iteration,
                mean_return: mean(&scratch.ep_returns),
                min_return: scratch
                    .ep_returns
                    .iter()
                    .cloned()
                    .fold(f64::INFINITY, f64::min),
                max_return: scratch
                    .ep_returns
                    .iter()
                    .cloned()
                    .fold(f64::NEG_INFINITY, f64::max),
                mean_length: mean(&scratch.ep_lengths),
                update,
            });
        }
        history
    }

    /// Collect one iteration's worth of episodes into `scratch.batch`.
    fn collect_vec<E: Environment + Send, A: Algorithm + ?Sized>(
        &self,
        iteration: usize,
        vec_env: &mut VecEnv<E>,
        algo: &mut A,
        scratch: &mut VecScratch,
    ) {
        let e_total = self.config.episodes_per_iteration;
        let n_envs = vec_env.num_envs();
        let action_count = vec_env.action_count();
        let base = self.config.seed + (iteration * e_total) as u64;
        for ep in scratch.episodes.iter_mut() {
            ep.clear();
        }

        // Seat the first wave of episodes; spare slots go idle.
        let mut next_episode = 0usize;
        for slot in 0..n_envs {
            if next_episode < e_total {
                let seed = base + next_episode as u64;
                vec_env.reset_env(slot, seed);
                scratch.rngs[slot] = StdRng::seed_from_u64(seed);
                scratch.episode_of[slot] = next_episode;
                scratch.steps[slot] = 0;
                next_episode += 1;
            } else {
                vec_env.deactivate(slot);
            }
        }

        let mut finished = 0usize;
        while finished < e_total && self.config.max_steps_per_episode > 0 {
            let n_rows =
                vec_env.stack_active(&mut scratch.obs, &mut scratch.masks, &mut scratch.rows);
            debug_assert!(n_rows > 0, "lockstep with no active environments");
            // One batched policy forward for every active environment.
            let logits = algo.policy().logits_batch_ws(&scratch.obs, &mut scratch.ws);
            for row in 0..n_rows {
                let slot = scratch.rows[row];
                let mask = &scratch.masks[row * action_count..(row + 1) * action_count];
                masked_softmax_into(logits.row(row), mask, &mut scratch.probs);
                let (action, log_prob) =
                    sample_categorical(&scratch.probs, &mut scratch.rngs[slot]);
                vec_env.set_action(slot, action);
                scratch.pending_action[slot] = action;
                scratch.pending_log_prob[slot] = log_prob;
            }
            vec_env.step_active();
            for row in 0..n_rows {
                let slot = scratch.rows[row];
                let ep = scratch.episode_of[slot];
                let done = vec_env.done(slot);
                scratch.episodes[ep].push_step(
                    scratch.obs.row(row),
                    &scratch.masks[row * action_count..(row + 1) * action_count],
                    scratch.pending_action[slot],
                    vec_env.reward(slot),
                    scratch.pending_log_prob[slot],
                    done,
                );
                scratch.steps[slot] += 1;
                if done || scratch.steps[slot] >= self.config.max_steps_per_episode {
                    scratch.episodes[ep].close_episode();
                    // One batched critic forward over the finished episode —
                    // the same shape the legacy rollout scores, so recorded
                    // values match it bitwise.
                    algo.value_estimates_into(
                        scratch.episodes[ep].observations(),
                        &mut scratch.vals,
                    );
                    scratch.episodes[ep]
                        .values_mut()
                        .copy_from_slice(&scratch.vals);
                    finished += 1;
                    if next_episode < e_total {
                        let seed = base + next_episode as u64;
                        vec_env.reset_env(slot, seed);
                        scratch.rngs[slot] = StdRng::seed_from_u64(seed);
                        scratch.episode_of[slot] = next_episode;
                        scratch.steps[slot] = 0;
                        next_episode += 1;
                    } else {
                        vec_env.deactivate(slot);
                    }
                }
            }
        }

        // Assemble the flat update batch in episode order (matching what the
        // legacy path feeds `Algorithm::update`), plus the iteration stats.
        scratch.batch.clear();
        scratch.ep_returns.clear();
        scratch.ep_lengths.clear();
        for ep in scratch.episodes.iter().take(e_total) {
            scratch.batch.append(ep);
            scratch.ep_returns.push(ep.rewards().iter().sum());
            scratch.ep_lengths.push(ep.len() as f64);
        }
    }
}

/// Persistent scratch for the vectorized collector: grows to steady-state
/// shape during the first iteration and is reused afterwards.
struct VecScratch {
    /// Stacked observations of the active slots (rows in slot order).
    obs: Matrix,
    /// Stacked masks in lockstep with `obs` rows.
    masks: Vec<bool>,
    /// Slot index of each stacked row.
    rows: Vec<usize>,
    /// Per-row probability scratch for sampling.
    probs: Vec<f32>,
    /// Workspace for the batched policy forward.
    ws: Workspace,
    /// Per-episode critic scores of a finished episode.
    vals: Vec<f32>,
    /// Per-episode staging batches (indexed by episode within the
    /// iteration), appended in order into `batch` at the end.
    episodes: Vec<RolloutBatch>,
    /// The assembled flat batch handed to the learner.
    batch: RolloutBatch,
    /// Per-slot RNG, reseeded at every episode start.
    rngs: Vec<StdRng>,
    /// Episode index each slot is currently collecting.
    episode_of: Vec<usize>,
    /// Steps the slot has taken in its current episode.
    steps: Vec<usize>,
    /// Action each slot applied at the pending step.
    pending_action: Vec<usize>,
    /// Log-probability of each slot's pending action.
    pending_log_prob: Vec<f32>,
    /// Undiscounted return of each episode this iteration.
    ep_returns: Vec<f64>,
    /// Length of each episode this iteration.
    ep_lengths: Vec<f64>,
}

impl VecScratch {
    fn new(obs_dim: usize, action_count: usize, n_envs: usize, episodes: usize) -> Self {
        VecScratch {
            obs: Matrix::zeros(0, obs_dim),
            masks: Vec::new(),
            rows: Vec::new(),
            probs: Vec::new(),
            ws: Workspace::default(),
            vals: Vec::new(),
            episodes: vec![RolloutBatch::new(obs_dim, action_count); episodes],
            batch: RolloutBatch::new(obs_dim, action_count),
            rngs: (0..n_envs as u64).map(StdRng::seed_from_u64).collect(),
            episode_of: vec![0; n_envs],
            steps: vec![0; n_envs],
            pending_action: vec![0; n_envs],
            pending_log_prob: vec![0.0; n_envs],
            ep_returns: Vec::new(),
            ep_lengths: Vec::new(),
        }
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{Reinforce, ReinforceConfig};
    use crate::env::test_envs::{ChainEnv, MaskedEnv};
    use crate::policy::CategoricalPolicy;

    #[test]
    fn rollout_respects_masks_and_episode_length() {
        let trainer = Trainer::new(TrainerConfig::default());
        let mut env = MaskedEnv { steps: 0 };
        let mut algo = Reinforce::new(
            CategoricalPolicy::new(2, &[8], 3, 0),
            ReinforceConfig::default(),
        );
        let t = trainer.rollout(&mut env, &mut algo, 1);
        assert_eq!(t.len(), 6);
        for (mask, action) in t.masks.iter().zip(t.actions.iter()) {
            assert!(mask[*action], "policy acted outside the mask");
        }
        assert!(*t.dones.last().unwrap());
    }

    #[test]
    fn max_steps_bounds_non_terminating_rollouts() {
        let cfg = TrainerConfig {
            max_steps_per_episode: 5,
            ..Default::default()
        };
        let trainer = Trainer::new(cfg);
        let mut env = ChainEnv::new(4, 1_000_000);
        let mut algo = Reinforce::new(
            CategoricalPolicy::new(4, &[8], 2, 0),
            ReinforceConfig::default(),
        );
        let t = trainer.rollout(&mut env, &mut algo, 2);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn history_helpers() {
        let mut h = TrainingHistory::default();
        assert_eq!(h.final_mean_return(5), 0.0);
        for (i, r) in [1.0, 2.0, 3.0, 4.0].iter().enumerate() {
            h.iterations.push(EpisodeStats {
                iteration: i,
                mean_return: *r,
                min_return: *r,
                max_return: *r,
                mean_length: 1.0,
                update: UpdateStats {
                    policy_loss: 0.0,
                    value_loss: 0.0,
                    entropy: 0.0,
                    grad_norm: 0.0,
                    steps: 1,
                },
            });
        }
        assert_eq!(h.best_mean_return(), 4.0);
        assert!((h.final_mean_return(2) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn training_is_reproducible_for_a_fixed_seed() {
        let run = || {
            let mut env = ChainEnv::new(5, 6);
            let cfg = TrainerConfig {
                episodes_per_iteration: 4,
                iterations: 5,
                seed: 11,
                ..Default::default()
            };
            let algo = Reinforce::new(
                CategoricalPolicy::new(5, &[8], 2, 1),
                ReinforceConfig::default(),
            );
            Trainer::new(cfg).train(&mut env, algo)
        };
        let a = run();
        let b = run();
        let ra: Vec<f64> = a.iterations.iter().map(|s| s.mean_return).collect();
        let rb: Vec<f64> = b.iterations.iter().map(|s| s.mean_return).collect();
        assert_eq!(ra, rb);
    }
}
