//! The training loop: roll out episodes, update the learner, record history.

use crate::algorithm::{Algorithm, UpdateStats};
use crate::buffer::Trajectory;
use crate::env::Environment;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Trainer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Episodes collected per update.
    pub episodes_per_iteration: usize,
    /// Number of update iterations.
    pub iterations: usize,
    /// Maximum steps per episode (guards against non-terminating
    /// environments).
    pub max_steps_per_episode: usize,
    /// Base seed: episode `e` of iteration `i` uses
    /// `seed + i * episodes_per_iteration + e` so every rollout is
    /// reproducible and distinct.
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            episodes_per_iteration: 8,
            iterations: 100,
            max_steps_per_episode: 10_000,
            seed: 0,
        }
    }
}

/// Aggregate statistics of one training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpisodeStats {
    /// Iteration index.
    pub iteration: usize,
    /// Mean undiscounted episode return.
    pub mean_return: f64,
    /// Minimum episode return in the batch.
    pub min_return: f64,
    /// Maximum episode return in the batch.
    pub max_return: f64,
    /// Mean episode length.
    pub mean_length: f64,
    /// Learner diagnostics for the update that followed.
    pub update: UpdateStats,
}

/// The per-iteration history of a training run (the data behind the
/// training-convergence figure).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainingHistory {
    /// One entry per iteration, in order.
    pub iterations: Vec<EpisodeStats>,
}

impl TrainingHistory {
    /// Mean return of the last `k` iterations (or fewer if the run was
    /// shorter).
    pub fn final_mean_return(&self, k: usize) -> f64 {
        if self.iterations.is_empty() {
            return 0.0;
        }
        let tail: Vec<f64> = self
            .iterations
            .iter()
            .rev()
            .take(k.max(1))
            .map(|s| s.mean_return)
            .collect();
        tail.iter().sum::<f64>() / tail.len() as f64
    }

    /// Best iteration mean return seen.
    pub fn best_mean_return(&self) -> f64 {
        self.iterations
            .iter()
            .map(|s| s.mean_return)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Rolls out episodes with the learner's policy and feeds them back for
/// updates.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainerConfig,
}

impl Trainer {
    /// Create a trainer.
    pub fn new(config: TrainerConfig) -> Self {
        Trainer { config }
    }

    /// The configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Roll out one episode with the current policy (stochastic actions) and
    /// record it as a trajectory.
    pub fn rollout<E: Environment + ?Sized, A: Algorithm + ?Sized>(
        &self,
        env: &mut E,
        algo: &A,
        seed: u64,
    ) -> Trajectory {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trajectory = Trajectory::new();
        let mut step = env.reset(seed);
        for _ in 0..self.config.max_steps_per_episode {
            let (action, log_prob, _) =
                algo.policy()
                    .sample(&step.observation, &step.action_mask, &mut rng);
            let value = algo.value_estimate(&step.observation);
            let transition = env.step(action);
            trajectory.push(
                step.observation.clone(),
                step.action_mask.clone(),
                action,
                transition.reward,
                log_prob,
                value,
                transition.done,
            );
            if transition.done {
                break;
            }
            step = transition.next;
        }
        trajectory
    }

    /// Run a full training loop and return the learner together with its
    /// history.
    pub fn train<E: Environment + ?Sized, A: Algorithm>(
        &mut self,
        env: &mut E,
        mut algo: A,
    ) -> TrainingHistory {
        self.train_in_place(env, &mut algo)
    }

    /// Like [`Self::train`] but keeps ownership of the learner with the
    /// caller (used when the caller wants the trained policy afterwards).
    pub fn train_in_place<E: Environment + ?Sized, A: Algorithm + ?Sized>(
        &mut self,
        env: &mut E,
        algo: &mut A,
    ) -> TrainingHistory {
        let mut history = TrainingHistory::default();
        for iteration in 0..self.config.iterations {
            let mut trajectories = Vec::with_capacity(self.config.episodes_per_iteration);
            for e in 0..self.config.episodes_per_iteration {
                let seed =
                    self.config.seed + (iteration * self.config.episodes_per_iteration + e) as u64;
                trajectories.push(self.rollout(env, algo, seed));
            }
            let returns: Vec<f64> = trajectories.iter().map(|t| t.total_reward()).collect();
            let lengths: Vec<f64> = trajectories.iter().map(|t| t.len() as f64).collect();
            let update = algo.update(&trajectories);
            history.iterations.push(EpisodeStats {
                iteration,
                mean_return: mean(&returns),
                min_return: returns.iter().cloned().fold(f64::INFINITY, f64::min),
                max_return: returns.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                mean_length: mean(&lengths),
                update,
            });
        }
        history
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{Reinforce, ReinforceConfig};
    use crate::env::test_envs::{ChainEnv, MaskedEnv};
    use crate::policy::CategoricalPolicy;

    #[test]
    fn rollout_respects_masks_and_episode_length() {
        let trainer = Trainer::new(TrainerConfig::default());
        let mut env = MaskedEnv { steps: 0 };
        let algo = Reinforce::new(
            CategoricalPolicy::new(2, &[8], 3, 0),
            ReinforceConfig::default(),
        );
        let t = trainer.rollout(&mut env, &algo, 1);
        assert_eq!(t.len(), 6);
        for (mask, action) in t.masks.iter().zip(t.actions.iter()) {
            assert!(mask[*action], "policy acted outside the mask");
        }
        assert!(*t.dones.last().unwrap());
    }

    #[test]
    fn max_steps_bounds_non_terminating_rollouts() {
        let cfg = TrainerConfig {
            max_steps_per_episode: 5,
            ..Default::default()
        };
        let trainer = Trainer::new(cfg);
        let mut env = ChainEnv::new(4, 1_000_000);
        let algo = Reinforce::new(
            CategoricalPolicy::new(4, &[8], 2, 0),
            ReinforceConfig::default(),
        );
        let t = trainer.rollout(&mut env, &algo, 2);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn history_helpers() {
        let mut h = TrainingHistory::default();
        assert_eq!(h.final_mean_return(5), 0.0);
        for (i, r) in [1.0, 2.0, 3.0, 4.0].iter().enumerate() {
            h.iterations.push(EpisodeStats {
                iteration: i,
                mean_return: *r,
                min_return: *r,
                max_return: *r,
                mean_length: 1.0,
                update: UpdateStats {
                    policy_loss: 0.0,
                    value_loss: 0.0,
                    entropy: 0.0,
                    grad_norm: 0.0,
                    steps: 1,
                },
            });
        }
        assert_eq!(h.best_mean_return(), 4.0);
        assert!((h.final_mean_return(2) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn training_is_reproducible_for_a_fixed_seed() {
        let run = || {
            let mut env = ChainEnv::new(5, 6);
            let cfg = TrainerConfig {
                episodes_per_iteration: 4,
                iterations: 5,
                seed: 11,
                ..Default::default()
            };
            let algo = Reinforce::new(
                CategoricalPolicy::new(5, &[8], 2, 1),
                ReinforceConfig::default(),
            );
            Trainer::new(cfg).train(&mut env, algo)
        };
        let a = run();
        let b = run();
        let ra: Vec<f64> = a.iterations.iter().map(|s| s.mean_return).collect();
        let rb: Vec<f64> = b.iterations.iter().map(|s| s.mean_return).collect();
        assert_eq!(ra, rb);
    }
}
