//! Masked categorical policy over a discrete action space.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use tcrm_nn::loss::entropy;
use tcrm_nn::{masked_softmax, Activation, Matrix, Mlp, MlpConfig};

/// A stochastic policy π(a | s) parameterised by an MLP emitting one logit per
/// action. Infeasible actions (mask = false) receive probability zero.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CategoricalPolicy {
    net: Mlp,
}

impl CategoricalPolicy {
    /// Create a policy network: `obs_dim → hidden… → action_count` with tanh
    /// hidden activations (the standard choice for policy-gradient MLPs).
    pub fn new(obs_dim: usize, hidden: &[usize], action_count: usize, seed: u64) -> Self {
        let cfg = MlpConfig::new(obs_dim, hidden, action_count, Activation::Tanh);
        CategoricalPolicy {
            net: Mlp::new(&cfg, seed),
        }
    }

    /// Wrap an existing network (used when restoring checkpoints).
    pub fn from_network(net: Mlp) -> Self {
        CategoricalPolicy { net }
    }

    /// The underlying network.
    pub fn network(&self) -> &Mlp {
        &self.net
    }

    /// Mutable access to the underlying network (used by algorithms and
    /// optimisers).
    pub fn network_mut(&mut self) -> &mut Mlp {
        &mut self.net
    }

    /// Number of actions.
    pub fn action_count(&self) -> usize {
        self.net.config().output_dim
    }

    /// Observation dimensionality.
    pub fn observation_dim(&self) -> usize {
        self.net.config().input_dim
    }

    /// Raw logits for one observation.
    pub fn logits(&self, obs: &[f32]) -> Vec<f32> {
        self.net.forward_vec(obs)
    }

    /// Masked action probabilities for one observation.
    pub fn probabilities(&self, obs: &[f32], mask: &[bool]) -> Vec<f32> {
        masked_softmax(&self.logits(obs), mask)
    }

    /// Batched logits through a caller-owned workspace: one forward pass for
    /// a whole `batch × obs_dim` matrix instead of one per row,
    /// allocation-free after warm-up. The returned `batch × action_count`
    /// matrix is borrowed from `ws`.
    pub fn logits_batch_ws<'w>(
        &self,
        observations: &Matrix,
        ws: &'w mut tcrm_nn::Workspace,
    ) -> &'w Matrix {
        self.net.forward_ws(observations, ws)
    }

    /// Sample an action from the masked distribution. Returns
    /// `(action, log_prob, probabilities)`.
    pub fn sample(&self, obs: &[f32], mask: &[bool], rng: &mut StdRng) -> (usize, f32, Vec<f32>) {
        let probs = self.probabilities(obs, mask);
        let (action, log_prob) = sample_categorical(&probs, rng);
        (action, log_prob, probs)
    }

    /// Greedy (argmax) action under the mask.
    pub fn greedy(&self, obs: &[f32], mask: &[bool]) -> usize {
        Self::argmax(&self.probabilities(obs, mask))
    }

    /// Entropy of the masked distribution at an observation.
    pub fn entropy(&self, obs: &[f32], mask: &[bool]) -> f32 {
        entropy(&self.probabilities(obs, mask))
    }

    /// Training-mode forward pass over a batch of observations, returning the
    /// logits matrix (`batch × action_count`, borrowed from the network's
    /// internal workspace). Gradients flow back through [`Mlp::backward`] on
    /// the wrapped network. Allocation-free after warm-up.
    pub fn forward_train(&mut self, batch_obs: &Matrix) -> &Matrix {
        self.net.forward_train(batch_obs)
    }

    /// Serialise the policy weights.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Restore a policy from JSON.
    pub fn from_json(json: &str) -> serde_json::Result<Self> {
        serde_json::from_str(json)
    }

    fn argmax(values: &[f32]) -> usize {
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in values.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }
}

/// Sample from a (masked) probability distribution, consuming exactly one
/// `f32` from the RNG stream. Returns `(action, log_prob)`.
///
/// This is the sampling core of [`CategoricalPolicy::sample`], exposed so the
/// batched rollout collector can sample from probability rows it computed
/// itself (via a single batched forward) while drawing from per-environment
/// RNGs in **exactly** the same way as the per-step path — keeping a
/// one-environment vectorized rollout seed-for-seed identical to the legacy
/// collector.
pub fn sample_categorical(probs: &[f32], rng: &mut StdRng) -> (usize, f32) {
    let u: f32 = rng.gen();
    let mut acc = 0.0;
    let mut action = probs.len() - 1;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if u <= acc && p > 0.0 {
            action = i;
            break;
        }
    }
    // Guard: if rounding pushed us onto a zero-probability action, pick the
    // most likely feasible one instead.
    if probs[action] <= 0.0 {
        action = CategoricalPolicy::argmax(probs);
    }
    let log_prob = probs[action].max(1e-12).ln();
    (action, log_prob)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn policy() -> CategoricalPolicy {
        CategoricalPolicy::new(4, &[16], 5, 0)
    }

    #[test]
    fn shapes_and_normalisation() {
        let p = policy();
        assert_eq!(p.action_count(), 5);
        assert_eq!(p.observation_dim(), 4);
        let obs = [0.1, -0.2, 0.3, 0.4];
        let probs = p.probabilities(&obs, &[true; 5]);
        assert_eq!(probs.len(), 5);
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn sampling_never_selects_masked_actions() {
        let p = policy();
        let mut rng = StdRng::seed_from_u64(1);
        let obs = [0.5, 0.5, -0.5, 0.0];
        let mask = [false, true, false, true, false];
        for _ in 0..500 {
            let (a, log_prob, probs) = p.sample(&obs, &mask, &mut rng);
            assert!(mask[a], "sampled masked action {a}");
            assert!(log_prob <= 0.0);
            assert_eq!(probs[0], 0.0);
        }
        let greedy = p.greedy(&obs, &mask);
        assert!(mask[greedy]);
    }

    #[test]
    fn single_feasible_action_is_forced() {
        let p = policy();
        let mut rng = StdRng::seed_from_u64(2);
        let mask = [false, false, true, false, false];
        let (a, log_prob, _) = p.sample(&[0.0; 4], &mask, &mut rng);
        assert_eq!(a, 2);
        assert!((log_prob - 0.0).abs() < 1e-5);
        assert!((p.entropy(&[0.0; 4], &mask)).abs() < 1e-5);
    }

    #[test]
    fn entropy_decreases_with_restrictive_masks() {
        let p = policy();
        let obs = [0.1, 0.1, 0.1, 0.1];
        let all = p.entropy(&obs, &[true; 5]);
        let some = p.entropy(&obs, &[true, true, false, false, false]);
        assert!(all > some);
    }

    #[test]
    fn checkpoint_roundtrip() {
        let p = policy();
        let json = p.to_json().unwrap();
        let back = CategoricalPolicy::from_json(&json).unwrap();
        let obs = [0.3, 0.2, 0.1, 0.0];
        assert_eq!(p.logits(&obs), back.logits(&obs));
    }

    #[test]
    fn free_sampler_matches_policy_sampler_exactly() {
        let p = policy();
        let obs = [0.2, -0.1, 0.4, 0.3];
        let mask = [true, false, true, true, false];
        let probs = p.probabilities(&obs, &mask);
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let (a1, lp1, _) = p.sample(&obs, &mask, &mut r1);
            let (a2, lp2) = sample_categorical(&probs, &mut r2);
            assert_eq!(a1, a2);
            assert_eq!(lp1, lp2);
        }
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let p = policy();
        let obs = [0.2, -0.1, 0.4, 0.3];
        let mask = [true; 5];
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..20).map(|_| p.sample(&obs, &mask, &mut rng).0).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..20).map(|_| p.sample(&obs, &mask, &mut rng).0).collect()
        };
        assert_eq!(a, b);
    }
}
