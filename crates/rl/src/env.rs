//! The environment interface the scheduler environment implements.

/// An observation plus the mask of currently feasible actions.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// Flat observation vector (length = `Environment::observation_dim`).
    pub observation: Vec<f32>,
    /// `true` for actions that are feasible at this decision point (length =
    /// `Environment::action_count`). At least one entry should be `true`.
    pub action_mask: Vec<bool>,
}

impl Step {
    /// Convenience constructor.
    pub fn new(observation: Vec<f32>, action_mask: Vec<bool>) -> Self {
        Step {
            observation,
            action_mask,
        }
    }

    /// Number of feasible actions.
    pub fn feasible_actions(&self) -> usize {
        self.action_mask.iter().filter(|&&m| m).count()
    }
}

/// Result of taking one action.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Scalar reward for the transition.
    pub reward: f64,
    /// True when the episode has ended (the `next` step is then terminal and
    /// should not be acted on).
    pub done: bool,
    /// The next observation and mask.
    pub next: Step,
}

/// A sequential decision problem with a discrete, maskable action space.
pub trait Environment {
    /// Dimensionality of the observation vector.
    fn observation_dim(&self) -> usize;

    /// Total number of discrete actions (before masking).
    fn action_count(&self) -> usize;

    /// Start a new episode, seeded for reproducibility, and return the initial
    /// observation.
    fn reset(&mut self, seed: u64) -> Step;

    /// Apply one action and return the transition.
    fn step(&mut self, action: usize) -> Transition;

    /// [`Self::reset`] into caller-owned buffers: the initial observation is
    /// written to `observation` (length [`Self::observation_dim`]) and the
    /// feasibility mask to `mask` (length [`Self::action_count`]).
    ///
    /// The default forwards to [`Self::reset`] and copies; environments on
    /// the batched-training hot path (the lockstep [`crate::VecEnv`] pool
    /// calls this once per episode and [`Self::step_into`] once per step)
    /// should override both with a non-allocating encode.
    fn reset_into(&mut self, seed: u64, observation: &mut [f32], mask: &mut [bool]) {
        let step = self.reset(seed);
        observation.copy_from_slice(&step.observation);
        mask.copy_from_slice(&step.action_mask);
    }

    /// [`Self::step`] into caller-owned buffers: the next observation and
    /// mask overwrite `observation` / `mask` and `(reward, done)` is
    /// returned. Same override guidance as [`Self::reset_into`].
    fn step_into(
        &mut self,
        action: usize,
        observation: &mut [f32],
        mask: &mut [bool],
    ) -> (f64, bool) {
        let t = self.step(action);
        observation.copy_from_slice(&t.next.observation);
        mask.copy_from_slice(&t.next.action_mask);
        (t.reward, t.done)
    }
}

#[cfg(test)]
pub(crate) mod test_envs {
    use super::*;

    /// A tiny deterministic chain MDP used by the algorithm tests:
    /// states 0..n, action 0 moves right (+1 reward at the end), action 1
    /// stays (0 reward, wastes a step). Episodes last exactly `horizon` steps.
    /// The optimal return equals `horizon` when always moving right is
    /// rewarded, so learning progress is easy to verify.
    pub struct ChainEnv {
        pub position: usize,
        pub steps: usize,
        pub horizon: usize,
        pub length: usize,
    }

    impl ChainEnv {
        pub fn new(length: usize, horizon: usize) -> Self {
            ChainEnv {
                position: 0,
                steps: 0,
                horizon,
                length,
            }
        }

        fn observe(&self) -> Step {
            let mut obs = vec![0.0; self.length];
            obs[self.position.min(self.length - 1)] = 1.0;
            Step::new(obs, vec![true, true])
        }
    }

    impl Environment for ChainEnv {
        fn observation_dim(&self) -> usize {
            self.length
        }
        fn action_count(&self) -> usize {
            2
        }
        fn reset(&mut self, _seed: u64) -> Step {
            self.position = 0;
            self.steps = 0;
            self.observe()
        }
        fn step(&mut self, action: usize) -> Transition {
            self.steps += 1;
            let mut reward = 0.0;
            if action == 0 {
                self.position = (self.position + 1).min(self.length - 1);
                reward = 1.0;
            }
            let done = self.steps >= self.horizon;
            Transition {
                reward,
                done,
                next: self.observe(),
            }
        }
    }

    /// An environment where the feasible action set alternates, to test that
    /// policies never select masked actions.
    pub struct MaskedEnv {
        pub steps: usize,
    }

    impl Environment for MaskedEnv {
        fn observation_dim(&self) -> usize {
            2
        }
        fn action_count(&self) -> usize {
            3
        }
        fn reset(&mut self, _seed: u64) -> Step {
            self.steps = 0;
            Step::new(vec![1.0, 0.0], vec![true, false, true])
        }
        fn step(&mut self, action: usize) -> Transition {
            self.steps += 1;
            let mask = if self.steps.is_multiple_of(2) {
                vec![true, false, true]
            } else {
                vec![false, true, false]
            };
            Transition {
                reward: if action == 1 { 1.0 } else { 0.1 },
                done: self.steps >= 6,
                next: Step::new(vec![0.0, 1.0], mask),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_envs::ChainEnv;
    use super::*;

    #[test]
    fn step_counts_feasible_actions() {
        let s = Step::new(vec![0.0], vec![true, false, true, false]);
        assert_eq!(s.feasible_actions(), 2);
    }

    #[test]
    fn chain_env_rewards_moving_right() {
        let mut env = ChainEnv::new(5, 3);
        let s = env.reset(0);
        assert_eq!(s.observation.len(), 5);
        assert_eq!(s.observation[0], 1.0);
        let t = env.step(0);
        assert_eq!(t.reward, 1.0);
        assert!(!t.done);
        let t = env.step(1);
        assert_eq!(t.reward, 0.0);
        let t = env.step(0);
        assert!(t.done);
    }
}
