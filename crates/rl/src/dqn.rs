//! Deep Q-learning with experience replay and a target network.
//!
//! The headline agent of the paper family is a policy-gradient learner, but
//! value-based control (DQN) is the standard ablation point in the
//! DeepRM/Decima lineage, so the RL substrate ships one: a masked
//! [`QNetwork`], a ring [`ReplayBuffer`], ε-greedy exploration that respects
//! the environment's action mask, an optional double-DQN target, and a small
//! episode loop ([`DqnAgent::run_episode`]) mirroring what
//! [`crate::Trainer`] does for the policy-gradient learners.

use crate::env::{Environment, Step};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use tcrm_nn::{Activation, Adam, Matrix, Mlp, MlpConfig, Optimizer};

/// Hyper-parameters of the [`DqnAgent`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DqnConfig {
    /// Discount factor.
    pub gamma: f64,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Replay-buffer capacity (transitions).
    pub buffer_capacity: usize,
    /// Minibatch size per gradient step.
    pub batch_size: usize,
    /// Number of stored transitions before learning starts.
    pub warmup: usize,
    /// Environment steps between gradient steps.
    pub train_interval: usize,
    /// Gradient steps between target-network synchronisations.
    pub target_sync_interval: usize,
    /// Initial exploration rate.
    pub epsilon_start: f64,
    /// Final exploration rate.
    pub epsilon_end: f64,
    /// Environment steps over which ε decays linearly from start to end.
    pub epsilon_decay_steps: usize,
    /// Use the double-DQN target (action chosen by the online network,
    /// evaluated by the target network).
    pub double_dqn: bool,
    /// Global gradient-norm clip.
    pub grad_clip: f32,
}

impl Default for DqnConfig {
    fn default() -> Self {
        DqnConfig {
            gamma: 0.99,
            learning_rate: 1e-3,
            buffer_capacity: 20_000,
            batch_size: 64,
            warmup: 256,
            train_interval: 1,
            target_sync_interval: 200,
            epsilon_start: 1.0,
            epsilon_end: 0.05,
            epsilon_decay_steps: 5_000,
            double_dqn: true,
            grad_clip: 5.0,
        }
    }
}

/// One stored environment transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayTransition {
    /// Observation the action was taken in.
    pub observation: Vec<f32>,
    /// Action index.
    pub action: usize,
    /// Immediate reward.
    pub reward: f64,
    /// Next observation.
    pub next_observation: Vec<f32>,
    /// Feasibility mask at the next observation (bounds the bootstrap max).
    pub next_mask: Vec<bool>,
    /// True when the transition ended the episode (no bootstrap).
    pub done: bool,
}

/// A bounded FIFO replay buffer with uniform sampling.
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    capacity: usize,
    storage: VecDeque<ReplayTransition>,
}

impl ReplayBuffer {
    /// Create a buffer holding at most `capacity` transitions.
    pub fn new(capacity: usize) -> Self {
        ReplayBuffer {
            capacity: capacity.max(1),
            storage: VecDeque::with_capacity(capacity.clamp(1, 65_536)),
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.storage.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.storage.is_empty()
    }

    /// Maximum number of transitions retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append a transition, evicting the oldest when full.
    pub fn push(&mut self, transition: ReplayTransition) {
        if self.storage.len() == self.capacity {
            self.storage.pop_front();
        }
        self.storage.push_back(transition);
    }

    /// Sample `count` transitions uniformly with replacement (cloned).
    pub fn sample(&self, count: usize, rng: &mut StdRng) -> Vec<ReplayTransition> {
        (0..count)
            .filter_map(|_| {
                if self.storage.is_empty() {
                    None
                } else {
                    let idx = rng.gen_range(0..self.storage.len());
                    Some(self.storage[idx].clone())
                }
            })
            .collect()
    }

    /// Sample `count` transition indices uniformly with replacement into a
    /// reusable buffer — the allocation-free variant of [`Self::sample`]
    /// (indices instead of cloned transitions).
    pub fn sample_indices_into(&self, count: usize, rng: &mut StdRng, out: &mut Vec<usize>) {
        out.clear();
        if self.storage.is_empty() {
            return;
        }
        out.extend((0..count).map(|_| rng.gen_range(0..self.storage.len())));
    }

    /// Borrow one stored transition by index.
    pub fn get(&self, index: usize) -> &ReplayTransition {
        &self.storage[index]
    }
}

/// A Q-value network `obs_dim → hidden… → action_count`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QNetwork {
    net: Mlp,
}

impl QNetwork {
    /// Build a Q-network with ReLU hidden layers.
    pub fn new(obs_dim: usize, hidden: &[usize], action_count: usize, seed: u64) -> Self {
        let cfg = MlpConfig::new(obs_dim, hidden, action_count, Activation::Relu);
        QNetwork {
            net: Mlp::new(&cfg, seed),
        }
    }

    /// The underlying network.
    pub fn network(&self) -> &Mlp {
        &self.net
    }

    /// Mutable access for the optimiser.
    pub fn network_mut(&mut self) -> &mut Mlp {
        &mut self.net
    }

    /// Q-values of every action for one observation.
    pub fn q_values(&self, obs: &[f32]) -> Vec<f32> {
        self.net.forward_vec(obs)
    }

    /// Batched Q-values: one forward pass over a `batch × obs_dim` matrix,
    /// producing `batch × action_count` Q-values borrowed from the caller's
    /// workspace. One batched pass replaces `batch` single-row forwards and
    /// is allocation-free after warm-up.
    pub fn q_values_batch_ws<'w>(
        &self,
        observations: &Matrix,
        ws: &'w mut tcrm_nn::Workspace,
    ) -> &'w Matrix {
        self.net.forward_ws(observations, ws)
    }

    /// The feasible action with the highest Q-value. Falls back to the first
    /// feasible action when all Q-values are non-finite, and to action 0 when
    /// the mask is empty (the environment contract forbids that, but a
    /// deterministic fallback keeps the agent total).
    pub fn greedy_masked(&self, obs: &[f32], mask: &[bool]) -> usize {
        let q = self.q_values(obs);
        best_masked_action(&q, mask).unwrap_or(0)
    }

    /// [`Self::greedy_masked`] through caller-owned scratch: the observation
    /// row and Q-values live in reused buffers, so selection is
    /// allocation-free after warm-up. Identical selection semantics
    /// (including the fallback chain).
    pub fn greedy_masked_ws(
        &self,
        obs: &[f32],
        mask: &[bool],
        obs_row: &mut Matrix,
        ws: &mut tcrm_nn::Workspace,
    ) -> usize {
        obs_row.resize(1, obs.len());
        obs_row.data_mut().copy_from_slice(obs);
        let q = self.net.forward_ws(obs_row, ws);
        best_masked_action(q.row(0), mask).unwrap_or(0)
    }

    /// Highest Q-value among feasible actions, or `None` when nothing is
    /// feasible.
    pub fn max_masked(&self, obs: &[f32], mask: &[bool]) -> Option<f32> {
        let q = self.q_values(obs);
        best_masked_action(&q, mask).map(|a| q[a])
    }
}

fn best_masked_action(q: &[f32], mask: &[bool]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &value) in q.iter().enumerate() {
        if !mask.get(i).copied().unwrap_or(false) || !value.is_finite() {
            continue;
        }
        match best {
            Some((_, b)) if b >= value => {}
            _ => best = Some((i, value)),
        }
    }
    best.map(|(i, _)| i)
        .or_else(|| mask.iter().position(|&m| m))
}

/// Diagnostics of one learning step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DqnUpdateStats {
    /// Mean squared TD error over the minibatch.
    pub td_loss: f64,
    /// Mean absolute TD error.
    pub mean_abs_td: f64,
    /// Exploration rate at the time of the update.
    pub epsilon: f64,
    /// Total gradient steps taken so far.
    pub updates: u64,
}

/// A deep Q-learning agent with experience replay and a target network.
#[derive(Debug)]
pub struct DqnAgent {
    online: QNetwork,
    target: QNetwork,
    optimizer: Adam,
    buffer: ReplayBuffer,
    config: DqnConfig,
    rng: StdRng,
    env_steps: u64,
    updates: u64,
    action_count: usize,
    scratch: TrainScratch,
}

/// Persistent minibatch buffers: one warm-up gradient step sizes them, every
/// later step reuses the allocations (batched forwards included).
#[derive(Debug, Default)]
struct TrainScratch {
    /// Sampled replay indices.
    indices: Vec<usize>,
    /// Stacked observations of the minibatch (`n × obs_dim`).
    obs: Matrix,
    /// Stacked next-observations of the minibatch (`n × obs_dim`).
    next_obs: Matrix,
    /// Bootstrap targets.
    targets: Vec<f64>,
    /// TD-error gradient w.r.t. the Q outputs (`n × action_count`).
    grad: Matrix,
    /// Workspace for the batched online-network bootstrap forward.
    online_ws: tcrm_nn::Workspace,
    /// Workspace for the batched target-network bootstrap forward.
    target_ws: tcrm_nn::Workspace,
    /// Feasible-action index buffer for ε-greedy exploration.
    feasible: Vec<usize>,
    /// Single-observation row buffer for greedy action selection.
    obs_row: Matrix,
}

impl DqnAgent {
    /// Create an agent for `obs_dim`-dimensional observations and
    /// `action_count` discrete actions.
    pub fn new(
        obs_dim: usize,
        action_count: usize,
        hidden: &[usize],
        seed: u64,
        config: DqnConfig,
    ) -> Self {
        let online = QNetwork::new(obs_dim, hidden, action_count, seed);
        let target = online.clone();
        let optimizer = Adam::new(online.network().num_parameters(), config.learning_rate);
        DqnAgent {
            online,
            target,
            optimizer,
            buffer: ReplayBuffer::new(config.buffer_capacity),
            config,
            rng: StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
            env_steps: 0,
            updates: 0,
            action_count,
            scratch: TrainScratch::default(),
        }
    }

    /// The online Q-network.
    pub fn q_network(&self) -> &QNetwork {
        &self.online
    }

    /// The configuration the agent was built with.
    pub fn config(&self) -> &DqnConfig {
        &self.config
    }

    /// Number of stored transitions.
    pub fn replay_len(&self) -> usize {
        self.buffer.len()
    }

    /// Mutable access to the replay buffer (offline filling, tests).
    pub fn replay_mut(&mut self) -> &mut ReplayBuffer {
        &mut self.buffer
    }

    /// Gradient steps taken so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Current exploration rate (linear decay over `epsilon_decay_steps`).
    pub fn epsilon(&self) -> f64 {
        let c = &self.config;
        if c.epsilon_decay_steps == 0 {
            return c.epsilon_end;
        }
        let frac = (self.env_steps as f64 / c.epsilon_decay_steps as f64).min(1.0);
        c.epsilon_start + (c.epsilon_end - c.epsilon_start) * frac
    }

    /// ε-greedy action selection respecting the feasibility mask.
    /// Allocation-free after warm-up (reused index buffer, workspace-backed
    /// greedy forward).
    pub fn select_action(&mut self, step: &Step) -> usize {
        let explore = self.rng.gen::<f64>() < self.epsilon();
        if explore {
            let feasible = &mut self.scratch.feasible;
            feasible.clear();
            feasible.extend(step.action_mask.iter().enumerate().filter_map(|(i, &m)| {
                if m {
                    Some(i)
                } else {
                    None
                }
            }));
            if feasible.is_empty() {
                return 0;
            }
            feasible[self.rng.gen_range(0..feasible.len())]
        } else {
            let DqnAgent {
                online, scratch, ..
            } = self;
            online.greedy_masked_ws(
                &step.observation,
                &step.action_mask,
                &mut scratch.obs_row,
                &mut scratch.online_ws,
            )
        }
    }

    /// Greedy (exploitation-only) action.
    pub fn greedy_action(&self, step: &Step) -> usize {
        self.online
            .greedy_masked(&step.observation, &step.action_mask)
    }

    /// Store a transition and, when due, take a gradient step. Returns the
    /// update statistics when a gradient step was taken.
    pub fn observe(
        &mut self,
        observation: Vec<f32>,
        action: usize,
        reward: f64,
        next: &Step,
        done: bool,
    ) -> Option<DqnUpdateStats> {
        self.env_steps += 1;
        self.buffer.push(ReplayTransition {
            observation,
            action,
            reward,
            next_observation: next.observation.clone(),
            next_mask: next.action_mask.clone(),
            done,
        });
        let due = self.config.train_interval.max(1) as u64;
        if self.buffer.len() >= self.config.warmup.max(self.config.batch_size)
            && self.env_steps.is_multiple_of(due)
        {
            Some(self.train_step())
        } else {
            None
        }
    }

    /// One gradient step on a uniformly sampled minibatch.
    ///
    /// The bootstrap pass is **batched**: the minibatch's next-observations
    /// are stacked into one matrix and scored with a single forward per
    /// network (online and target) instead of one forward per transition.
    /// Every buffer involved lives in the agent's persistent scratch, so a
    /// steady-state gradient step performs no heap allocation.
    pub fn train_step(&mut self) -> DqnUpdateStats {
        let DqnAgent {
            online,
            target,
            optimizer,
            buffer,
            config,
            rng,
            scratch,
            action_count,
            ..
        } = self;
        buffer.sample_indices_into(config.batch_size, rng, &mut scratch.indices);
        let n = scratch.indices.len().max(1);
        let obs_dim = scratch
            .indices
            .first()
            .map(|&i| buffer.get(i).observation.len())
            .unwrap_or(1)
            .max(1);

        // Stack the minibatch into the persistent matrices.
        scratch.obs.resize(n, obs_dim);
        scratch.next_obs.resize(n, obs_dim);
        for (r, &idx) in scratch.indices.iter().enumerate() {
            let t = buffer.get(idx);
            scratch.obs.row_mut(r).copy_from_slice(&t.observation);
            scratch
                .next_obs
                .row_mut(r)
                .copy_from_slice(&t.next_observation);
        }

        // Bootstrap targets from one batched forward per network
        // (optionally double DQN: online picks, target rates).
        scratch.targets.clear();
        {
            let target_next = target
                .network()
                .forward_ws(&scratch.next_obs, &mut scratch.target_ws);
            let online_next = if config.double_dqn {
                Some(
                    online
                        .network()
                        .forward_ws(&scratch.next_obs, &mut scratch.online_ws),
                )
            } else {
                None
            };
            for (r, &idx) in scratch.indices.iter().enumerate() {
                let t = buffer.get(idx);
                let bootstrap = if t.done {
                    0.0
                } else if let Some(online_next) = &online_next {
                    match best_masked_action(online_next.row(r), &t.next_mask) {
                        Some(a) => target_next.get(r, a) as f64,
                        None => 0.0,
                    }
                } else {
                    best_masked_action(target_next.row(r), &t.next_mask)
                        .map(|a| target_next.get(r, a) as f64)
                        .unwrap_or(0.0)
                };
                scratch.targets.push(t.reward + config.gamma * bootstrap);
            }
        }

        // Forward pass and TD-error gradient only on the taken actions.
        let preds = online.network_mut().forward_train(&scratch.obs);
        scratch.grad.resize(n, *action_count);
        scratch.grad.fill(0.0);
        let mut loss = 0.0;
        let mut abs_td = 0.0;
        for (r, (&idx, &target_q)) in scratch
            .indices
            .iter()
            .zip(scratch.targets.iter())
            .enumerate()
        {
            let action = buffer.get(idx).action;
            let q_sa = preds.get(r, action) as f64;
            let diff = q_sa - target_q;
            loss += diff * diff;
            abs_td += diff.abs();
            scratch.grad.set(r, action, (2.0 * diff / n as f64) as f32);
        }
        online.network_mut().zero_grad();
        online.network_mut().backward(&scratch.grad);
        online.network_mut().clip_grad_norm(config.grad_clip);
        optimizer.step(online.network_mut());

        self.updates += 1;
        if self.config.target_sync_interval > 0
            && self
                .updates
                .is_multiple_of(self.config.target_sync_interval as u64)
        {
            self.sync_target();
        }
        DqnUpdateStats {
            td_loss: loss / n as f64,
            mean_abs_td: abs_td / n as f64,
            epsilon: self.epsilon(),
            updates: self.updates,
        }
    }

    /// Copy the online weights into the target network.
    pub fn sync_target(&mut self) {
        self.target = self.online.clone();
    }

    /// Roll one episode, learning along the way when `learn` is true.
    /// Returns the undiscounted episode return.
    pub fn run_episode<E: Environment>(&mut self, env: &mut E, seed: u64, learn: bool) -> f64 {
        let mut step = env.reset(seed);
        let mut total = 0.0;
        loop {
            let action = if learn {
                self.select_action(&step)
            } else {
                self.greedy_action(&step)
            };
            let transition = env.step(action);
            total += transition.reward;
            if learn {
                self.observe(
                    step.observation.clone(),
                    action,
                    transition.reward,
                    &transition.next,
                    transition.done,
                );
            }
            if transition.done {
                break;
            }
            step = transition.next;
        }
        total
    }

    /// Train for `episodes` episodes and return the per-episode returns.
    pub fn train<E: Environment>(&mut self, env: &mut E, episodes: usize, seed: u64) -> Vec<f64> {
        (0..episodes)
            .map(|i| self.run_episode(env, seed.wrapping_add(i as u64), true))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_envs::{ChainEnv, MaskedEnv};

    fn quick_config() -> DqnConfig {
        DqnConfig {
            buffer_capacity: 2_000,
            batch_size: 32,
            warmup: 64,
            target_sync_interval: 25,
            epsilon_decay_steps: 400,
            ..DqnConfig::default()
        }
    }

    #[test]
    fn replay_buffer_evicts_oldest_when_full() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5usize {
            buf.push(ReplayTransition {
                observation: vec![i as f32],
                action: i,
                reward: i as f64,
                next_observation: vec![0.0],
                next_mask: vec![true],
                done: false,
            });
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.capacity(), 3);
        let mut rng = StdRng::seed_from_u64(0);
        let sampled = buf.sample(20, &mut rng);
        assert_eq!(sampled.len(), 20);
        // Only the last three transitions survive.
        assert!(sampled.iter().all(|t| t.action >= 2));
    }

    #[test]
    fn empty_replay_buffer_samples_nothing() {
        let buf = ReplayBuffer::new(4);
        assert!(buf.is_empty());
        let mut rng = StdRng::seed_from_u64(0);
        assert!(buf.sample(8, &mut rng).is_empty());
    }

    #[test]
    fn q_network_shapes_and_masked_argmax() {
        let q = QNetwork::new(4, &[8], 3, 7);
        let values = q.q_values(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(values.len(), 3);
        // Masked argmax never returns a masked-out action.
        let masked = q.greedy_masked(&[0.1, 0.2, 0.3, 0.4], &[false, true, false]);
        assert_eq!(masked, 1);
        // max_masked agrees with the chosen index.
        let m = q
            .max_masked(&[0.1, 0.2, 0.3, 0.4], &[false, true, false])
            .unwrap();
        assert!((m - values[1]).abs() < 1e-6);
        assert!(q
            .max_masked(&[0.1, 0.2, 0.3, 0.4], &[false, false, false])
            .is_none());
    }

    #[test]
    fn epsilon_decays_linearly_with_env_steps() {
        let mut agent = DqnAgent::new(5, 2, &[8], 1, quick_config());
        let start = agent.epsilon();
        let mut env = ChainEnv::new(5, 20);
        agent.run_episode(&mut env, 0, true);
        let later = agent.epsilon();
        assert!(start > later, "epsilon must decay: {start} -> {later}");
        assert!(later >= agent.config().epsilon_end - 1e-12);
    }

    #[test]
    fn target_sync_copies_online_weights() {
        let mut agent = DqnAgent::new(5, 2, &[8], 3, quick_config());
        let mut env = ChainEnv::new(5, 30);
        // Learn enough that online and target diverge.
        for ep in 0..10 {
            agent.run_episode(&mut env, ep, true);
        }
        let obs = vec![1.0, 0.0, 0.0, 0.0, 0.0];
        let before_online = agent.online.q_values(&obs);
        let before_target = agent.target.q_values(&obs);
        assert!(
            before_online
                .iter()
                .zip(before_target.iter())
                .any(|(a, b)| (a - b).abs() > 1e-6),
            "online and target should have diverged after training"
        );
        agent.sync_target();
        let after_target = agent.target.q_values(&obs);
        for (a, b) in agent.online.q_values(&obs).iter().zip(after_target.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn dqn_improves_on_the_chain_mdp() {
        let mut env = ChainEnv::new(6, 12);
        let mut agent = DqnAgent::new(6, 2, &[32], 11, quick_config());
        // Greedy return before training (epsilon ignored in evaluation).
        let before: f64 = (0..5)
            .map(|s| agent.run_episode(&mut env, s, false))
            .sum::<f64>()
            / 5.0;
        agent.train(&mut env, 120, 100);
        let after: f64 = (0..5)
            .map(|s| agent.run_episode(&mut env, s, false))
            .sum::<f64>()
            / 5.0;
        assert!(
            after >= before,
            "training should not make the greedy policy worse ({before} -> {after})"
        );
        assert!(
            after >= 10.0,
            "trained agent should move right nearly every step ({after}/12)"
        );
        assert!(agent.updates() > 0);
    }

    #[test]
    fn dqn_never_selects_masked_actions() {
        let mut env = MaskedEnv { steps: 0 };
        let mut agent = DqnAgent::new(2, 3, &[8], 5, quick_config());
        for ep in 0..20 {
            let mut step = env.reset(ep);
            loop {
                let action = agent.select_action(&step);
                assert!(
                    step.action_mask[action],
                    "selected masked action {action} with mask {:?}",
                    step.action_mask
                );
                let t = env.step(action);
                agent.observe(step.observation.clone(), action, t.reward, &t.next, t.done);
                if t.done {
                    break;
                }
                step = t.next;
            }
        }
    }

    #[test]
    fn double_and_vanilla_targets_both_learn() {
        for double in [true, false] {
            let cfg = DqnConfig {
                double_dqn: double,
                ..quick_config()
            };
            let mut env = ChainEnv::new(5, 10);
            let mut agent = DqnAgent::new(5, 2, &[16], 21, cfg);
            agent.train(&mut env, 150, 7);
            let ret = agent.run_episode(&mut env, 99, false);
            assert!(
                ret >= 7.0,
                "{} DQN should reach at least 7/10 on the chain, got {ret}",
                if double { "double" } else { "vanilla" }
            );
        }
    }
}
