//! A lockstep pool of environments for vectorized rollouts.
//!
//! [`VecEnv`] owns `N` independent [`Environment`] instances plus one
//! observation / mask buffer per slot. The batched rollout collector drives
//! it in lockstep: stack the active slots' observations into one matrix, run
//! a *single* batched policy forward for all of them, scatter the sampled
//! actions back and step every environment, then reset finished slots in
//! place. All buffers are reused, so a warmed pool performs no heap
//! allocation per step.
//!
//! Stepping is sequential by default: the simulator environments this crate
//! is paired with step in microseconds, far below the dispatch cost of the
//! scoped-thread `rayon` facade. For expensive environments,
//! [`VecEnv::with_parallel_stepping`] opts into stepping the slots through
//! `rayon` (`E: Send`); the lockstep semantics — and therefore the collected
//! rollouts — are identical either way, which `tests` pins.

use crate::env::Environment;
use rayon::prelude::*;
use tcrm_nn::Matrix;

struct EnvSlot<E> {
    env: E,
    /// Current observation (pre-step; refreshed by reset/step).
    obs: Vec<f32>,
    /// Current feasibility mask, in lockstep with `obs`.
    mask: Vec<bool>,
    /// Whether this slot is running an episode.
    active: bool,
    /// Action to apply at the next [`VecEnv::step_active`] call.
    pending_action: usize,
    /// Reward of the last step taken by this slot.
    reward: f64,
    /// Whether the last step terminated the episode.
    done: bool,
}

/// A fixed pool of `N` environments stepped in lockstep.
pub struct VecEnv<E: Environment> {
    slots: Vec<EnvSlot<E>>,
    obs_dim: usize,
    action_count: usize,
    parallel: bool,
}

impl<E: Environment> VecEnv<E> {
    /// Build a pool from `envs` (at least one; all must agree on observation
    /// dimensionality and action count). Every slot starts inactive — call
    /// [`Self::reset_env`] to start an episode on it.
    pub fn new(envs: Vec<E>) -> Self {
        assert!(!envs.is_empty(), "VecEnv needs at least one environment");
        let obs_dim = envs[0].observation_dim();
        let action_count = envs[0].action_count();
        let slots = envs
            .into_iter()
            .map(|env| {
                assert_eq!(env.observation_dim(), obs_dim, "observation_dim mismatch");
                assert_eq!(env.action_count(), action_count, "action_count mismatch");
                EnvSlot {
                    env,
                    obs: vec![0.0; obs_dim],
                    mask: vec![false; action_count],
                    active: false,
                    pending_action: 0,
                    reward: 0.0,
                    done: false,
                }
            })
            .collect();
        VecEnv {
            slots,
            obs_dim,
            action_count,
            parallel: false,
        }
    }

    /// Opt into parallel stepping (honored by [`Self::step_active`] when
    /// `E: Send`). Worth it only when a single environment step is expensive
    /// relative to thread dispatch; rollout results are identical either way.
    pub fn with_parallel_stepping(mut self, enabled: bool) -> Self {
        self.parallel = enabled;
        self
    }

    /// Number of environment slots.
    pub fn num_envs(&self) -> usize {
        self.slots.len()
    }

    /// Observation dimensionality shared by all slots.
    pub fn observation_dim(&self) -> usize {
        self.obs_dim
    }

    /// Action count shared by all slots.
    pub fn action_count(&self) -> usize {
        self.action_count
    }

    /// Start a new episode on slot `i` and mark it active.
    pub fn reset_env(&mut self, i: usize, seed: u64) {
        let slot = &mut self.slots[i];
        slot.env.reset_into(seed, &mut slot.obs, &mut slot.mask);
        slot.active = true;
        slot.reward = 0.0;
        slot.done = false;
    }

    /// Mark slot `i` inactive (no more episodes to run on it).
    pub fn deactivate(&mut self, i: usize) {
        self.slots[i].active = false;
    }

    /// Whether slot `i` is running an episode.
    pub fn is_active(&self, i: usize) -> bool {
        self.slots[i].active
    }

    /// Number of active slots.
    pub fn active_count(&self) -> usize {
        self.slots.iter().filter(|s| s.active).count()
    }

    /// Current observation of slot `i`.
    pub fn observation(&self, i: usize) -> &[f32] {
        &self.slots[i].obs
    }

    /// Current feasibility mask of slot `i`.
    pub fn mask(&self, i: usize) -> &[bool] {
        &self.slots[i].mask
    }

    /// Reward of the last step taken by slot `i`.
    pub fn reward(&self, i: usize) -> f64 {
        self.slots[i].reward
    }

    /// Whether the last step of slot `i` terminated its episode.
    pub fn done(&self, i: usize) -> bool {
        self.slots[i].done
    }

    /// Set the action slot `i` will apply at the next step call.
    pub fn set_action(&mut self, i: usize, action: usize) {
        self.slots[i].pending_action = action;
    }

    /// Stack the active slots into `obs` (one row per active slot, in slot
    /// order), their masks into the flat `masks` buffer (stride
    /// [`Self::action_count`]) and the slot index of each row into `rows`.
    /// All three buffers are cleared and refilled — allocation-free once
    /// warmed. Returns the number of stacked rows.
    pub fn stack_active(
        &self,
        obs: &mut Matrix,
        masks: &mut Vec<bool>,
        rows: &mut Vec<usize>,
    ) -> usize {
        obs.clear_rows();
        masks.clear();
        rows.clear();
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.active {
                obs.push_row(&slot.obs);
                masks.extend_from_slice(&slot.mask);
                rows.push(i);
            }
        }
        rows.len()
    }

    /// Step every active slot with its pending action, sequentially. The
    /// per-slot reward / done / next observation land in the slot buffers
    /// ([`Self::reward`], [`Self::done`], [`Self::observation`],
    /// [`Self::mask`]).
    pub fn step_active_seq(&mut self) {
        for slot in self.slots.iter_mut() {
            if slot.active {
                step_slot(slot);
            }
        }
    }
}

impl<E: Environment + Send> VecEnv<E> {
    /// Step every active slot with its pending action — through the `rayon`
    /// pool when parallel stepping was enabled and more than one slot is
    /// active, sequentially otherwise. Identical results either way.
    pub fn step_active(&mut self) {
        if self.parallel && self.active_count() > 1 {
            self.slots
                .par_iter_mut()
                .map(|slot| {
                    if slot.active {
                        step_slot(slot);
                    }
                })
                .collect::<Vec<()>>();
        } else {
            self.step_active_seq();
        }
    }
}

fn step_slot<E: Environment>(slot: &mut EnvSlot<E>) {
    let (reward, done) = slot
        .env
        .step_into(slot.pending_action, &mut slot.obs, &mut slot.mask);
    slot.reward = reward;
    slot.done = done;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_envs::ChainEnv;

    fn pool(n: usize) -> VecEnv<ChainEnv> {
        VecEnv::new((0..n).map(|_| ChainEnv::new(5, 4)).collect())
    }

    #[test]
    fn new_pool_starts_inactive_with_shared_dims() {
        let v = pool(3);
        assert_eq!(v.num_envs(), 3);
        assert_eq!(v.observation_dim(), 5);
        assert_eq!(v.action_count(), 2);
        assert_eq!(v.active_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one environment")]
    fn empty_pool_panics() {
        let _ = VecEnv::<ChainEnv>::new(Vec::new());
    }

    #[test]
    fn stack_skips_inactive_slots_and_tracks_rows() {
        let mut v = pool(3);
        v.reset_env(0, 0);
        v.reset_env(2, 0);
        let mut obs = Matrix::default();
        let mut masks = Vec::new();
        let mut rows = Vec::new();
        let n = v.stack_active(&mut obs, &mut masks, &mut rows);
        assert_eq!(n, 2);
        assert_eq!(rows, vec![0, 2]);
        assert_eq!(obs.rows(), 2);
        assert_eq!(obs.row(0), v.observation(0));
        assert_eq!(masks.len(), 2 * v.action_count());
    }

    #[test]
    fn lockstep_steps_match_solo_envs() {
        // Drive 3 pool slots with scripted (different) action sequences and
        // check every slot evolves exactly like a standalone env.
        let mut v = pool(3);
        for i in 0..3 {
            v.reset_env(i, i as u64);
        }
        let mut solos: Vec<ChainEnv> = (0..3).map(|_| ChainEnv::new(5, 4)).collect();
        for (i, s) in solos.iter_mut().enumerate() {
            s.reset(i as u64);
        }
        for t in 0..4 {
            for i in 0..3 {
                v.set_action(i, (t + i) % 2);
            }
            v.step_active();
            for (i, s) in solos.iter_mut().enumerate() {
                let tr = s.step((t + i) % 2);
                assert_eq!(v.reward(i), tr.reward);
                assert_eq!(v.done(i), tr.done);
                assert_eq!(v.observation(i), tr.next.observation.as_slice());
                assert_eq!(v.mask(i), tr.next.action_mask.as_slice());
            }
        }
        assert!((0..3).all(|i| v.done(i)));
    }

    #[test]
    fn parallel_and_sequential_stepping_agree() {
        let run = |parallel: bool| {
            let mut v = pool(4).with_parallel_stepping(parallel);
            for i in 0..4 {
                v.reset_env(i, 7);
            }
            let mut trace = Vec::new();
            for t in 0..4 {
                for i in 0..4 {
                    v.set_action(i, (t * i) % 2);
                }
                v.step_active();
                for i in 0..4 {
                    trace.push((v.reward(i), v.done(i), v.observation(i).to_vec()));
                }
            }
            trace
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn reset_reactivates_a_finished_slot_in_place() {
        let mut v = pool(1);
        v.reset_env(0, 0);
        for _ in 0..4 {
            v.set_action(0, 0);
            v.step_active();
        }
        assert!(v.done(0));
        v.deactivate(0);
        assert_eq!(v.active_count(), 0);
        v.reset_env(0, 1);
        assert!(v.is_active(0));
        assert!(!v.done(0));
        assert_eq!(v.observation(0)[0], 1.0);
    }
}
