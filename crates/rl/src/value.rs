//! State-value critic network.

use serde::{Deserialize, Serialize};
use tcrm_nn::{Activation, Matrix, Mlp, MlpConfig};

/// A critic V(s) parameterised by an MLP with a single linear output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValueNet {
    net: Mlp,
}

impl ValueNet {
    /// Create a value network `obs_dim → hidden… → 1`.
    pub fn new(obs_dim: usize, hidden: &[usize], seed: u64) -> Self {
        let cfg = MlpConfig::new(obs_dim, hidden, 1, Activation::Tanh);
        ValueNet {
            net: Mlp::new(&cfg, seed),
        }
    }

    /// The underlying network.
    pub fn network(&self) -> &Mlp {
        &self.net
    }

    /// Mutable access for optimisers.
    pub fn network_mut(&mut self) -> &mut Mlp {
        &mut self.net
    }

    /// Value estimate for a single observation.
    pub fn value(&self, obs: &[f32]) -> f32 {
        self.net.forward_vec(obs)[0]
    }

    /// Value estimates for a batch of observations (one per row).
    pub fn values(&self, batch: &Matrix) -> Vec<f32> {
        let out = self.net.forward(batch);
        (0..out.rows()).map(|r| out.get(r, 0)).collect()
    }

    /// Batched value estimates through a caller-owned workspace: one forward
    /// pass for the whole batch, allocation-free after warm-up. The returned
    /// `batch × 1` matrix is borrowed from `ws`.
    pub fn values_batch_ws<'w>(
        &self,
        batch: &Matrix,
        ws: &'w mut tcrm_nn::Workspace,
    ) -> &'w Matrix {
        self.net.forward_ws(batch, ws)
    }

    /// Training-mode forward pass (caches activations; the returned logits
    /// are borrowed from the network's internal workspace). Allocation-free
    /// after warm-up.
    pub fn forward_train(&mut self, batch: &Matrix) -> &Matrix {
        self.net.forward_train(batch)
    }

    /// Serialise the weights.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Restore from JSON.
    pub fn from_json(json: &str) -> serde_json::Result<Self> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_shapes() {
        let v = ValueNet::new(6, &[8], 3);
        let single = v.value(&[0.0; 6]);
        assert!(single.is_finite());
        let batch = Matrix::zeros(4, 6);
        let vals = v.values(&batch);
        assert_eq!(vals.len(), 4);
        // All-zero inputs map to the same value.
        assert!(vals.iter().all(|x| (x - single).abs() < 1e-6));
    }

    #[test]
    fn serde_roundtrip() {
        let v = ValueNet::new(3, &[4], 7);
        let back = ValueNet::from_json(&v.to_json().unwrap()).unwrap();
        assert_eq!(v.value(&[0.1, 0.2, 0.3]), back.value(&[0.1, 0.2, 0.3]));
    }
}
