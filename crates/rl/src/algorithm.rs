//! Policy-gradient algorithms: REINFORCE with baseline, advantage actor-critic
//! (A2C) and PPO with a clipped surrogate objective.
//!
//! All three share the masked categorical policy from [`crate::policy`] and
//! differ only in how they turn a batch of trajectories into a gradient, so
//! the ablation experiments can swap the learner without touching the
//! scheduling environment.

use crate::buffer::{discounted_returns, gae, normalize_advantages, Trajectory};
use crate::policy::CategoricalPolicy;
use crate::value::ValueNet;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tcrm_nn::loss::entropy;
use tcrm_nn::{masked_softmax, Adam, Matrix, Optimizer};

/// Diagnostics returned by one [`Algorithm::update`] call.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpdateStats {
    /// Mean policy (surrogate) loss over the batch.
    pub policy_loss: f64,
    /// Mean value-function loss (0 for critic-free algorithms).
    pub value_loss: f64,
    /// Mean policy entropy over the batch.
    pub entropy: f64,
    /// Pre-clip global gradient norm of the policy network.
    pub grad_norm: f64,
    /// Number of environment steps used for the update.
    pub steps: usize,
}

/// A learner that improves a masked categorical policy from trajectories.
pub trait Algorithm {
    /// Short name used in logs and the convergence figure legend.
    fn name(&self) -> &str;

    /// The behaviour policy (used by the trainer to roll out episodes).
    fn policy(&self) -> &CategoricalPolicy;

    /// Mutable access to the policy (checkpoint restore).
    fn policy_mut(&mut self) -> &mut CategoricalPolicy;

    /// Critic estimate of the value of an observation (0 for critic-free
    /// algorithms); the trainer records it in trajectories so GAE can be
    /// computed at update time.
    fn value_estimate(&self, _obs: &[f32]) -> f32 {
        0.0
    }

    /// Consume a batch of trajectories and update the policy (and critic).
    fn update(&mut self, trajectories: &[Trajectory]) -> UpdateStats;
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

/// Flattened view of a batch of trajectories.
struct FlatBatch {
    observations: Matrix,
    masks: Vec<Vec<bool>>,
    actions: Vec<usize>,
    old_log_probs: Vec<f32>,
    advantages: Vec<f64>,
    value_targets: Vec<f64>,
    returns: Vec<f64>,
}

impl FlatBatch {
    fn len(&self) -> usize {
        self.actions.len()
    }
}

fn flatten(
    trajectories: &[Trajectory],
    gamma: f64,
    lambda: Option<f64>,
    normalize: bool,
) -> FlatBatch {
    let obs_dim = trajectories
        .iter()
        .flat_map(|t| t.observations.first())
        .map(|o| o.len())
        .next()
        .unwrap_or(0);
    let total: usize = trajectories.iter().map(|t| t.len()).sum();
    let mut obs_data = Vec::with_capacity(total * obs_dim);
    let mut masks = Vec::with_capacity(total);
    let mut actions = Vec::with_capacity(total);
    let mut old_log_probs = Vec::with_capacity(total);
    let mut advantages = Vec::with_capacity(total);
    let mut value_targets = Vec::with_capacity(total);
    let mut returns = Vec::with_capacity(total);
    for t in trajectories {
        if t.is_empty() {
            continue;
        }
        let ep_returns = discounted_returns(&t.rewards, &t.dones, gamma);
        let (adv, targets) = match lambda {
            Some(l) => gae(&t.rewards, &t.values, &t.dones, 0.0, gamma, l),
            None => {
                // Monte-Carlo advantage against the recorded values (zero for
                // critic-free learners).
                let adv: Vec<f64> = ep_returns
                    .iter()
                    .zip(t.values.iter())
                    .map(|(g, v)| g - *v as f64)
                    .collect();
                (adv, ep_returns.clone())
            }
        };
        for step in 0..t.len() {
            obs_data.extend_from_slice(&t.observations[step]);
            masks.push(t.masks[step].clone());
            actions.push(t.actions[step]);
            old_log_probs.push(t.log_probs[step]);
            advantages.push(adv[step]);
            value_targets.push(targets[step]);
            returns.push(ep_returns[step]);
        }
    }
    if normalize {
        normalize_advantages(&mut advantages);
    }
    FlatBatch {
        observations: Matrix::from_vec(total, obs_dim.max(1), {
            if obs_dim == 0 {
                vec![0.0; total]
            } else {
                obs_data
            }
        }),
        masks,
        actions,
        old_log_probs,
        advantages,
        value_targets,
        returns,
    }
}

/// Compute the policy-gradient contribution of one sample:
/// `coeff · (p − onehot(a)) + ent_coef · p ⊙ (ln p + H)` — the gradient of
/// `−coeff·log π(a|s) − ent_coef·H(π(·|s))` with respect to the logits.
fn policy_grad_row(
    probs: &[f32],
    action: usize,
    coeff: f64,
    ent_coef: f64,
    grad_row: &mut [f32],
) -> (f64, f64) {
    let h = entropy(probs) as f64;
    for (j, &p) in probs.iter().enumerate() {
        let onehot = if j == action { 1.0 } else { 0.0 };
        let mut g = coeff * (p as f64 - onehot);
        if ent_coef != 0.0 && p > 0.0 {
            g += ent_coef * p as f64 * ((p as f64).ln() + h);
        }
        grad_row[j] += g as f32;
    }
    let log_prob = probs[action].max(1e-12).ln() as f64;
    (-coeff * log_prob, h)
}

fn value_update(
    value_net: &mut ValueNet,
    opt: &mut Adam,
    observations: &Matrix,
    targets: &[f64],
) -> f64 {
    let preds = value_net.forward_train(observations);
    let n = targets.len().max(1) as f32;
    let mut grad = Matrix::zeros(preds.rows(), 1);
    let mut loss = 0.0;
    for (r, &target) in targets.iter().enumerate() {
        let diff = preds.get(r, 0) - target as f32;
        loss += (diff * diff) as f64;
        grad.set(r, 0, 2.0 * diff / n);
    }
    value_net.network_mut().zero_grad();
    value_net.network_mut().backward(&grad);
    value_net.network_mut().clip_grad_norm(5.0);
    opt.step(value_net.network_mut());
    loss / targets.len().max(1) as f64
}

// ---------------------------------------------------------------------------
// REINFORCE
// ---------------------------------------------------------------------------

/// Configuration of [`Reinforce`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReinforceConfig {
    /// Discount factor.
    pub gamma: f64,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Entropy-bonus coefficient.
    pub entropy_coef: f64,
    /// Use an exponential-moving-average return baseline.
    pub use_baseline: bool,
    /// Normalise advantages per batch.
    pub normalize_advantages: bool,
    /// Global gradient-norm clip.
    pub max_grad_norm: f32,
}

impl Default for ReinforceConfig {
    fn default() -> Self {
        ReinforceConfig {
            gamma: 0.99,
            learning_rate: 3e-3,
            entropy_coef: 0.01,
            use_baseline: true,
            normalize_advantages: true,
            max_grad_norm: 5.0,
        }
    }
}

/// Monte-Carlo policy gradient with an EMA baseline — the learner DeepRM used
/// and the simplest member of the family.
#[derive(Debug, Clone)]
pub struct Reinforce {
    config: ReinforceConfig,
    policy: CategoricalPolicy,
    optimizer: Adam,
    baseline: f64,
    baseline_initialized: bool,
}

impl Reinforce {
    /// Create a REINFORCE learner around a fresh policy.
    pub fn new(policy: CategoricalPolicy, config: ReinforceConfig) -> Self {
        let optimizer = Adam::new(policy.network().num_parameters(), config.learning_rate);
        Reinforce {
            config,
            policy,
            optimizer,
            baseline: 0.0,
            baseline_initialized: false,
        }
    }

    /// Current EMA baseline (for tests and diagnostics).
    pub fn baseline(&self) -> f64 {
        self.baseline
    }
}

impl Algorithm for Reinforce {
    fn name(&self) -> &str {
        "reinforce"
    }

    fn policy(&self) -> &CategoricalPolicy {
        &self.policy
    }

    fn policy_mut(&mut self) -> &mut CategoricalPolicy {
        &mut self.policy
    }

    fn update(&mut self, trajectories: &[Trajectory]) -> UpdateStats {
        let mut batch = flatten(trajectories, self.config.gamma, None, false);
        if batch.len() == 0 {
            return UpdateStats {
                policy_loss: 0.0,
                value_loss: 0.0,
                entropy: 0.0,
                grad_norm: 0.0,
                steps: 0,
            };
        }
        // Baseline: EMA over batch-mean return.
        if self.config.use_baseline {
            let mean_return = batch.returns.iter().sum::<f64>() / batch.len() as f64;
            if self.baseline_initialized {
                self.baseline = 0.9 * self.baseline + 0.1 * mean_return;
            } else {
                self.baseline = mean_return;
                self.baseline_initialized = true;
            }
            for (a, g) in batch.advantages.iter_mut().zip(batch.returns.iter()) {
                *a = g - self.baseline;
            }
        } else {
            batch.advantages = batch.returns.clone();
        }
        if self.config.normalize_advantages {
            normalize_advantages(&mut batch.advantages);
        }

        let n = batch.len();
        let logits = self.policy.forward_train(&batch.observations);
        let mut grad = Matrix::zeros(n, logits.cols());
        let mut policy_loss = 0.0;
        let mut mean_entropy = 0.0;
        for i in 0..n {
            let probs = masked_softmax(logits.row(i), &batch.masks[i]);
            let (loss, h) = policy_grad_row(
                &probs,
                batch.actions[i],
                batch.advantages[i] / n as f64,
                self.config.entropy_coef / n as f64,
                grad.row_mut(i),
            );
            policy_loss += loss;
            mean_entropy += h / n as f64;
        }
        self.policy.network_mut().zero_grad();
        self.policy.network_mut().backward(&grad);
        let grad_norm = self
            .policy
            .network_mut()
            .clip_grad_norm(self.config.max_grad_norm);
        self.optimizer.step(self.policy.network_mut());
        UpdateStats {
            policy_loss,
            value_loss: 0.0,
            entropy: mean_entropy,
            grad_norm: grad_norm as f64,
            steps: n,
        }
    }
}

// ---------------------------------------------------------------------------
// A2C
// ---------------------------------------------------------------------------

/// Configuration of [`A2c`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct A2cConfig {
    /// Discount factor.
    pub gamma: f64,
    /// GAE λ.
    pub gae_lambda: f64,
    /// Policy learning rate.
    pub learning_rate: f32,
    /// Critic learning rate.
    pub value_learning_rate: f32,
    /// Entropy-bonus coefficient.
    pub entropy_coef: f64,
    /// Normalise advantages per batch.
    pub normalize_advantages: bool,
    /// Global gradient-norm clip.
    pub max_grad_norm: f32,
}

impl Default for A2cConfig {
    fn default() -> Self {
        A2cConfig {
            gamma: 0.99,
            gae_lambda: 0.95,
            learning_rate: 1e-3,
            value_learning_rate: 2e-3,
            entropy_coef: 0.01,
            normalize_advantages: true,
            max_grad_norm: 5.0,
        }
    }
}

/// Advantage actor-critic: synchronous batch updates with a learned critic
/// and GAE.
#[derive(Debug, Clone)]
pub struct A2c {
    config: A2cConfig,
    policy: CategoricalPolicy,
    value: ValueNet,
    policy_opt: Adam,
    value_opt: Adam,
}

impl A2c {
    /// Create an A2C learner around fresh policy and value networks.
    pub fn new(policy: CategoricalPolicy, value: ValueNet, config: A2cConfig) -> Self {
        let policy_opt = Adam::new(policy.network().num_parameters(), config.learning_rate);
        let value_opt = Adam::new(value.network().num_parameters(), config.value_learning_rate);
        A2c {
            config,
            policy,
            value,
            policy_opt,
            value_opt,
        }
    }

    /// The critic (read access for diagnostics and checkpoints).
    pub fn value_net(&self) -> &ValueNet {
        &self.value
    }

    /// Mutable critic access (checkpoint restore).
    pub fn value_net_mut(&mut self) -> &mut ValueNet {
        &mut self.value
    }
}

impl Algorithm for A2c {
    fn name(&self) -> &str {
        "a2c"
    }

    fn policy(&self) -> &CategoricalPolicy {
        &self.policy
    }

    fn policy_mut(&mut self) -> &mut CategoricalPolicy {
        &mut self.policy
    }

    fn value_estimate(&self, obs: &[f32]) -> f32 {
        self.value.value(obs)
    }

    fn update(&mut self, trajectories: &[Trajectory]) -> UpdateStats {
        let batch = flatten(
            trajectories,
            self.config.gamma,
            Some(self.config.gae_lambda),
            self.config.normalize_advantages,
        );
        if batch.len() == 0 {
            return UpdateStats {
                policy_loss: 0.0,
                value_loss: 0.0,
                entropy: 0.0,
                grad_norm: 0.0,
                steps: 0,
            };
        }
        let n = batch.len();
        let logits = self.policy.forward_train(&batch.observations);
        let mut grad = Matrix::zeros(n, logits.cols());
        let mut policy_loss = 0.0;
        let mut mean_entropy = 0.0;
        for i in 0..n {
            let probs = masked_softmax(logits.row(i), &batch.masks[i]);
            let (loss, h) = policy_grad_row(
                &probs,
                batch.actions[i],
                batch.advantages[i] / n as f64,
                self.config.entropy_coef / n as f64,
                grad.row_mut(i),
            );
            policy_loss += loss;
            mean_entropy += h / n as f64;
        }
        self.policy.network_mut().zero_grad();
        self.policy.network_mut().backward(&grad);
        let grad_norm = self
            .policy
            .network_mut()
            .clip_grad_norm(self.config.max_grad_norm);
        self.policy_opt.step(self.policy.network_mut());

        let value_loss = value_update(
            &mut self.value,
            &mut self.value_opt,
            &batch.observations,
            &batch.value_targets,
        );
        UpdateStats {
            policy_loss,
            value_loss,
            entropy: mean_entropy,
            grad_norm: grad_norm as f64,
            steps: n,
        }
    }
}

// ---------------------------------------------------------------------------
// PPO
// ---------------------------------------------------------------------------

/// Configuration of [`Ppo`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PpoConfig {
    /// Discount factor.
    pub gamma: f64,
    /// GAE λ.
    pub gae_lambda: f64,
    /// Clipping parameter ε.
    pub clip_epsilon: f64,
    /// Optimisation epochs per batch.
    pub epochs: usize,
    /// Minibatch size (0 ⇒ full batch).
    pub minibatch_size: usize,
    /// Policy learning rate.
    pub learning_rate: f32,
    /// Critic learning rate.
    pub value_learning_rate: f32,
    /// Entropy-bonus coefficient.
    pub entropy_coef: f64,
    /// Global gradient-norm clip.
    pub max_grad_norm: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for PpoConfig {
    fn default() -> Self {
        PpoConfig {
            gamma: 0.99,
            gae_lambda: 0.95,
            clip_epsilon: 0.2,
            epochs: 4,
            minibatch_size: 256,
            learning_rate: 1e-3,
            value_learning_rate: 2e-3,
            entropy_coef: 0.01,
            max_grad_norm: 5.0,
            seed: 0,
        }
    }
}

/// Proximal Policy Optimisation with the clipped surrogate objective.
#[derive(Debug, Clone)]
pub struct Ppo {
    config: PpoConfig,
    policy: CategoricalPolicy,
    value: ValueNet,
    policy_opt: Adam,
    value_opt: Adam,
    rng: StdRng,
    /// Persistent minibatch gather buffers: sized by the first update, reused
    /// by every later epoch/minibatch so the optimisation loop stops
    /// allocating.
    mb_obs: Matrix,
    mb_grad: Matrix,
    mb_targets: Vec<f64>,
}

impl Ppo {
    /// Create a PPO learner around fresh policy and value networks.
    pub fn new(policy: CategoricalPolicy, value: ValueNet, config: PpoConfig) -> Self {
        let policy_opt = Adam::new(policy.network().num_parameters(), config.learning_rate);
        let value_opt = Adam::new(value.network().num_parameters(), config.value_learning_rate);
        let rng = StdRng::seed_from_u64(config.seed);
        Ppo {
            config,
            policy,
            value,
            policy_opt,
            value_opt,
            rng,
            mb_obs: Matrix::default(),
            mb_grad: Matrix::default(),
            mb_targets: Vec::new(),
        }
    }

    /// The critic.
    pub fn value_net(&self) -> &ValueNet {
        &self.value
    }

    /// Mutable critic access.
    pub fn value_net_mut(&mut self) -> &mut ValueNet {
        &mut self.value
    }
}

impl Algorithm for Ppo {
    fn name(&self) -> &str {
        "ppo"
    }

    fn policy(&self) -> &CategoricalPolicy {
        &self.policy
    }

    fn policy_mut(&mut self) -> &mut CategoricalPolicy {
        &mut self.policy
    }

    fn value_estimate(&self, obs: &[f32]) -> f32 {
        self.value.value(obs)
    }

    fn update(&mut self, trajectories: &[Trajectory]) -> UpdateStats {
        let batch = flatten(
            trajectories,
            self.config.gamma,
            Some(self.config.gae_lambda),
            true,
        );
        if batch.len() == 0 {
            return UpdateStats {
                policy_loss: 0.0,
                value_loss: 0.0,
                entropy: 0.0,
                grad_norm: 0.0,
                steps: 0,
            };
        }
        let n = batch.len();
        let obs_dim = batch.observations.cols();
        let minibatch = if self.config.minibatch_size == 0 {
            n
        } else {
            self.config.minibatch_size.min(n)
        };
        let mut indices: Vec<usize> = (0..n).collect();
        let mut policy_loss_acc = 0.0;
        let mut value_loss_acc = 0.0;
        let mut entropy_acc = 0.0;
        let mut grad_norm_acc = 0.0;
        let mut update_count = 0usize;

        for _ in 0..self.config.epochs.max(1) {
            indices.shuffle(&mut self.rng);
            for chunk in indices.chunks(minibatch) {
                let m = chunk.len();
                // Gather the minibatch into the persistent buffers (no
                // per-chunk allocation after the first update).
                self.mb_obs.resize(m, obs_dim);
                for (row, &i) in chunk.iter().enumerate() {
                    self.mb_obs
                        .row_mut(row)
                        .copy_from_slice(batch.observations.row(i));
                }
                let logits = self.policy.forward_train(&self.mb_obs);
                self.mb_grad.resize(m, logits.cols());
                self.mb_grad.fill(0.0);
                let grad = &mut self.mb_grad;
                let mut mb_policy_loss = 0.0;
                let mut mb_entropy = 0.0;
                for (row, &i) in chunk.iter().enumerate() {
                    let probs = masked_softmax(logits.row(row), &batch.masks[i]);
                    let action = batch.actions[i];
                    let adv = batch.advantages[i];
                    let new_log_prob = probs[action].max(1e-12).ln() as f64;
                    let ratio = (new_log_prob - batch.old_log_probs[i] as f64).exp();
                    let clipped_out = (adv >= 0.0 && ratio > 1.0 + self.config.clip_epsilon)
                        || (adv < 0.0 && ratio < 1.0 - self.config.clip_epsilon);
                    // Surrogate loss value (for reporting): -min(rA, clip(r)A)
                    let unclipped = ratio * adv;
                    let clipped = ratio.clamp(
                        1.0 - self.config.clip_epsilon,
                        1.0 + self.config.clip_epsilon,
                    ) * adv;
                    mb_policy_loss += -unclipped.min(clipped) / m as f64;
                    let coeff = if clipped_out {
                        0.0
                    } else {
                        // d(-r·A)/dlogits = -A·r·(onehot - p) = A·r·(p - onehot)
                        adv * ratio / m as f64
                    };
                    let (_, h) = policy_grad_row(
                        &probs,
                        action,
                        coeff,
                        self.config.entropy_coef / m as f64,
                        grad.row_mut(row),
                    );
                    mb_entropy += h / m as f64;
                }
                self.policy.network_mut().zero_grad();
                self.policy.network_mut().backward(&self.mb_grad);
                let gn = self
                    .policy
                    .network_mut()
                    .clip_grad_norm(self.config.max_grad_norm);
                self.policy_opt.step(self.policy.network_mut());

                self.mb_targets.clear();
                self.mb_targets
                    .extend(chunk.iter().map(|&i| batch.value_targets[i]));
                let vl = value_update(
                    &mut self.value,
                    &mut self.value_opt,
                    &self.mb_obs,
                    &self.mb_targets,
                );

                policy_loss_acc += mb_policy_loss;
                value_loss_acc += vl;
                entropy_acc += mb_entropy;
                grad_norm_acc += gn as f64;
                update_count += 1;
            }
        }
        let k = update_count.max(1) as f64;
        UpdateStats {
            policy_loss: policy_loss_acc / k,
            value_loss: value_loss_acc / k,
            entropy: entropy_acc / k,
            grad_norm: grad_norm_acc / k,
            steps: n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_envs::ChainEnv;
    use crate::trainer::{Trainer, TrainerConfig};

    fn chain_policy() -> CategoricalPolicy {
        CategoricalPolicy::new(5, &[16], 2, 0)
    }

    fn train_and_return<A: Algorithm>(algo: A, iterations: usize) -> (f64, f64) {
        let mut env = ChainEnv::new(5, 8);
        let cfg = TrainerConfig {
            episodes_per_iteration: 8,
            iterations,
            seed: 3,
            ..Default::default()
        };
        let mut trainer = Trainer::new(cfg);
        let history = trainer.train(&mut env, algo);
        let first = history.iterations.first().unwrap().mean_return;
        let last = history.iterations.last().unwrap().mean_return;
        (first, last)
    }

    #[test]
    fn reinforce_improves_on_chain() {
        let algo = Reinforce::new(chain_policy(), ReinforceConfig::default());
        let (first, last) = train_and_return(algo, 30);
        assert!(
            last > first + 0.5,
            "REINFORCE did not improve: {first} -> {last}"
        );
        assert!(last > 6.0, "final return too low: {last}");
    }

    #[test]
    fn a2c_improves_on_chain() {
        let algo = A2c::new(
            chain_policy(),
            ValueNet::new(5, &[16], 1),
            A2cConfig::default(),
        );
        let (first, last) = train_and_return(algo, 30);
        assert!(last > first + 0.5, "A2C did not improve: {first} -> {last}");
    }

    #[test]
    fn ppo_improves_on_chain() {
        let cfg = PpoConfig {
            epochs: 3,
            minibatch_size: 64,
            ..Default::default()
        };
        let algo = Ppo::new(chain_policy(), ValueNet::new(5, &[16], 1), cfg);
        let (first, last) = train_and_return(algo, 30);
        assert!(last > first + 0.5, "PPO did not improve: {first} -> {last}");
        assert!(last > 6.0, "final return too low: {last}");
    }

    #[test]
    fn update_on_empty_batch_is_a_no_op() {
        let mut algo = Reinforce::new(chain_policy(), ReinforceConfig::default());
        let stats = algo.update(&[]);
        assert_eq!(stats.steps, 0);
        let mut a2c = A2c::new(
            chain_policy(),
            ValueNet::new(5, &[8], 0),
            A2cConfig::default(),
        );
        assert_eq!(a2c.update(&[Trajectory::new()]).steps, 0);
        let mut ppo = Ppo::new(
            chain_policy(),
            ValueNet::new(5, &[8], 0),
            PpoConfig::default(),
        );
        assert_eq!(ppo.update(&[]).steps, 0);
    }

    #[test]
    fn reinforce_baseline_tracks_returns() {
        let mut algo = Reinforce::new(chain_policy(), ReinforceConfig::default());
        let mut t = Trajectory::new();
        for i in 0..5 {
            t.push(
                vec![0.0; 5],
                vec![true, true],
                i % 2,
                2.0,
                -0.5,
                0.0,
                i == 4,
            );
        }
        algo.update(&[t]);
        assert!(algo.baseline() > 0.0);
    }

    #[test]
    fn policy_grad_row_matches_cross_entropy_shape() {
        // With coeff=1 and no entropy term the gradient must be p - onehot.
        let probs = vec![0.2f32, 0.5, 0.3];
        let mut grad = vec![0.0f32; 3];
        let (loss, h) = policy_grad_row(&probs, 1, 1.0, 0.0, &mut grad);
        assert!((grad[1] - (0.5 - 1.0)).abs() < 1e-6);
        assert!((grad[0] - 0.2).abs() < 1e-6);
        assert!((loss + 0.5f32.ln() as f64).abs() < 1e-6);
        assert!(h > 0.0);
    }

    #[test]
    fn masked_actions_keep_zero_gradient() {
        let probs = vec![0.0f32, 0.6, 0.4];
        let mut grad = vec![0.0f32; 3];
        policy_grad_row(&probs, 1, 1.0, 0.05, &mut grad);
        assert_eq!(grad[0], 0.0);
        assert!(grad.iter().all(|g| g.is_finite()));
    }
}
