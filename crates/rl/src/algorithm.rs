//! Policy-gradient algorithms: REINFORCE with baseline, advantage actor-critic
//! (A2C) and PPO with a clipped surrogate objective.
//!
//! All three share the masked categorical policy from [`crate::policy`] and
//! differ only in how they turn a batch of trajectories into a gradient, so
//! the ablation experiments can swap the learner without touching the
//! scheduling environment.

use crate::buffer::{RolloutBatch, Trajectory};
use crate::policy::CategoricalPolicy;
use crate::value::ValueNet;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tcrm_nn::loss::entropy;
use tcrm_nn::{masked_softmax_into, Adam, Matrix, Optimizer, Workspace};

/// Diagnostics returned by one [`Algorithm::update`] call.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpdateStats {
    /// Mean policy (surrogate) loss over the batch.
    pub policy_loss: f64,
    /// Mean value-function loss (0 for critic-free algorithms).
    pub value_loss: f64,
    /// Mean policy entropy over the batch.
    pub entropy: f64,
    /// Pre-clip global gradient norm of the policy network.
    pub grad_norm: f64,
    /// Number of environment steps used for the update.
    pub steps: usize,
}

impl UpdateStats {
    /// The all-zero stats returned for an empty batch.
    pub fn zero() -> Self {
        UpdateStats {
            policy_loss: 0.0,
            value_loss: 0.0,
            entropy: 0.0,
            grad_norm: 0.0,
            steps: 0,
        }
    }
}

/// A learner that improves a masked categorical policy from experience.
pub trait Algorithm {
    /// Short name used in logs and the convergence figure legend.
    fn name(&self) -> &str;

    /// The behaviour policy (used by the trainer to roll out episodes).
    fn policy(&self) -> &CategoricalPolicy;

    /// Mutable access to the policy (checkpoint restore).
    fn policy_mut(&mut self) -> &mut CategoricalPolicy;

    /// Critic estimate of the value of an observation (0 for critic-free
    /// algorithms); the trainer records it in trajectories so GAE can be
    /// computed at update time.
    fn value_estimate(&self, _obs: &[f32]) -> f32 {
        0.0
    }

    /// Critic estimates for a whole batch of observations (one per row),
    /// written into a caller-owned buffer. Critic-backed learners override
    /// this with a single batched forward pass through their workspace; the
    /// default scores row by row through [`Self::value_estimate`]. Both
    /// rollout collectors score each finished episode through this method so
    /// the per-episode forward shapes — and hence the recorded values — are
    /// identical between the legacy and vectorized paths.
    fn value_estimates_into(&mut self, observations: &Matrix, out: &mut Vec<f32>) {
        out.clear();
        for r in 0..observations.rows() {
            out.push(self.value_estimate(observations.row(r)));
        }
    }

    /// Consume a batch of trajectories and update the policy (and critic).
    /// Provided: flattens into a [`RolloutBatch`] and defers to
    /// [`Self::update_batch`].
    fn update(&mut self, trajectories: &[Trajectory]) -> UpdateStats {
        if trajectories.iter().all(|t| t.is_empty()) {
            return UpdateStats::zero();
        }
        let mut batch = RolloutBatch::from_trajectories(trajectories);
        self.update_batch(&mut batch)
    }

    /// Consume one flat rollout batch and update the policy (and critic).
    /// This is the native entry point of every learner: advantage /
    /// return computation runs as single backward sweeps over the whole
    /// batch and the optimisation loops read the flat storage directly, so
    /// a warmed learner performs no per-step heap allocation.
    fn update_batch(&mut self, batch: &mut RolloutBatch) -> UpdateStats;
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

/// One full-batch policy-gradient step over `batch` using the advantages
/// currently stored in it. Scratch buffers (`grad`, `probs`) are caller-owned
/// and reused across updates. Returns `(policy_loss, mean_entropy,
/// grad_norm)`.
#[allow(clippy::too_many_arguments)]
fn policy_step(
    policy: &mut CategoricalPolicy,
    opt: &mut Adam,
    batch: &RolloutBatch,
    entropy_coef: f64,
    max_grad_norm: f32,
    grad: &mut Matrix,
    probs: &mut Vec<f32>,
) -> (f64, f64, f64) {
    let n = batch.len();
    let logits = policy.forward_train(batch.observations());
    grad.resize(n, logits.cols());
    grad.fill(0.0);
    let mut policy_loss = 0.0;
    let mut mean_entropy = 0.0;
    for i in 0..n {
        masked_softmax_into(logits.row(i), batch.mask(i), probs);
        let (loss, h) = policy_grad_row(
            probs,
            batch.actions()[i],
            batch.advantages()[i] / n as f64,
            entropy_coef / n as f64,
            grad.row_mut(i),
        );
        policy_loss += loss;
        mean_entropy += h / n as f64;
    }
    policy.network_mut().zero_grad();
    policy.network_mut().backward(grad);
    let grad_norm = policy.network_mut().clip_grad_norm(max_grad_norm);
    opt.step(policy.network_mut());
    (policy_loss, mean_entropy, grad_norm as f64)
}

/// Compute the policy-gradient contribution of one sample:
/// `coeff · (p − onehot(a)) + ent_coef · p ⊙ (ln p + H)` — the gradient of
/// `−coeff·log π(a|s) − ent_coef·H(π(·|s))` with respect to the logits.
fn policy_grad_row(
    probs: &[f32],
    action: usize,
    coeff: f64,
    ent_coef: f64,
    grad_row: &mut [f32],
) -> (f64, f64) {
    let h = entropy(probs) as f64;
    for (j, &p) in probs.iter().enumerate() {
        let onehot = if j == action { 1.0 } else { 0.0 };
        let mut g = coeff * (p as f64 - onehot);
        if ent_coef != 0.0 && p > 0.0 {
            g += ent_coef * p as f64 * ((p as f64).ln() + h);
        }
        grad_row[j] += g as f32;
    }
    let log_prob = probs[action].max(1e-12).ln() as f64;
    (-coeff * log_prob, h)
}

/// One mean-squared-error critic step. `grad` is a caller-owned scratch
/// matrix reused across updates (no per-call allocation once warmed).
fn value_update(
    value_net: &mut ValueNet,
    opt: &mut Adam,
    observations: &Matrix,
    targets: &[f64],
    grad: &mut Matrix,
) -> f64 {
    let preds = value_net.forward_train(observations);
    let n = targets.len().max(1) as f32;
    grad.resize(preds.rows(), 1);
    grad.fill(0.0);
    let mut loss = 0.0;
    for (r, &target) in targets.iter().enumerate() {
        let diff = preds.get(r, 0) - target as f32;
        loss += (diff * diff) as f64;
        grad.set(r, 0, 2.0 * diff / n);
    }
    value_net.network_mut().zero_grad();
    value_net.network_mut().backward(grad);
    value_net.network_mut().clip_grad_norm(5.0);
    opt.step(value_net.network_mut());
    loss / targets.len().max(1) as f64
}

// ---------------------------------------------------------------------------
// REINFORCE
// ---------------------------------------------------------------------------

/// Configuration of [`Reinforce`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReinforceConfig {
    /// Discount factor.
    pub gamma: f64,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Entropy-bonus coefficient.
    pub entropy_coef: f64,
    /// Use an exponential-moving-average return baseline.
    pub use_baseline: bool,
    /// Normalise advantages per batch.
    pub normalize_advantages: bool,
    /// Global gradient-norm clip.
    pub max_grad_norm: f32,
}

impl Default for ReinforceConfig {
    fn default() -> Self {
        ReinforceConfig {
            gamma: 0.99,
            learning_rate: 3e-3,
            entropy_coef: 0.01,
            use_baseline: true,
            normalize_advantages: true,
            max_grad_norm: 5.0,
        }
    }
}

/// Monte-Carlo policy gradient with an EMA baseline — the learner DeepRM used
/// and the simplest member of the family.
#[derive(Debug, Clone)]
pub struct Reinforce {
    config: ReinforceConfig,
    policy: CategoricalPolicy,
    optimizer: Adam,
    baseline: f64,
    baseline_initialized: bool,
    grad: Matrix,
    probs: Vec<f32>,
}

impl Reinforce {
    /// Create a REINFORCE learner around a fresh policy.
    pub fn new(policy: CategoricalPolicy, config: ReinforceConfig) -> Self {
        let optimizer = Adam::new(policy.network().num_parameters(), config.learning_rate);
        Reinforce {
            config,
            policy,
            optimizer,
            baseline: 0.0,
            baseline_initialized: false,
            grad: Matrix::default(),
            probs: Vec::new(),
        }
    }

    /// Current EMA baseline (for tests and diagnostics).
    pub fn baseline(&self) -> f64 {
        self.baseline
    }
}

impl Algorithm for Reinforce {
    fn name(&self) -> &str {
        "reinforce"
    }

    fn policy(&self) -> &CategoricalPolicy {
        &self.policy
    }

    fn policy_mut(&mut self) -> &mut CategoricalPolicy {
        &mut self.policy
    }

    fn update_batch(&mut self, batch: &mut RolloutBatch) -> UpdateStats {
        if batch.is_empty() {
            return UpdateStats::zero();
        }
        let n = batch.len();
        batch.compute_returns(self.config.gamma);
        // Baseline: EMA over batch-mean return.
        let baseline = if self.config.use_baseline {
            let mean_return = batch.returns().iter().sum::<f64>() / n as f64;
            if self.baseline_initialized {
                self.baseline = 0.9 * self.baseline + 0.1 * mean_return;
            } else {
                self.baseline = mean_return;
                self.baseline_initialized = true;
            }
            self.baseline
        } else {
            0.0
        };
        batch.set_advantages_to_returns_minus(baseline);
        if self.config.normalize_advantages {
            batch.normalize_advantages();
        }

        let (policy_loss, mean_entropy, grad_norm) = policy_step(
            &mut self.policy,
            &mut self.optimizer,
            batch,
            self.config.entropy_coef,
            self.config.max_grad_norm,
            &mut self.grad,
            &mut self.probs,
        );
        UpdateStats {
            policy_loss,
            value_loss: 0.0,
            entropy: mean_entropy,
            grad_norm,
            steps: n,
        }
    }
}

// ---------------------------------------------------------------------------
// A2C
// ---------------------------------------------------------------------------

/// Configuration of [`A2c`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct A2cConfig {
    /// Discount factor.
    pub gamma: f64,
    /// GAE λ.
    pub gae_lambda: f64,
    /// Policy learning rate.
    pub learning_rate: f32,
    /// Critic learning rate.
    pub value_learning_rate: f32,
    /// Entropy-bonus coefficient.
    pub entropy_coef: f64,
    /// Normalise advantages per batch.
    pub normalize_advantages: bool,
    /// Global gradient-norm clip.
    pub max_grad_norm: f32,
}

impl Default for A2cConfig {
    fn default() -> Self {
        A2cConfig {
            gamma: 0.99,
            gae_lambda: 0.95,
            learning_rate: 1e-3,
            value_learning_rate: 2e-3,
            entropy_coef: 0.01,
            normalize_advantages: true,
            max_grad_norm: 5.0,
        }
    }
}

/// Advantage actor-critic: synchronous batch updates with a learned critic
/// and GAE.
#[derive(Debug, Clone)]
pub struct A2c {
    config: A2cConfig,
    policy: CategoricalPolicy,
    value: ValueNet,
    policy_opt: Adam,
    value_opt: Adam,
    grad: Matrix,
    value_grad: Matrix,
    probs: Vec<f32>,
    value_ws: Workspace,
}

impl A2c {
    /// Create an A2C learner around fresh policy and value networks.
    pub fn new(policy: CategoricalPolicy, value: ValueNet, config: A2cConfig) -> Self {
        let policy_opt = Adam::new(policy.network().num_parameters(), config.learning_rate);
        let value_opt = Adam::new(value.network().num_parameters(), config.value_learning_rate);
        A2c {
            config,
            policy,
            value,
            policy_opt,
            value_opt,
            grad: Matrix::default(),
            value_grad: Matrix::default(),
            probs: Vec::new(),
            value_ws: Workspace::default(),
        }
    }

    /// The critic (read access for diagnostics and checkpoints).
    pub fn value_net(&self) -> &ValueNet {
        &self.value
    }

    /// Mutable critic access (checkpoint restore).
    pub fn value_net_mut(&mut self) -> &mut ValueNet {
        &mut self.value
    }
}

impl Algorithm for A2c {
    fn name(&self) -> &str {
        "a2c"
    }

    fn policy(&self) -> &CategoricalPolicy {
        &self.policy
    }

    fn policy_mut(&mut self) -> &mut CategoricalPolicy {
        &mut self.policy
    }

    fn value_estimate(&self, obs: &[f32]) -> f32 {
        self.value.value(obs)
    }

    fn value_estimates_into(&mut self, observations: &Matrix, out: &mut Vec<f32>) {
        let vals = self.value.values_batch_ws(observations, &mut self.value_ws);
        out.clear();
        out.extend_from_slice(vals.data());
    }

    fn update_batch(&mut self, batch: &mut RolloutBatch) -> UpdateStats {
        if batch.is_empty() {
            return UpdateStats::zero();
        }
        let n = batch.len();
        batch.compute_gae(self.config.gamma, self.config.gae_lambda);
        if self.config.normalize_advantages {
            batch.normalize_advantages();
        }
        let (policy_loss, mean_entropy, grad_norm) = policy_step(
            &mut self.policy,
            &mut self.policy_opt,
            batch,
            self.config.entropy_coef,
            self.config.max_grad_norm,
            &mut self.grad,
            &mut self.probs,
        );
        let value_loss = value_update(
            &mut self.value,
            &mut self.value_opt,
            batch.observations(),
            batch.value_targets(),
            &mut self.value_grad,
        );
        UpdateStats {
            policy_loss,
            value_loss,
            entropy: mean_entropy,
            grad_norm,
            steps: n,
        }
    }
}

// ---------------------------------------------------------------------------
// PPO
// ---------------------------------------------------------------------------

/// Configuration of [`Ppo`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PpoConfig {
    /// Discount factor.
    pub gamma: f64,
    /// GAE λ.
    pub gae_lambda: f64,
    /// Clipping parameter ε.
    pub clip_epsilon: f64,
    /// Optimisation epochs per batch.
    pub epochs: usize,
    /// Minibatch size (0 ⇒ full batch).
    pub minibatch_size: usize,
    /// Policy learning rate.
    pub learning_rate: f32,
    /// Critic learning rate.
    pub value_learning_rate: f32,
    /// Entropy-bonus coefficient.
    pub entropy_coef: f64,
    /// Global gradient-norm clip.
    pub max_grad_norm: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for PpoConfig {
    fn default() -> Self {
        PpoConfig {
            gamma: 0.99,
            gae_lambda: 0.95,
            clip_epsilon: 0.2,
            epochs: 4,
            minibatch_size: 256,
            learning_rate: 1e-3,
            value_learning_rate: 2e-3,
            entropy_coef: 0.01,
            max_grad_norm: 5.0,
            seed: 0,
        }
    }
}

/// Proximal Policy Optimisation with the clipped surrogate objective.
#[derive(Debug, Clone)]
pub struct Ppo {
    config: PpoConfig,
    policy: CategoricalPolicy,
    value: ValueNet,
    policy_opt: Adam,
    value_opt: Adam,
    rng: StdRng,
    /// Persistent minibatch gather buffers: sized by the first update, reused
    /// by every later epoch/minibatch so the optimisation loop stops
    /// allocating.
    mb_obs: Matrix,
    mb_grad: Matrix,
    mb_targets: Vec<f64>,
    indices: Vec<usize>,
    probs: Vec<f32>,
    value_grad: Matrix,
    value_ws: Workspace,
}

impl Ppo {
    /// Create a PPO learner around fresh policy and value networks.
    pub fn new(policy: CategoricalPolicy, value: ValueNet, config: PpoConfig) -> Self {
        let policy_opt = Adam::new(policy.network().num_parameters(), config.learning_rate);
        let value_opt = Adam::new(value.network().num_parameters(), config.value_learning_rate);
        let rng = StdRng::seed_from_u64(config.seed);
        Ppo {
            config,
            policy,
            value,
            policy_opt,
            value_opt,
            rng,
            mb_obs: Matrix::default(),
            mb_grad: Matrix::default(),
            mb_targets: Vec::new(),
            indices: Vec::new(),
            probs: Vec::new(),
            value_grad: Matrix::default(),
            value_ws: Workspace::default(),
        }
    }

    /// The critic.
    pub fn value_net(&self) -> &ValueNet {
        &self.value
    }

    /// Mutable critic access.
    pub fn value_net_mut(&mut self) -> &mut ValueNet {
        &mut self.value
    }
}

impl Algorithm for Ppo {
    fn name(&self) -> &str {
        "ppo"
    }

    fn policy(&self) -> &CategoricalPolicy {
        &self.policy
    }

    fn policy_mut(&mut self) -> &mut CategoricalPolicy {
        &mut self.policy
    }

    fn value_estimate(&self, obs: &[f32]) -> f32 {
        self.value.value(obs)
    }

    fn value_estimates_into(&mut self, observations: &Matrix, out: &mut Vec<f32>) {
        let vals = self.value.values_batch_ws(observations, &mut self.value_ws);
        out.clear();
        out.extend_from_slice(vals.data());
    }

    fn update_batch(&mut self, batch: &mut RolloutBatch) -> UpdateStats {
        if batch.is_empty() {
            return UpdateStats::zero();
        }
        batch.compute_gae(self.config.gamma, self.config.gae_lambda);
        batch.normalize_advantages();
        let n = batch.len();
        let obs_dim = batch.observations().cols();
        let minibatch = if self.config.minibatch_size == 0 {
            n
        } else {
            self.config.minibatch_size.min(n)
        };
        self.indices.clear();
        self.indices.extend(0..n);
        let mut policy_loss_acc = 0.0;
        let mut value_loss_acc = 0.0;
        let mut entropy_acc = 0.0;
        let mut grad_norm_acc = 0.0;
        let mut update_count = 0usize;

        for _ in 0..self.config.epochs.max(1) {
            self.indices.shuffle(&mut self.rng);
            for chunk in self.indices.chunks(minibatch) {
                let m = chunk.len();
                // Gather the minibatch into the persistent buffers (no
                // per-chunk allocation after the first update).
                self.mb_obs.resize(m, obs_dim);
                for (row, &i) in chunk.iter().enumerate() {
                    self.mb_obs
                        .row_mut(row)
                        .copy_from_slice(batch.observation(i));
                }
                let logits = self.policy.forward_train(&self.mb_obs);
                self.mb_grad.resize(m, logits.cols());
                self.mb_grad.fill(0.0);
                let grad = &mut self.mb_grad;
                let mut mb_policy_loss = 0.0;
                let mut mb_entropy = 0.0;
                for (row, &i) in chunk.iter().enumerate() {
                    masked_softmax_into(logits.row(row), batch.mask(i), &mut self.probs);
                    let probs = &self.probs;
                    let action = batch.actions()[i];
                    let adv = batch.advantages()[i];
                    let new_log_prob = probs[action].max(1e-12).ln() as f64;
                    let ratio = (new_log_prob - batch.log_probs()[i] as f64).exp();
                    let clipped_out = (adv >= 0.0 && ratio > 1.0 + self.config.clip_epsilon)
                        || (adv < 0.0 && ratio < 1.0 - self.config.clip_epsilon);
                    // Surrogate loss value (for reporting): -min(rA, clip(r)A)
                    let unclipped = ratio * adv;
                    let clipped = ratio.clamp(
                        1.0 - self.config.clip_epsilon,
                        1.0 + self.config.clip_epsilon,
                    ) * adv;
                    mb_policy_loss += -unclipped.min(clipped) / m as f64;
                    let coeff = if clipped_out {
                        0.0
                    } else {
                        // d(-r·A)/dlogits = -A·r·(onehot - p) = A·r·(p - onehot)
                        adv * ratio / m as f64
                    };
                    let (_, h) = policy_grad_row(
                        probs,
                        action,
                        coeff,
                        self.config.entropy_coef / m as f64,
                        grad.row_mut(row),
                    );
                    mb_entropy += h / m as f64;
                }
                self.policy.network_mut().zero_grad();
                self.policy.network_mut().backward(&self.mb_grad);
                let gn = self
                    .policy
                    .network_mut()
                    .clip_grad_norm(self.config.max_grad_norm);
                self.policy_opt.step(self.policy.network_mut());

                self.mb_targets.clear();
                self.mb_targets
                    .extend(chunk.iter().map(|&i| batch.value_targets()[i]));
                let vl = value_update(
                    &mut self.value,
                    &mut self.value_opt,
                    &self.mb_obs,
                    &self.mb_targets,
                    &mut self.value_grad,
                );

                policy_loss_acc += mb_policy_loss;
                value_loss_acc += vl;
                entropy_acc += mb_entropy;
                grad_norm_acc += gn as f64;
                update_count += 1;
            }
        }
        let k = update_count.max(1) as f64;
        UpdateStats {
            policy_loss: policy_loss_acc / k,
            value_loss: value_loss_acc / k,
            entropy: entropy_acc / k,
            grad_norm: grad_norm_acc / k,
            steps: n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_envs::ChainEnv;
    use crate::trainer::{Trainer, TrainerConfig};

    fn chain_policy() -> CategoricalPolicy {
        CategoricalPolicy::new(5, &[16], 2, 0)
    }

    fn train_and_return<A: Algorithm>(algo: A, iterations: usize) -> (f64, f64) {
        let mut env = ChainEnv::new(5, 8);
        let cfg = TrainerConfig {
            episodes_per_iteration: 8,
            iterations,
            seed: 3,
            ..Default::default()
        };
        let mut trainer = Trainer::new(cfg);
        let history = trainer.train(&mut env, algo);
        let first = history.iterations.first().unwrap().mean_return;
        let last = history.iterations.last().unwrap().mean_return;
        (first, last)
    }

    #[test]
    fn reinforce_improves_on_chain() {
        let algo = Reinforce::new(chain_policy(), ReinforceConfig::default());
        let (first, last) = train_and_return(algo, 30);
        assert!(
            last > first + 0.5,
            "REINFORCE did not improve: {first} -> {last}"
        );
        assert!(last > 6.0, "final return too low: {last}");
    }

    #[test]
    fn a2c_improves_on_chain() {
        let algo = A2c::new(
            chain_policy(),
            ValueNet::new(5, &[16], 1),
            A2cConfig::default(),
        );
        let (first, last) = train_and_return(algo, 30);
        assert!(last > first + 0.5, "A2C did not improve: {first} -> {last}");
    }

    #[test]
    fn ppo_improves_on_chain() {
        let cfg = PpoConfig {
            epochs: 3,
            minibatch_size: 64,
            ..Default::default()
        };
        let algo = Ppo::new(chain_policy(), ValueNet::new(5, &[16], 1), cfg);
        let (first, last) = train_and_return(algo, 30);
        assert!(last > first + 0.5, "PPO did not improve: {first} -> {last}");
        assert!(last > 6.0, "final return too low: {last}");
    }

    #[test]
    fn update_on_empty_batch_is_a_no_op() {
        let mut algo = Reinforce::new(chain_policy(), ReinforceConfig::default());
        let stats = algo.update(&[]);
        assert_eq!(stats.steps, 0);
        let mut a2c = A2c::new(
            chain_policy(),
            ValueNet::new(5, &[8], 0),
            A2cConfig::default(),
        );
        assert_eq!(a2c.update(&[Trajectory::new()]).steps, 0);
        let mut ppo = Ppo::new(
            chain_policy(),
            ValueNet::new(5, &[8], 0),
            PpoConfig::default(),
        );
        assert_eq!(ppo.update(&[]).steps, 0);
    }

    #[test]
    fn reinforce_baseline_tracks_returns() {
        let mut algo = Reinforce::new(chain_policy(), ReinforceConfig::default());
        let mut t = Trajectory::new();
        for i in 0..5 {
            t.push(
                vec![0.0; 5],
                vec![true, true],
                i % 2,
                2.0,
                -0.5,
                0.0,
                i == 4,
            );
        }
        algo.update(&[t]);
        assert!(algo.baseline() > 0.0);
    }

    #[test]
    fn policy_grad_row_matches_cross_entropy_shape() {
        // With coeff=1 and no entropy term the gradient must be p - onehot.
        let probs = vec![0.2f32, 0.5, 0.3];
        let mut grad = vec![0.0f32; 3];
        let (loss, h) = policy_grad_row(&probs, 1, 1.0, 0.0, &mut grad);
        assert!((grad[1] - (0.5 - 1.0)).abs() < 1e-6);
        assert!((grad[0] - 0.2).abs() < 1e-6);
        assert!((loss + 0.5f32.ln() as f64).abs() < 1e-6);
        assert!(h > 0.0);
    }

    #[test]
    fn masked_actions_keep_zero_gradient() {
        let probs = vec![0.0f32, 0.6, 0.4];
        let mut grad = vec![0.0f32; 3];
        policy_grad_row(&probs, 1, 1.0, 0.05, &mut grad);
        assert_eq!(grad[0], 0.0);
        assert!(grad.iter().all(|g| g.is_finite()));
    }
}
