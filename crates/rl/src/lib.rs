//! # tcrm-rl — policy-gradient reinforcement learning on `tcrm-nn`
//!
//! The paper's scheduler is a deep policy-gradient agent. This crate provides
//! the algorithm family it belongs to, built on the pure-Rust MLPs of
//! `tcrm-nn`:
//!
//! * an [`Environment`] trait with **action masking** (a scheduling decision
//!   epoch exposes only feasible actions),
//! * a masked [`CategoricalPolicy`] and a [`ValueNet`] critic,
//! * trajectory storage with discounted returns and Generalised Advantage
//!   Estimation ([`buffer`]),
//! * three interchangeable algorithms — [`Reinforce`] (with moving-average
//!   baseline), [`A2c`] and [`Ppo`] (clipped surrogate) — behind a common
//!   [`Algorithm`] trait,
//! * a value-based ablation: [`DqnAgent`] with experience replay, a target
//!   network and masked ε-greedy exploration ([`dqn`]),
//! * a [`Trainer`] that rolls out episodes, feeds the algorithm and records a
//!   [`TrainingHistory`] (the data behind the training-convergence figure) —
//!   either one environment at a time, or through a lockstep [`VecEnv`] pool
//!   whose rollouts run one batched policy forward per step for all
//!   environments at once ([`vec_env`], [`Trainer::train_in_place_vec`]).
//!
//! The crate is scheduler-agnostic; `tcrm-core` plugs its
//! `SchedulingEnv` in as the [`Environment`].

pub mod algorithm;
pub mod buffer;
pub mod dqn;
pub mod env;
pub mod policy;
pub mod trainer;
pub mod value;
pub mod vec_env;

pub use algorithm::{
    A2c, A2cConfig, Algorithm, Ppo, PpoConfig, Reinforce, ReinforceConfig, UpdateStats,
};
pub use buffer::{
    discounted_returns, discounted_returns_flat_into, gae, gae_flat_into, normalize_advantages,
    RolloutBatch, Trajectory,
};
pub use dqn::{DqnAgent, DqnConfig, DqnUpdateStats, QNetwork, ReplayBuffer, ReplayTransition};
pub use env::{Environment, Step, Transition};
pub use policy::{sample_categorical, CategoricalPolicy};
pub use trainer::{EpisodeStats, Trainer, TrainerConfig, TrainingHistory};
pub use value::ValueNet;
pub use vec_env::VecEnv;
