//! Counting-allocator proof for the DQN learner: once the replay buffer is
//! warm and one gradient step has sized the persistent minibatch scratch,
//! `DqnAgent::train_step` — index sampling, minibatch stacking, the batched
//! bootstrap forwards, backprop and the Adam update — performs **zero heap
//! allocations**.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn count_allocations(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

#[test]
fn dqn_train_step_does_not_allocate_after_warmup() {
    use tcrm_rl::{DqnAgent, DqnConfig, ReplayTransition};

    let obs_dim = 24;
    let actions = 10;
    let config = DqnConfig {
        batch_size: 32,
        warmup: 32,
        // Keep the target network fixed during the measurement window —
        // syncing clones the network, which allocates by design.
        target_sync_interval: 0,
        ..DqnConfig::default()
    };
    let mut agent = DqnAgent::new(obs_dim, actions, &[64, 64], 11, config);

    // Fill the replay buffer directly (storage allocates; that is ingest,
    // not the gradient step).
    for i in 0..256usize {
        let obs: Vec<f32> = (0..obs_dim).map(|d| ((i + d) % 13) as f32 / 13.0).collect();
        let next: Vec<f32> = (0..obs_dim)
            .map(|d| ((i + d + 1) % 13) as f32 / 13.0)
            .collect();
        agent.replay_mut().push(ReplayTransition {
            observation: obs,
            action: i % actions,
            reward: ((i % 5) as f64 - 2.0) / 2.0,
            next_observation: next,
            next_mask: (0..actions).map(|a| a % 3 != 1).collect(),
            done: i % 17 == 0,
        });
    }

    // Warm-up: two gradient steps size every scratch buffer.
    agent.train_step();
    agent.train_step();

    // Judged on the minimum over several windows: rare counter pollution
    // from a harness thread cannot fail the test spuriously, while a
    // genuinely allocating gradient step still would.
    let allocations = (0..4)
        .map(|_| {
            count_allocations(|| {
                for _ in 0..5 {
                    agent.train_step();
                }
            })
        })
        .min()
        .unwrap();
    assert_eq!(
        allocations, 0,
        "train_step allocated in steady state ({allocations} allocations per 5-step window)"
    );
}
