//! Counting-allocator proof for the flat rollout batch: once a
//! [`RolloutBatch`] has warmed to its steady-state shape, refilling it
//! (clear + push + close) and computing returns / GAE / normalized
//! advantages over the whole rollout perform **zero heap allocations** —
//! the per-step `Vec` churn of the trajectory path is gone.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use tcrm_rl::RolloutBatch;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn count_allocations(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

const OBS: usize = 32;
const ACTIONS: usize = 12;

/// Refill the batch with a multi-episode rollout of ragged lengths,
/// including a truncated (non-terminal) final episode.
fn refill(batch: &mut RolloutBatch) {
    batch.clear();
    let obs = [0.25f32; OBS];
    let mask: [bool; ACTIONS] = std::array::from_fn(|a| a % 3 != 1);
    for episode in 0..8usize {
        let len = 20 + 5 * (episode % 4);
        for t in 0..len {
            let done = episode % 4 != 3 && t + 1 == len;
            batch.push_step(&obs, &mask, (episode + t) % ACTIONS, 0.5, -0.2, done);
        }
        batch.close_episode();
    }
    for (i, v) in batch.values_mut().iter_mut().enumerate() {
        *v = (i % 7) as f32 * 0.1;
    }
}

#[test]
fn warm_rollout_batch_advantage_pipeline_does_not_allocate() {
    let mut batch = RolloutBatch::new(OBS, ACTIONS);
    // Warm-up sizes every buffer (observation matrix, flat masks, scalar
    // fields, returns/advantages/targets).
    refill(&mut batch);
    batch.compute_returns(0.99);
    batch.compute_gae(0.99, 0.95);
    batch.set_advantages_to_returns_minus(1.5);
    batch.normalize_advantages();

    // Judged on the minimum over several windows: rare counter pollution
    // from a harness thread cannot fail the test spuriously, while a
    // genuinely allocating pipeline still would.
    let allocations = (0..4)
        .map(|_| {
            count_allocations(|| {
                for _ in 0..5 {
                    refill(&mut batch);
                    batch.compute_returns(0.99);
                    batch.compute_gae(0.99, 0.95);
                    batch.normalize_advantages();
                    batch.set_advantages_to_returns_minus(0.5);
                    batch.normalize_advantages();
                }
            })
        })
        .min()
        .unwrap();
    assert_eq!(
        allocations, 0,
        "rollout batch pipeline allocated in steady state ({allocations} allocations per window)"
    );
}

#[test]
fn warm_batch_append_does_not_allocate() {
    let mut staged = RolloutBatch::new(OBS, ACTIONS);
    refill(&mut staged);
    let mut batch = RolloutBatch::new(OBS, ACTIONS);
    // Warm-up: one append sizes the destination.
    batch.clear();
    batch.append(&staged);
    let allocations = (0..4)
        .map(|_| {
            count_allocations(|| {
                for _ in 0..5 {
                    batch.clear();
                    batch.append(&staged);
                }
            })
        })
        .min()
        .unwrap();
    assert_eq!(allocations, 0, "append allocated in steady state");
}
