//! Property-based tests for the DQN substrate: replay-buffer bounds, masked
//! greedy selection, and ε-decay monotonicity.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tcrm_rl::{DqnAgent, DqnConfig, QNetwork, ReplayBuffer, ReplayTransition, Step};

fn transition(tag: usize) -> ReplayTransition {
    ReplayTransition {
        observation: vec![tag as f32, 1.0],
        action: tag % 3,
        reward: tag as f64,
        next_observation: vec![0.0, 0.0],
        next_mask: vec![true, true, true],
        done: tag.is_multiple_of(5),
    }
}

proptest! {
    /// The replay buffer never exceeds its capacity and always retains the
    /// most recent transitions.
    #[test]
    fn replay_buffer_respects_capacity(capacity in 1usize..128, pushes in 0usize..400) {
        let mut buf = ReplayBuffer::new(capacity);
        for i in 0..pushes {
            buf.push(transition(i));
        }
        prop_assert!(buf.len() <= capacity);
        prop_assert_eq!(buf.len(), pushes.min(capacity));
        if pushes > 0 {
            let mut rng = StdRng::seed_from_u64(1);
            let sample = buf.sample(32, &mut rng);
            prop_assert_eq!(sample.len(), 32);
            // Every sampled transition is one of the `capacity` most recent.
            let oldest_kept = pushes.saturating_sub(capacity);
            for t in sample {
                prop_assert!(t.reward as usize >= oldest_kept);
            }
        }
    }

    /// Masked greedy selection never returns an infeasible action, for any
    /// observation and any non-empty mask.
    #[test]
    fn greedy_masked_never_selects_masked_actions(
        obs in prop::collection::vec(-5.0f32..5.0, 6),
        mask_bits in prop::collection::vec(prop::bool::ANY, 4),
        seed in 0u64..1000,
    ) {
        let mut mask = mask_bits;
        if !mask.iter().any(|&m| m) {
            mask[0] = true; // the environment contract guarantees one feasible action
        }
        let q = QNetwork::new(6, &[8], 4, seed);
        let action = q.greedy_masked(&obs, &mask);
        prop_assert!(mask[action], "picked masked action {action} with mask {mask:?}");
        // And the reported maximum matches the picked action's Q-value.
        let values = q.q_values(&obs);
        let m = q.max_masked(&obs, &mask).unwrap();
        prop_assert!((m - values[action]).abs() < 1e-6);
    }

    /// ε-greedy selection also respects the mask, for any exploration rate.
    #[test]
    fn select_action_respects_mask(
        eps in 0.0f64..1.0,
        mask_bits in prop::collection::vec(prop::bool::ANY, 5),
        seed in 0u64..500,
    ) {
        let mut mask = mask_bits;
        if !mask.iter().any(|&m| m) {
            mask[2] = true;
        }
        let cfg = DqnConfig {
            epsilon_start: eps,
            epsilon_end: eps,
            epsilon_decay_steps: 1,
            ..DqnConfig::default()
        };
        let mut agent = DqnAgent::new(3, 5, &[4], seed, cfg);
        let step = Step::new(vec![0.1, -0.2, 0.3], mask.clone());
        for _ in 0..20 {
            let a = agent.select_action(&step);
            prop_assert!(mask[a], "ε-greedy picked masked action {a} with mask {mask:?}");
        }
    }

    /// ε decays monotonically from start to end as environment steps accrue.
    #[test]
    fn epsilon_is_monotone_nonincreasing(start in 0.2f64..1.0, end in 0.0f64..0.2, decay in 1usize..200) {
        let cfg = DqnConfig {
            epsilon_start: start,
            epsilon_end: end,
            epsilon_decay_steps: decay,
            warmup: usize::MAX, // never train inside this test
            ..DqnConfig::default()
        };
        let mut agent = DqnAgent::new(2, 2, &[4], 9, cfg);
        let next = Step::new(vec![0.0, 0.0], vec![true, true]);
        let mut last = agent.epsilon();
        prop_assert!((last - start).abs() < 1e-12);
        for _ in 0..decay + 10 {
            agent.observe(vec![0.0, 0.0], 0, 0.0, &next, false);
            let eps = agent.epsilon();
            prop_assert!(eps <= last + 1e-12, "epsilon increased: {last} -> {eps}");
            last = eps;
        }
        prop_assert!((last - end).abs() < 1e-9, "epsilon should reach its floor");
    }
}
