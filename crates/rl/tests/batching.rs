//! Batched inference must agree with per-row inference: the decision-epoch
//! and replay-bootstrap hot paths score whole batches with one forward pass,
//! and the result has to be indistinguishable (within float tolerance) from
//! scoring every row separately through `forward_vec`.

use proptest::prelude::*;
use tcrm_nn::{Matrix, Workspace};
use tcrm_rl::{CategoricalPolicy, QNetwork, ValueNet};

fn stack(rows: &[Vec<f32>]) -> Matrix {
    let cols = rows[0].len();
    let mut m = Matrix::zeros(rows.len(), cols);
    for (r, row) in rows.iter().enumerate() {
        m.row_mut(r).copy_from_slice(row);
    }
    m
}

fn arb_batch(rows: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(prop::collection::vec(-2.0f32..2.0, dim), rows..=rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_q_scoring_matches_per_row(
        batch in arb_batch(9, 17),
        seed in 0u64..50,
    ) {
        let q = QNetwork::new(17, &[24, 12], 7, seed);
        let stacked = stack(&batch);
        let mut ws = Workspace::new();
        let batched = q.q_values_batch_ws(&stacked, &mut ws);
        for (r, obs) in batch.iter().enumerate() {
            let per_row = q.q_values(obs);
            prop_assert_eq!(per_row.len(), batched.cols());
            for (a, (x, y)) in per_row.iter().zip(batched.row(r)).enumerate() {
                prop_assert!(
                    (x - y).abs() < 1e-5,
                    "row {r} action {a}: per-row {x} vs batched {y}"
                );
            }
        }
    }

    #[test]
    fn batched_policy_logits_match_per_row(
        batch in arb_batch(6, 11),
        seed in 0u64..50,
    ) {
        let policy = CategoricalPolicy::new(11, &[16], 5, seed);
        let stacked = stack(&batch);
        let mut ws = Workspace::new();
        let batched = policy.logits_batch_ws(&stacked, &mut ws);
        for (r, obs) in batch.iter().enumerate() {
            for (x, y) in policy.logits(obs).iter().zip(batched.row(r)) {
                prop_assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn batched_values_match_per_row(
        batch in arb_batch(8, 13),
        seed in 0u64..50,
    ) {
        let value = ValueNet::new(13, &[16, 8], seed);
        let stacked = stack(&batch);
        let mut ws = Workspace::new();
        let batched = value.values_batch_ws(&stacked, &mut ws);
        prop_assert_eq!(batched.cols(), 1);
        for (r, obs) in batch.iter().enumerate() {
            let single = value.value(obs);
            prop_assert!((single - batched.get(r, 0)).abs() < 1e-5);
        }
    }
}
