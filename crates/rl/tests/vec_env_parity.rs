//! Parity proofs for the vectorized rollout path.
//!
//! 1. A one-environment [`VecEnv`] pool trained through
//!    [`Trainer::train_in_place_vec`] must reproduce the legacy
//!    single-environment loop *seed for seed*: identical per-iteration
//!    returns and step counts, losses and final weights within 1e-6 (they
//!    are bitwise-identical in practice — both paths run the same forward
//!    shapes — but the assertions leave float slack).
//! 2. A property test that the lockstep scatter/reset discipline preserves
//!    per-environment episode boundaries under ragged episode lengths: every
//!    episode collected through an N-slot pool is step-for-step identical to
//!    running that episode on a standalone environment.

use proptest::prelude::*;
use tcrm_rl::{
    A2c, A2cConfig, Algorithm, Environment, Ppo, PpoConfig, Reinforce, ReinforceConfig, Step,
    Trainer, TrainerConfig, TrainingHistory, Transition, ValueNet, VecEnv,
};

const OBS: usize = 6;
const ACTIONS: usize = 3;

/// A deterministic environment whose episode length depends on the reset
/// seed (2..=6 steps), so concurrent pool slots finish at different times
/// and slots are reseated mid-iteration.
#[derive(Default)]
struct RaggedEnv {
    pos: usize,
    steps: usize,
    horizon: usize,
}

impl RaggedEnv {
    fn observe(&self) -> Vec<f32> {
        let mut obs = vec![0.0; OBS];
        obs[self.pos] = 1.0;
        obs[self.steps % OBS] += 0.5;
        obs
    }

    fn feasible(&self) -> Vec<bool> {
        if self.steps.is_multiple_of(2) {
            vec![true, false, true]
        } else {
            vec![true, true, false]
        }
    }
}

impl Environment for RaggedEnv {
    fn observation_dim(&self) -> usize {
        OBS
    }
    fn action_count(&self) -> usize {
        ACTIONS
    }
    fn reset(&mut self, seed: u64) -> Step {
        self.pos = (seed % 3) as usize;
        self.steps = 0;
        self.horizon = 2 + (seed % 5) as usize;
        Step::new(self.observe(), self.feasible())
    }
    fn step(&mut self, action: usize) -> Transition {
        self.steps += 1;
        self.pos = (self.pos + action + 1) % OBS;
        let reward = if action == 0 {
            1.0
        } else {
            0.25 * action as f64
        };
        let done = self.steps >= self.horizon;
        Transition {
            reward,
            done,
            next: Step::new(self.observe(), self.feasible()),
        }
    }
}

/// max_steps_per_episode = 4 < max horizon 6, so some episodes truncate
/// (non-terminal final step) — the hard case for boundary handling.
fn config() -> TrainerConfig {
    TrainerConfig {
        episodes_per_iteration: 6,
        iterations: 4,
        max_steps_per_episode: 4,
        seed: 13,
    }
}

fn probe_logits<A: Algorithm>(algo: &A) -> Vec<f32> {
    let mut out = Vec::new();
    for p in 0..3 {
        let mut obs = vec![0.0f32; OBS];
        obs[p] = 1.0;
        obs[(p + 2) % OBS] = 0.5;
        out.extend(algo.policy().logits(&obs));
    }
    out
}

fn assert_history_parity(legacy: &TrainingHistory, vec: &TrainingHistory) {
    assert_eq!(legacy.iterations.len(), vec.iterations.len());
    for (l, v) in legacy.iterations.iter().zip(vec.iterations.iter()) {
        assert_eq!(l.mean_return, v.mean_return, "iter {}", l.iteration);
        assert_eq!(l.min_return, v.min_return);
        assert_eq!(l.max_return, v.max_return);
        assert_eq!(l.mean_length, v.mean_length);
        assert_eq!(l.update.steps, v.update.steps, "episode boundaries moved");
        assert!((l.update.policy_loss - v.update.policy_loss).abs() <= 1e-6);
        assert!((l.update.value_loss - v.update.value_loss).abs() <= 1e-6);
        assert!((l.update.entropy - v.update.entropy).abs() <= 1e-6);
    }
}

fn check_parity<A: Algorithm, F: Fn() -> A>(make: F) {
    let legacy_history;
    let legacy_probe;
    {
        let mut algo = make();
        let mut env = RaggedEnv::default();
        legacy_history = Trainer::new(config()).train_in_place(&mut env, &mut algo);
        legacy_probe = probe_logits(&algo);
    }
    let vec_history;
    let vec_probe;
    {
        let mut algo = make();
        let mut pool = VecEnv::new(vec![RaggedEnv::default()]);
        vec_history = Trainer::new(config()).train_in_place_vec(&mut pool, &mut algo);
        vec_probe = probe_logits(&algo);
    }
    assert_history_parity(&legacy_history, &vec_history);
    for (a, b) in legacy_probe.iter().zip(vec_probe.iter()) {
        assert!((a - b).abs() <= 1e-6, "final weights diverged: {a} vs {b}");
    }
}

#[test]
fn vec_env_1_matches_legacy_trainer_reinforce() {
    check_parity(|| {
        Reinforce::new(
            tcrm_rl::CategoricalPolicy::new(OBS, &[16, 8], ACTIONS, 1),
            ReinforceConfig::default(),
        )
    });
}

#[test]
fn vec_env_1_matches_legacy_trainer_a2c() {
    check_parity(|| {
        A2c::new(
            tcrm_rl::CategoricalPolicy::new(OBS, &[16, 8], ACTIONS, 1),
            ValueNet::new(OBS, &[16], 2),
            A2cConfig::default(),
        )
    });
}

#[test]
fn vec_env_1_matches_legacy_trainer_ppo() {
    check_parity(|| {
        Ppo::new(
            tcrm_rl::CategoricalPolicy::new(OBS, &[16, 8], ACTIONS, 1),
            ValueNet::new(OBS, &[16], 2),
            PpoConfig {
                epochs: 2,
                minibatch_size: 8,
                ..Default::default()
            },
        )
    });
}

#[test]
fn multi_env_training_runs_and_covers_all_episodes() {
    // Numerics legitimately differ from the single-env path when batched
    // rows flow through wider kernels, but the episode accounting must not.
    let mut algo = Ppo::new(
        tcrm_rl::CategoricalPolicy::new(OBS, &[16, 8], ACTIONS, 1),
        ValueNet::new(OBS, &[16], 2),
        PpoConfig::default(),
    );
    let mut pool = VecEnv::new((0..4).map(|_| RaggedEnv::default()).collect());
    let history = Trainer::new(config()).train_in_place_vec(&mut pool, &mut algo);
    assert_eq!(history.iterations.len(), config().iterations);
    for stats in &history.iterations {
        // 6 episodes of 2..=4 steps each.
        assert!(stats.update.steps >= 12 && stats.update.steps <= 24);
        assert!(stats.mean_length >= 2.0 && stats.mean_length <= 4.0);
        assert!(stats.mean_return.is_finite());
    }
}

// ---------------------------------------------------------------------------
// Property: lockstep scatter/reset preserves per-env episode boundaries
// ---------------------------------------------------------------------------

type EpisodeRecord = Vec<(Vec<f32>, f64, bool)>;

fn scripted_action(mask: &[bool], episode: usize, step: usize, script: &[usize]) -> usize {
    let a = script[(episode + step) % script.len()];
    if mask[a] {
        a
    } else {
        mask.iter().position(|&m| m).expect("no feasible action")
    }
}

fn collect_pool(
    num_envs: usize,
    episodes: usize,
    base_seed: u64,
    script: &[usize],
    max_steps: usize,
) -> Vec<EpisodeRecord> {
    let mut pool = VecEnv::new((0..num_envs).map(|_| RaggedEnv::default()).collect());
    let mut out: Vec<EpisodeRecord> = vec![Vec::new(); episodes];
    let mut episode_of = vec![0usize; num_envs];
    let mut steps = vec![0usize; num_envs];
    let mut next = 0usize;
    for slot in 0..num_envs {
        if next < episodes {
            pool.reset_env(slot, base_seed + next as u64);
            episode_of[slot] = next;
            steps[slot] = 0;
            next += 1;
        } else {
            pool.deactivate(slot);
        }
    }
    let mut finished = 0usize;
    while finished < episodes {
        let active: Vec<usize> = (0..num_envs).filter(|&i| pool.is_active(i)).collect();
        let pre: Vec<(usize, Vec<f32>)> = active
            .iter()
            .map(|&slot| {
                let a = scripted_action(pool.mask(slot), episode_of[slot], steps[slot], script);
                pool.set_action(slot, a);
                (slot, pool.observation(slot).to_vec())
            })
            .collect();
        pool.step_active();
        for (slot, obs) in pre {
            let e = episode_of[slot];
            out[e].push((obs, pool.reward(slot), pool.done(slot)));
            steps[slot] += 1;
            if pool.done(slot) || steps[slot] >= max_steps {
                finished += 1;
                if next < episodes {
                    pool.reset_env(slot, base_seed + next as u64);
                    episode_of[slot] = next;
                    steps[slot] = 0;
                    next += 1;
                } else {
                    pool.deactivate(slot);
                }
            }
        }
    }
    out
}

fn collect_solo(
    episodes: usize,
    base_seed: u64,
    script: &[usize],
    max_steps: usize,
) -> Vec<EpisodeRecord> {
    let mut env = RaggedEnv::default();
    (0..episodes)
        .map(|e| {
            let mut record = EpisodeRecord::new();
            let mut step = env.reset(base_seed + e as u64);
            for t in 0..max_steps {
                let a = scripted_action(&step.action_mask, e, t, script);
                let tr = env.step(a);
                record.push((step.observation.clone(), tr.reward, tr.done));
                if tr.done {
                    break;
                }
                step = tr.next;
            }
            record
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lockstep_preserves_episode_boundaries(
        num_envs in 1usize..5,
        episodes in 1usize..9,
        base_seed in 0u64..1_000,
        script in prop::collection::vec(0usize..ACTIONS, 1..12),
        max_steps in 2usize..7,
    ) {
        let pooled = collect_pool(num_envs, episodes, base_seed, &script, max_steps);
        let solo = collect_solo(episodes, base_seed, &script, max_steps);
        prop_assert_eq!(pooled, solo);
    }
}
