//! Property-based tests of the RL substrate: return/GAE invariants and the
//! masked categorical policy.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tcrm_rl::{discounted_returns, gae, normalize_advantages, CategoricalPolicy};

fn arb_rewards(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-5.0f64..5.0, 1..n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ------------------------------------------------------------------
    // Returns
    // ------------------------------------------------------------------

    #[test]
    fn returns_satisfy_the_bellman_recursion(rewards in arb_rewards(40), gamma in 0.5f64..1.0) {
        let mut dones = vec![false; rewards.len()];
        *dones.last_mut().unwrap() = true;
        let returns = discounted_returns(&rewards, &dones, gamma);
        for t in 0..rewards.len() {
            let expected = if t + 1 < rewards.len() && !dones[t] {
                rewards[t] + gamma * returns[t + 1]
            } else {
                rewards[t]
            };
            prop_assert!((returns[t] - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn returns_are_bounded_by_geometric_series(rewards in arb_rewards(40), gamma in 0.0f64..0.99) {
        let mut dones = vec![false; rewards.len()];
        *dones.last_mut().unwrap() = true;
        let returns = discounted_returns(&rewards, &dones, gamma);
        let max_abs = rewards.iter().map(|r| r.abs()).fold(0.0f64, f64::max);
        let bound = max_abs / (1.0 - gamma) + 1e-9;
        prop_assert!(returns.iter().all(|g| g.abs() <= bound));
    }

    #[test]
    fn episode_boundaries_isolate_returns(
        first in arb_rewards(10),
        second in arb_rewards(10),
        gamma in 0.5f64..1.0,
    ) {
        // Concatenating two episodes must give the same returns as computing
        // them separately.
        let mut rewards = first.clone();
        rewards.extend(second.clone());
        let mut dones = vec![false; rewards.len()];
        dones[first.len() - 1] = true;
        *dones.last_mut().unwrap() = true;

        let combined = discounted_returns(&rewards, &dones, gamma);
        let mut d1 = vec![false; first.len()];
        *d1.last_mut().unwrap() = true;
        let mut d2 = vec![false; second.len()];
        *d2.last_mut().unwrap() = true;
        let separate: Vec<f64> = discounted_returns(&first, &d1, gamma)
            .into_iter()
            .chain(discounted_returns(&second, &d2, gamma))
            .collect();
        for (a, b) in combined.iter().zip(separate.iter()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    // ------------------------------------------------------------------
    // GAE
    // ------------------------------------------------------------------

    #[test]
    fn gae_targets_equal_advantage_plus_value(
        rewards in arb_rewards(30),
        gamma in 0.8f64..1.0,
        lambda in 0.0f64..1.0,
    ) {
        let values: Vec<f32> = rewards.iter().map(|r| (*r as f32) * 0.3).collect();
        let mut dones = vec![false; rewards.len()];
        *dones.last_mut().unwrap() = true;
        let (adv, targets) = gae(&rewards, &values, &dones, 0.0, gamma, lambda);
        for t in 0..rewards.len() {
            prop_assert!((targets[t] - (adv[t] + values[t] as f64)).abs() < 1e-9);
            prop_assert!(adv[t].is_finite());
        }
    }

    #[test]
    fn gae_with_perfect_critic_gives_zero_advantage(
        values in prop::collection::vec(-3.0f64..3.0, 2..20),
        gamma in 0.5f64..1.0,
    ) {
        // If rewards are exactly the one-step TD-consistent values, λ=0
        // advantages are zero.
        let n = values.len();
        let mut rewards = vec![0.0; n];
        let mut dones = vec![false; n];
        dones[n - 1] = true;
        for t in 0..n {
            let next = if t + 1 < n { values[t + 1] } else { 0.0 };
            rewards[t] = values[t] - gamma * next;
        }
        let values_f32: Vec<f32> = values.iter().map(|v| *v as f32).collect();
        let (adv, _) = gae(&rewards, &values_f32, &dones, 0.0, gamma, 0.0);
        prop_assert!(adv.iter().all(|a| a.abs() < 1e-3), "advantages {adv:?}");
    }

    #[test]
    fn advantage_normalisation_is_affine_invariant_in_ranking(
        mut adv in prop::collection::vec(-10.0f64..10.0, 3..30),
    ) {
        let original = adv.clone();
        normalize_advantages(&mut adv);
        let mean: f64 = adv.iter().sum::<f64>() / adv.len() as f64;
        prop_assert!(mean.abs() < 1e-6);
        // Ranking is preserved.
        for i in 0..adv.len() {
            for j in 0..adv.len() {
                if original[i] < original[j] {
                    prop_assert!(adv[i] <= adv[j] + 1e-9);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Masked categorical policy
    // ------------------------------------------------------------------

    #[test]
    fn policy_probabilities_are_valid_distributions(
        seed in 0u64..100,
        obs in prop::collection::vec(-1.0f32..1.0, 6),
        mask in prop::collection::vec(any::<bool>(), 9),
    ) {
        let policy = CategoricalPolicy::new(6, &[12], 9, seed);
        let probs = policy.probabilities(&obs, &mask);
        prop_assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        if mask.iter().any(|&m| m) {
            for (p, &m) in probs.iter().zip(mask.iter()) {
                if !m {
                    prop_assert_eq!(*p, 0.0);
                }
            }
            // Greedy and sampled actions are always feasible.
            let greedy = policy.greedy(&obs, &mask);
            prop_assert!(mask[greedy]);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..20 {
                let (a, log_prob, _) = policy.sample(&obs, &mask, &mut rng);
                prop_assert!(mask[a]);
                prop_assert!(log_prob <= 1e-6);
            }
        }
    }

    #[test]
    fn policy_entropy_is_bounded_by_log_of_feasible_actions(
        seed in 0u64..50,
        obs in prop::collection::vec(-1.0f32..1.0, 5),
        mask in prop::collection::vec(any::<bool>(), 7),
    ) {
        prop_assume!(mask.iter().any(|&m| m));
        let policy = CategoricalPolicy::new(5, &[8], 7, seed);
        let entropy = policy.entropy(&obs, &mask);
        let feasible = mask.iter().filter(|&&m| m).count() as f32;
        prop_assert!(entropy >= -1e-6);
        prop_assert!(entropy <= feasible.ln() + 1e-4);
    }
}
