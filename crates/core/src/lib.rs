//! # tcrm-core — the paper's primary contribution
//!
//! Deep-reinforcement-learning based, **elasticity-compatible**,
//! **heterogeneous** resource management for **time-critical** computing
//! (ICPP 2020 reproduction).
//!
//! The crate assembles the scheduler the paper proposes from the substrates
//! in the rest of the workspace:
//!
//! * [`state::StateEncoder`] — compact observation of the heterogeneous
//!   cluster (per node class free capacity and speed factors), the head of
//!   the deadline-sorted job queue, the running jobs most at risk, and global
//!   backlog aggregates;
//! * [`action::ActionSpace`] — a discrete action space whose start actions
//!   jointly pick *which job*, *which node class* and *which degree of
//!   parallelism*, and whose scale actions grow/shrink running malleable jobs
//!   (the elasticity-compatible part), with full feasibility masking;
//! * [`reward::RewardTracker`] — time-utility reward shaping (plus the
//!   miss-penalty and slowdown variants used by the reward ablation);
//! * [`env::SchedulingEnv`] — the MDP formulation: an [`tcrm_rl::Environment`]
//!   wrapping the discrete-event simulator;
//! * [`train::train_agent`] — training orchestration over REINFORCE / A2C /
//!   PPO learners;
//! * [`agent::DrlScheduler`] — the trained policy packaged as a
//!   [`tcrm_sim::Scheduler`], directly comparable with every baseline, with
//!   JSON checkpointing.
//!
//! ```no_run
//! use tcrm_core::{train_agent, TrainSetup};
//!
//! // Train a small agent and let it schedule a fresh workload.
//! let outcome = train_agent(&TrainSetup::smoke());
//! let cluster = tcrm_sim::ClusterSpec::tiny();
//! let jobs: Vec<_> =
//!     tcrm_workload::SyntheticSource::new(&tcrm_workload::WorkloadSpec::tiny(), &cluster, 7)
//!         .unwrap()
//!         .collect();
//! let mut agent = outcome.agent;
//! let result = tcrm_sim::Simulator::new(cluster, tcrm_sim::SimConfig::default())
//!     .run(jobs, &mut agent);
//! println!("miss rate: {:.1}%", result.summary.miss_rate * 100.0);
//! ```

pub mod action;
pub mod agent;
pub mod config;
pub mod env;
pub mod reward;
pub mod state;
pub mod train;

pub use action::{ActionMeaning, ActionSpace};
pub use agent::DrlScheduler;
pub use config::{AgentConfig, LearnerKind, RewardConfig, RewardKind, TrainConfig};
pub use env::{EpisodeSource, SchedulingEnv};
pub use reward::RewardTracker;
pub use state::StateEncoder;
pub use train::{train_agent, TrainOutcome, TrainSetup};
