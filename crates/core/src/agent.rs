//! The trained DRL scheduler, usable anywhere a [`tcrm_sim::Scheduler`] is
//! expected, plus checkpointing.

use crate::action::ActionSpace;
use crate::config::AgentConfig;
use crate::state::StateEncoder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;
use tcrm_rl::CategoricalPolicy;
use tcrm_sim::{Action, ClusterView, Scheduler};

/// A deep-RL scheduler: the trained policy wrapped with the state encoder and
/// action decoder, exposed through the simulator's [`Scheduler`] trait so it
/// can be compared head-to-head with every baseline.
#[derive(Debug, Clone)]
pub struct DrlScheduler {
    name: String,
    config: AgentConfig,
    encoder: StateEncoder,
    actions: ActionSpace,
    policy: CategoricalPolicy,
    greedy: bool,
    rng: StdRng,
    seed: u64,
    /// Time of the decision epoch currently being served and the number of
    /// actions already issued for it (the engine re-invokes `decide` after
    /// every applied action; bounding the per-epoch action count keeps an
    /// untrained or degenerate policy from re-scaling jobs forever within a
    /// single epoch).
    epoch_time: f64,
    epoch_decisions: usize,
}

impl DrlScheduler {
    /// Wrap a trained policy. `num_classes` must match the cluster the policy
    /// was trained for (the observation and action layouts depend on it).
    pub fn new(policy: CategoricalPolicy, config: AgentConfig, num_classes: usize) -> Self {
        let encoder = StateEncoder::new(&config, num_classes);
        let actions = ActionSpace::new(&config, num_classes);
        debug_assert_eq!(policy.observation_dim(), encoder.observation_dim());
        debug_assert_eq!(policy.action_count(), actions.action_count());
        DrlScheduler {
            name: "drl".to_string(),
            config,
            encoder,
            actions,
            policy,
            greedy: true,
            rng: StdRng::seed_from_u64(0),
            seed: 0,
            epoch_time: f64::NEG_INFINITY,
            epoch_decisions: 0,
        }
    }

    /// Rename the scheduler (used by ablations: `drl-rigid`,
    /// `drl-class-blind`, …).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Use stochastic (sampled) actions instead of greedy argmax.
    pub fn stochastic(mut self, seed: u64) -> Self {
        self.greedy = false;
        self.seed = seed;
        self.rng = StdRng::seed_from_u64(seed);
        self
    }

    /// The agent configuration.
    pub fn config(&self) -> &AgentConfig {
        &self.config
    }

    /// The wrapped policy.
    pub fn policy(&self) -> &CategoricalPolicy {
        &self.policy
    }

    /// Pick one action index for a view (exposed for decision-latency
    /// benchmarks).
    pub fn select_action(&mut self, view: &ClusterView) -> usize {
        let obs = self.encoder.encode(view);
        let mask = self.actions.mask(view, &self.encoder);
        if self.greedy {
            self.policy.greedy(&obs, &mask)
        } else {
            self.policy.sample(&obs, &mask, &mut self.rng).0
        }
    }

    /// Save the agent (config + policy weights) to a JSON checkpoint.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let checkpoint = AgentCheckpoint {
            config: self.config.clone(),
            num_classes: self.actions_num_classes(),
            policy_json: self
                .policy
                .to_json()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
        };
        let json = serde_json::to_string(&checkpoint)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        fs::write(path, json)
    }

    /// Load an agent from a JSON checkpoint.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let json = fs::read_to_string(path)?;
        let checkpoint: AgentCheckpoint = serde_json::from_str(&json)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let policy = CategoricalPolicy::from_json(&checkpoint.policy_json)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Ok(DrlScheduler::new(
            policy,
            checkpoint.config,
            checkpoint.num_classes,
        ))
    }

    fn actions_num_classes(&self) -> usize {
        // The action space is (slots × classes × levels) + 2·running + 1.
        let per_slot = (self.actions.action_count() - 2 * self.config.running_slots - 1)
            / self.config.queue_slots;
        per_slot / self.config.parallelism_levels
    }

    /// Emergency fallback when the policy refuses to schedule even though
    /// nothing else can ever happen: start the most urgent feasible job at
    /// its minimum parallelism so the run cannot deadlock. Returns `None`
    /// when nothing is feasible.
    fn fallback_start(&self, view: &ClusterView) -> Option<Action> {
        let jobs = self.encoder.queue_slot_jobs(view);
        for job in jobs {
            for class in &view.classes {
                if view.can_start(job, class.id, job.min_parallelism) {
                    return Some(Action::Start {
                        job: job.id,
                        class: class.id,
                        parallelism: job.min_parallelism,
                    });
                }
            }
        }
        None
    }
}

impl Scheduler for DrlScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_simulation_start(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
        self.epoch_time = f64::NEG_INFINITY;
        self.epoch_decisions = 0;
    }

    fn reset(&mut self, seed: u64) {
        // Greedy agents are seed-independent; stochastic ones re-derive their
        // action RNG from the replication seed so a reused instance matches a
        // freshly built `.stochastic(seed)` agent.
        if !self.greedy {
            self.seed = seed;
        }
        self.rng = StdRng::seed_from_u64(self.seed);
        self.epoch_time = f64::NEG_INFINITY;
        self.epoch_decisions = 0;
    }

    fn decide(&mut self, view: &ClusterView) -> Vec<Action> {
        // Bound the number of actions issued at one decision epoch.
        if (view.time - self.epoch_time).abs() < 1e-12 {
            self.epoch_decisions += 1;
        } else {
            self.epoch_time = view.time;
            self.epoch_decisions = 0;
        }
        if self.epoch_decisions > self.config.queue_slots + self.config.running_slots {
            return vec![Action::Wait];
        }
        let index = self.select_action(view);
        let action = self
            .actions
            .decode(index, view, &self.encoder)
            .unwrap_or(Action::Wait);
        if matches!(action, Action::Wait)
            && view.running.is_empty()
            && view.future_arrivals == 0
            && !view.pending.is_empty()
        {
            // The engine would otherwise abort the run and forfeit every
            // pending job; fall back to a safe minimal start.
            if let Some(fallback) = self.fallback_start(view) {
                return vec![fallback];
            }
        }
        vec![action]
    }
}

/// Serialised agent: configuration plus policy weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct AgentCheckpoint {
    config: AgentConfig,
    num_classes: usize,
    policy_json: String,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcrm_sim::prelude::*;
    use tcrm_workload::{SyntheticSource, WorkloadSpec};

    fn jobs_for(spec: &WorkloadSpec, cluster: &ClusterSpec, seed: u64) -> Vec<Job> {
        SyntheticSource::new(spec, cluster, seed)
            .expect("valid spec")
            .collect()
    }

    fn fresh_agent() -> DrlScheduler {
        let config = AgentConfig::small();
        let encoder = StateEncoder::new(&config, 4);
        let actions = ActionSpace::new(&config, 4);
        let policy = CategoricalPolicy::new(
            encoder.observation_dim(),
            &config.policy_hidden,
            actions.action_count(),
            42,
        );
        DrlScheduler::new(policy, config, 4)
    }

    #[test]
    fn untrained_agent_completes_a_small_workload() {
        let cluster = ClusterSpec::icpp_default();
        let jobs = jobs_for(
            &WorkloadSpec::icpp_default()
                .with_num_jobs(20)
                .with_load(0.5),
            &cluster,
            1,
        );
        let mut agent = fresh_agent();
        let result = Simulator::new(cluster, SimConfig::default()).run(jobs, &mut agent);
        assert_eq!(result.summary.total_jobs, 20);
        // The fallback guarantees nothing is forfeited on an idle cluster.
        assert_eq!(result.summary.unfinished_jobs, 0);
    }

    #[test]
    fn greedy_agent_is_deterministic() {
        let cluster = ClusterSpec::icpp_default();
        let jobs = jobs_for(
            &WorkloadSpec::icpp_default()
                .with_num_jobs(15)
                .with_load(0.7),
            &cluster,
            3,
        );
        let mut a = fresh_agent();
        let mut b = fresh_agent();
        let ra = Simulator::new(cluster.clone(), SimConfig::default()).run(jobs.clone(), &mut a);
        let rb = Simulator::new(cluster, SimConfig::default()).run(jobs, &mut b);
        assert_eq!(ra.summary, rb.summary);
    }

    #[test]
    fn checkpoint_roundtrip_preserves_decisions() {
        let agent = fresh_agent();
        let dir = std::env::temp_dir().join("tcrm-agent-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("agent.json");
        agent.save(&path).unwrap();
        let mut restored = DrlScheduler::load(&path).unwrap();
        let mut original = agent;
        // Same decisions on the same workload.
        let cluster = ClusterSpec::icpp_default();
        let jobs = jobs_for(
            &WorkloadSpec::icpp_default()
                .with_num_jobs(10)
                .with_load(0.6),
            &cluster,
            7,
        );
        let ra =
            Simulator::new(cluster.clone(), SimConfig::default()).run(jobs.clone(), &mut original);
        let rb = Simulator::new(cluster, SimConfig::default()).run(jobs, &mut restored);
        assert_eq!(ra.summary, rb.summary);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn name_and_modes() {
        let agent = fresh_agent().with_name("drl-rigid");
        assert_eq!(agent.name(), "drl-rigid");
        let stochastic = fresh_agent().stochastic(9);
        assert!(!stochastic.greedy);
    }
}
