//! High-level training orchestration: build the environment, pick a learner,
//! run the training loop, and hand back a ready-to-use [`DrlScheduler`].

use crate::action::ActionSpace;
use crate::agent::DrlScheduler;
use crate::config::{AgentConfig, LearnerKind, TrainConfig};
use crate::env::{EpisodeSource, SchedulingEnv};
use crate::state::StateEncoder;
use serde::{Deserialize, Serialize};
use tcrm_rl::{
    A2c, A2cConfig, Algorithm, CategoricalPolicy, Ppo, PpoConfig, Reinforce, ReinforceConfig,
    Trainer, TrainerConfig, TrainingHistory, ValueNet, VecEnv,
};
use tcrm_sim::{ClusterSpec, SimConfig};
use tcrm_workload::WorkloadSpec;

/// Everything needed to train one agent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainSetup {
    /// The cluster the agent is trained for.
    pub cluster: ClusterSpec,
    /// The workload family episodes are sampled from.
    pub workload: WorkloadSpec,
    /// Simulator knobs.
    pub sim: SimConfig,
    /// Observation/action/reward configuration.
    pub agent: AgentConfig,
    /// Learner and training-loop hyper-parameters.
    pub train: TrainConfig,
}

impl TrainSetup {
    /// The default setup used by the paper-style experiments.
    pub fn icpp_default() -> Self {
        TrainSetup {
            cluster: ClusterSpec::icpp_default(),
            workload: WorkloadSpec::icpp_default(),
            sim: SimConfig::default(),
            agent: AgentConfig::default(),
            train: TrainConfig::default(),
        }
    }

    /// A minutes-scale setup for tests, examples and CI smoke runs.
    pub fn smoke() -> Self {
        TrainSetup {
            cluster: ClusterSpec::tiny(),
            workload: WorkloadSpec::tiny(),
            sim: SimConfig::default(),
            agent: AgentConfig::small(),
            train: TrainConfig::smoke(),
        }
    }
}

/// The outcome of a training run: the greedy inference agent plus the
/// training history (the convergence figure's data).
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// The trained scheduler (greedy inference mode).
    pub agent: DrlScheduler,
    /// Per-iteration training statistics.
    pub history: TrainingHistory,
}

/// Train a DRL scheduler according to `setup`.
///
/// Rollouts run through a lockstep [`VecEnv`] pool of
/// `setup.train.num_envs` environments (minimum 1): every decision step is
/// one batched policy forward over all live environments. `num_envs == 1`
/// reproduces the historical single-environment trainer seed for seed.
pub fn train_agent(setup: &TrainSetup) -> TrainOutcome {
    setup.agent.validate().expect("invalid agent config");
    let num_classes = setup.cluster.num_classes();
    let encoder = StateEncoder::new(&setup.agent, num_classes);
    let actions = ActionSpace::new(&setup.agent, num_classes);
    let obs_dim = encoder.observation_dim();
    let action_count = actions.action_count();

    // `EpisodeSource` is not `Clone` (it may box a streaming source), so each
    // pool slot gets its own generated source over the shared workload spec.
    // Episode seeds come from the trainer, not the slot, so the pool size
    // never changes which workloads are trained on.
    let envs: Vec<SchedulingEnv> = (0..setup.train.num_envs.max(1))
        .map(|_| {
            SchedulingEnv::new(
                setup.cluster.clone(),
                setup.sim.clone(),
                &setup.agent,
                EpisodeSource::Generated {
                    spec: setup.workload.clone(),
                    jobs_per_episode: setup.train.jobs_per_episode,
                },
            )
        })
        .collect();
    let mut pool = VecEnv::new(envs);

    let policy = CategoricalPolicy::new(
        obs_dim,
        &setup.agent.policy_hidden,
        action_count,
        setup.train.seed,
    );
    let value = ValueNet::new(obs_dim, &setup.agent.value_hidden, setup.train.seed + 1);

    let trainer_cfg = TrainerConfig {
        episodes_per_iteration: setup.train.episodes_per_iteration,
        iterations: setup.train.iterations,
        max_steps_per_episode: setup.agent.max_steps_per_episode,
        seed: setup.train.seed,
    };
    let mut trainer = Trainer::new(trainer_cfg);

    let (policy, history) = match setup.train.learner {
        LearnerKind::Reinforce => {
            let cfg = ReinforceConfig {
                gamma: setup.train.gamma,
                learning_rate: setup.train.learning_rate,
                entropy_coef: setup.train.entropy_coef,
                ..Default::default()
            };
            let mut algo = Reinforce::new(policy, cfg);
            let history = trainer.train_in_place_vec(&mut pool, &mut algo);
            (algo.policy().clone(), history)
        }
        LearnerKind::A2c => {
            let cfg = A2cConfig {
                gamma: setup.train.gamma,
                learning_rate: setup.train.learning_rate,
                entropy_coef: setup.train.entropy_coef,
                ..Default::default()
            };
            let mut algo = A2c::new(policy, value, cfg);
            let history = trainer.train_in_place_vec(&mut pool, &mut algo);
            (algo.policy().clone(), history)
        }
        LearnerKind::Ppo => {
            let cfg = PpoConfig {
                gamma: setup.train.gamma,
                learning_rate: setup.train.learning_rate,
                entropy_coef: setup.train.entropy_coef,
                seed: setup.train.seed,
                ..Default::default()
            };
            let mut algo = Ppo::new(policy, value, cfg);
            let history = trainer.train_in_place_vec(&mut pool, &mut algo);
            (algo.policy().clone(), history)
        }
    };

    let agent = DrlScheduler::new(policy, setup.agent.clone(), num_classes);
    TrainOutcome { agent, history }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcrm_rl::Environment;
    use tcrm_sim::Scheduler;

    #[test]
    fn smoke_training_produces_a_working_agent() {
        let setup = TrainSetup::smoke();
        let outcome = train_agent(&setup);
        assert_eq!(outcome.history.iterations.len(), setup.train.iterations);
        assert_eq!(outcome.agent.name(), "drl");
        // The returned agent can schedule a workload end to end.
        let jobs: Vec<_> = tcrm_workload::SyntheticSource::new(
            &setup.workload.clone().with_num_jobs(10),
            &setup.cluster,
            123,
        )
        .expect("valid spec")
        .collect();
        let mut agent = outcome.agent;
        let result = tcrm_sim::Simulator::new(setup.cluster.clone(), setup.sim.clone())
            .run(jobs, &mut agent);
        assert_eq!(result.summary.total_jobs, 10);
        assert_eq!(result.summary.unfinished_jobs, 0);
    }

    #[test]
    fn all_learners_run_a_tiny_training_loop() {
        for learner in [LearnerKind::Reinforce, LearnerKind::A2c, LearnerKind::Ppo] {
            let mut setup = TrainSetup::smoke();
            setup.train.learner = learner;
            setup.train.iterations = 2;
            setup.train.episodes_per_iteration = 2;
            setup.train.jobs_per_episode = 6;
            let outcome = train_agent(&setup);
            assert_eq!(outcome.history.iterations.len(), 2);
            assert!(outcome
                .history
                .iterations
                .iter()
                .all(|s| s.mean_return.is_finite()));
        }
    }

    #[test]
    fn vec_pool_of_one_matches_single_env_trainer() {
        // `train_agent` always goes through the VecEnv pool; with
        // `num_envs == 1` it must reproduce the legacy single-environment
        // loop seed for seed.
        let mut setup = TrainSetup::smoke();
        setup.train.num_envs = 1;
        setup.train.iterations = 3;
        let vec_outcome = train_agent(&setup);

        let mut env = SchedulingEnv::new(
            setup.cluster.clone(),
            setup.sim.clone(),
            &setup.agent,
            EpisodeSource::Generated {
                spec: setup.workload.clone(),
                jobs_per_episode: setup.train.jobs_per_episode,
            },
        );
        let policy = CategoricalPolicy::new(
            env.observation_dim(),
            &setup.agent.policy_hidden,
            env.action_count(),
            setup.train.seed,
        );
        let value = ValueNet::new(
            env.observation_dim(),
            &setup.agent.value_hidden,
            setup.train.seed + 1,
        );
        let mut algo = A2c::new(
            policy,
            value,
            A2cConfig {
                gamma: setup.train.gamma,
                learning_rate: setup.train.learning_rate,
                entropy_coef: setup.train.entropy_coef,
                ..Default::default()
            },
        );
        let legacy = Trainer::new(TrainerConfig {
            episodes_per_iteration: setup.train.episodes_per_iteration,
            iterations: setup.train.iterations,
            max_steps_per_episode: setup.agent.max_steps_per_episode,
            seed: setup.train.seed,
        })
        .train_in_place(&mut env, &mut algo);

        assert_eq!(
            legacy.iterations.len(),
            vec_outcome.history.iterations.len()
        );
        for (l, v) in legacy
            .iterations
            .iter()
            .zip(vec_outcome.history.iterations.iter())
        {
            assert_eq!(l.mean_return, v.mean_return, "iteration {}", l.iteration);
            assert_eq!(l.mean_length, v.mean_length);
            assert_eq!(l.update.steps, v.update.steps);
        }
    }

    #[test]
    fn training_history_is_reproducible() {
        let mut setup = TrainSetup::smoke();
        setup.train.iterations = 3;
        let a = train_agent(&setup);
        let b = train_agent(&setup);
        let ra: Vec<f64> = a.history.iterations.iter().map(|s| s.mean_return).collect();
        let rb: Vec<f64> = b.history.iterations.iter().map(|s| s.mean_return).collect();
        assert_eq!(ra, rb);
    }
}
