//! Agent configuration: state encoding, action space, reward shaping, network
//! architecture and training hyper-parameters.

use serde::{Deserialize, Serialize};

/// Which reward shaping the environment uses (Figure 9 ablates these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RewardKind {
    /// Time-utility shaping (default): accrued utility for completions minus
    /// a penalty per deadline miss, plus a small per-step penalty for pending
    /// jobs whose deadline can no longer be met.
    Utility,
    /// Sparse miss-oriented reward: +1 per on-time completion, −1 per miss.
    MissPenalty,
    /// DeepRM-style slowdown shaping: every decision step costs
    /// `−Σ_{jobs in system} Δt / best_case_service(job)`.
    Slowdown,
}

/// Reward-shaping coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardConfig {
    /// Which shaping to use.
    pub kind: RewardKind,
    /// Penalty added (as a negative reward) for every deadline miss.
    pub miss_penalty: f64,
    /// Per-decision-step penalty for each pending job whose deadline has
    /// become infeasible (utility shaping only).
    pub infeasible_pending_penalty: f64,
    /// Scale applied to accrued utility.
    pub utility_scale: f64,
}

impl Default for RewardConfig {
    fn default() -> Self {
        RewardConfig {
            kind: RewardKind::Utility,
            miss_penalty: 1.0,
            infeasible_pending_penalty: 0.02,
            utility_scale: 1.0,
        }
    }
}

/// Everything that defines the agent's observation and action interface plus
/// its networks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentConfig {
    /// Number of queue slots exposed in the observation / action space (jobs
    /// beyond the first `queue_slots` are summarised as backlog features).
    pub queue_slots: usize,
    /// Number of running-job slots exposed for elastic re-scaling actions.
    pub running_slots: usize,
    /// Number of discrete parallelism levels per start action (level 0 = the
    /// job's minimum, the last level = the job's maximum, intermediate levels
    /// spaced evenly).
    pub parallelism_levels: usize,
    /// Whether the agent may emit elastic scale actions and pick parallelism
    /// levels above the minimum (the rigid-DRL ablation sets this to false).
    pub elastic_actions: bool,
    /// Whether the state encodes per-node-class capacities and speed factors
    /// (the heterogeneity-blind ablation sets this to false, pooling all
    /// classes into identical averaged features).
    pub heterogeneity_aware: bool,
    /// Hidden layer widths of the policy network.
    pub policy_hidden: Vec<usize>,
    /// Hidden layer widths of the value network.
    pub value_hidden: Vec<usize>,
    /// Reward shaping.
    pub reward: RewardConfig,
    /// Hard cap on environment steps per episode (safety net).
    pub max_steps_per_episode: usize,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            queue_slots: 10,
            running_slots: 5,
            parallelism_levels: 3,
            elastic_actions: true,
            heterogeneity_aware: true,
            policy_hidden: vec![128, 64],
            value_hidden: vec![128, 64],
            reward: RewardConfig::default(),
            max_steps_per_episode: 4_000,
        }
    }
}

impl AgentConfig {
    /// A configuration with elasticity disabled (rigid-DRL ablation).
    pub fn rigid(mut self) -> Self {
        self.elastic_actions = false;
        self
    }

    /// A configuration with heterogeneity-blind state encoding
    /// (heterogeneity ablation).
    pub fn heterogeneity_blind(mut self) -> Self {
        self.heterogeneity_aware = false;
        self
    }

    /// A small configuration for unit tests and quick examples.
    pub fn small() -> Self {
        AgentConfig {
            queue_slots: 4,
            running_slots: 2,
            parallelism_levels: 2,
            policy_hidden: vec![32],
            value_hidden: vec![32],
            max_steps_per_episode: 1_500,
            ..Default::default()
        }
    }

    /// Set the reward kind.
    pub fn with_reward(mut self, kind: RewardKind) -> Self {
        self.reward.kind = kind;
        self
    }

    /// Structural validation.
    pub fn validate(&self) -> Result<(), String> {
        if self.queue_slots == 0 {
            return Err("queue_slots must be >= 1".into());
        }
        if self.parallelism_levels == 0 {
            return Err("parallelism_levels must be >= 1".into());
        }
        if self.policy_hidden.is_empty() || self.value_hidden.is_empty() {
            return Err("networks need at least one hidden layer".into());
        }
        Ok(())
    }
}

/// Which learner trains the agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LearnerKind {
    /// REINFORCE with an EMA baseline (the DeepRM-style learner).
    Reinforce,
    /// Advantage actor-critic (the paper's main learner).
    A2c,
    /// PPO with a clipped surrogate.
    Ppo,
}

/// Training-run description: how many episodes, how many jobs per episode,
/// which learner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Learner.
    pub learner: LearnerKind,
    /// Training iterations (policy updates).
    pub iterations: usize,
    /// Episodes rolled out per iteration.
    pub episodes_per_iteration: usize,
    /// Jobs per training episode (kept small so episodes are short).
    pub jobs_per_episode: usize,
    /// Discount factor.
    pub gamma: f64,
    /// Policy learning rate.
    pub learning_rate: f32,
    /// Entropy-bonus coefficient.
    pub entropy_coef: f64,
    /// Base seed for workload generation, network init and exploration.
    pub seed: u64,
    /// Number of environments stepped in lockstep during rollouts (the
    /// `VecEnv` pool size). `1` reproduces the single-environment trainer
    /// seed for seed; larger pools batch more rows per policy forward and
    /// are faster, with numerics that may differ bitwise (wider batched
    /// kernels) but the same per-episode seeds and boundaries.
    #[serde(default = "default_num_envs")]
    pub num_envs: usize,
}

fn default_num_envs() -> usize {
    1
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            learner: LearnerKind::A2c,
            iterations: 150,
            episodes_per_iteration: 8,
            jobs_per_episode: 40,
            gamma: 0.99,
            learning_rate: 1e-3,
            entropy_coef: 0.01,
            seed: 0,
            num_envs: default_num_envs(),
        }
    }
}

impl TrainConfig {
    /// A very small training run used by tests and the quickstart example.
    pub fn smoke() -> Self {
        TrainConfig {
            iterations: 5,
            episodes_per_iteration: 2,
            jobs_per_episode: 10,
            num_envs: 2,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(AgentConfig::default().validate().is_ok());
        assert!(AgentConfig::small().validate().is_ok());
    }

    #[test]
    fn ablation_builders_flip_flags() {
        let rigid = AgentConfig::default().rigid();
        assert!(!rigid.elastic_actions);
        let blind = AgentConfig::default().heterogeneity_blind();
        assert!(!blind.heterogeneity_aware);
        let slowdown = AgentConfig::default().with_reward(RewardKind::Slowdown);
        assert_eq!(slowdown.reward.kind, RewardKind::Slowdown);
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let mut cfg = AgentConfig::default();
        cfg.queue_slots = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = AgentConfig::default();
        cfg.parallelism_levels = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = AgentConfig::default();
        cfg.policy_hidden.clear();
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let cfg = AgentConfig::default();
        let back: AgentConfig =
            serde_json::from_str(&serde_json::to_string(&cfg).unwrap()).unwrap();
        assert_eq!(cfg, back);
        let t = TrainConfig::default();
        let back: TrainConfig = serde_json::from_str(&serde_json::to_string(&t).unwrap()).unwrap();
        assert_eq!(t, back);
    }
}
