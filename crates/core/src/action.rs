//! The elasticity-compatible hierarchical action space.
//!
//! One discrete action index encodes a complete scheduling decision:
//!
//! * **start actions** — `(queue slot, node class, parallelism level)`:
//!   start the job in that queue slot on that node class at a parallelism
//!   chosen from `parallelism_levels` evenly-spaced points between the job's
//!   minimum and maximum;
//! * **scale actions** — `(running slot, up | down)`: grow or shrink a
//!   running job by one unit (the elasticity-compatible part);
//! * **wait** — end the decision epoch without further changes.
//!
//! [`ActionSpace::mask`] marks exactly the decodable-and-feasible actions so
//! the policy never wastes probability mass on impossible decisions, and
//! [`ActionSpace::decode`] maps an index back to a concrete
//! [`tcrm_sim::Action`] for the engine.

use crate::config::AgentConfig;
use crate::state::StateEncoder;
use serde::{Deserialize, Serialize};
use tcrm_sim::{Action, ClusterView, NodeClassId, PendingJobView};

/// A decoded, human-readable description of one action index (used by logs
/// and tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActionMeaning {
    /// Start the job in `queue_slot` on `class` at parallelism level `level`.
    Start {
        /// Queue slot index.
        queue_slot: usize,
        /// Node class index.
        class: usize,
        /// Parallelism level index.
        level: usize,
    },
    /// Scale the job in `running_slot` up (`+1` unit) or down (`−1` unit).
    Scale {
        /// Running slot index.
        running_slot: usize,
        /// True for scale-up, false for scale-down.
        up: bool,
    },
    /// Do nothing.
    Wait,
}

/// The discrete action space of the DRL scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActionSpace {
    queue_slots: usize,
    running_slots: usize,
    parallelism_levels: usize,
    num_classes: usize,
    elastic: bool,
}

impl ActionSpace {
    /// Build the action space for a cluster with `num_classes` node classes.
    pub fn new(config: &AgentConfig, num_classes: usize) -> Self {
        ActionSpace {
            queue_slots: config.queue_slots,
            running_slots: config.running_slots,
            parallelism_levels: config.parallelism_levels.max(1),
            num_classes,
            elastic: config.elastic_actions,
        }
    }

    /// Total number of discrete actions (start + scale + wait). The layout is
    /// fixed regardless of the elastic flag so rigid and elastic agents share
    /// network shapes; rigid agents simply mask the extra actions off.
    pub fn action_count(&self) -> usize {
        self.queue_slots * self.num_classes * self.parallelism_levels + 2 * self.running_slots + 1
    }

    /// Index of the wait action (always the last index).
    pub fn wait_index(&self) -> usize {
        self.action_count() - 1
    }

    /// Index of a start action.
    pub fn start_index(&self, queue_slot: usize, class: usize, level: usize) -> usize {
        debug_assert!(queue_slot < self.queue_slots);
        debug_assert!(class < self.num_classes);
        debug_assert!(level < self.parallelism_levels);
        (queue_slot * self.num_classes + class) * self.parallelism_levels + level
    }

    /// Index of a scale action.
    pub fn scale_index(&self, running_slot: usize, up: bool) -> usize {
        debug_assert!(running_slot < self.running_slots);
        self.queue_slots * self.num_classes * self.parallelism_levels
            + running_slot * 2
            + if up { 0 } else { 1 }
    }

    /// What an action index means structurally (independent of any view).
    pub fn meaning(&self, index: usize) -> ActionMeaning {
        let start_count = self.queue_slots * self.num_classes * self.parallelism_levels;
        if index < start_count {
            let level = index % self.parallelism_levels;
            let rest = index / self.parallelism_levels;
            let class = rest % self.num_classes;
            let queue_slot = rest / self.num_classes;
            ActionMeaning::Start {
                queue_slot,
                class,
                level,
            }
        } else if index < start_count + 2 * self.running_slots {
            let offset = index - start_count;
            ActionMeaning::Scale {
                running_slot: offset / 2,
                up: offset.is_multiple_of(2),
            }
        } else {
            ActionMeaning::Wait
        }
    }

    /// The concrete parallelism a level maps to for a given job: level 0 is
    /// the job's minimum, the last level its maximum, intermediate levels
    /// spaced evenly (rounded). With `elastic == false` every level collapses
    /// to the minimum.
    pub fn level_to_parallelism(&self, job: &PendingJobView, level: usize) -> u32 {
        if !self.elastic || !job.malleable {
            return job.min_parallelism;
        }
        if self.parallelism_levels == 1 || job.max_parallelism == job.min_parallelism {
            return job.min_parallelism;
        }
        let span = (job.max_parallelism - job.min_parallelism) as f64;
        let frac = level as f64 / (self.parallelism_levels - 1) as f64;
        job.min_parallelism + (span * frac).round() as u32
    }

    /// Feasibility mask over all action indices for the current view.
    pub fn mask(&self, view: &ClusterView, encoder: &StateEncoder) -> Vec<bool> {
        let mut mask = Vec::new();
        self.mask_into(view, encoder, &mut mask);
        mask
    }

    /// [`Self::mask`] into a caller-owned buffer (clear-and-refill), the
    /// counterpart of [`StateEncoder::encode_into`] for the batched rollout
    /// hot path.
    pub fn mask_into(&self, view: &ClusterView, encoder: &StateEncoder, mask: &mut Vec<bool>) {
        mask.clear();
        mask.resize(self.action_count(), false);
        let queue = encoder.queue_slot_jobs(view);
        for (slot, job) in queue.iter().enumerate().take(self.queue_slots) {
            for class_idx in 0..self.num_classes.min(view.num_classes()) {
                let class = NodeClassId(class_idx);
                for level in 0..self.parallelism_levels {
                    let parallelism = self.level_to_parallelism(job, level);
                    if view.can_start(job, class, parallelism) {
                        mask[self.start_index(slot, class_idx, level)] = true;
                    }
                }
            }
        }
        if self.elastic {
            let running = encoder.running_slot_jobs(view);
            for (slot, job) in running.iter().enumerate().take(self.running_slots) {
                if !job.malleable || !job.scale_ready {
                    continue;
                }
                if job.units < job.max_parallelism {
                    // Scale-up needs one more unit of capacity on the job's
                    // node class.
                    let available = view
                        .class(job.node_class)
                        .units_available(&job.demand_per_unit);
                    if available >= 1 {
                        mask[self.scale_index(slot, true)] = true;
                    }
                }
                if job.units > job.min_parallelism {
                    mask[self.scale_index(slot, false)] = true;
                }
            }
        }
        mask[self.wait_index()] = true;
    }

    /// Decode an action index into a simulator action for the current view.
    /// Returns `None` when the index refers to an empty slot (the mask keeps
    /// the policy away from those, but decoding stays total and safe).
    pub fn decode(
        &self,
        index: usize,
        view: &ClusterView,
        encoder: &StateEncoder,
    ) -> Option<Action> {
        match self.meaning(index) {
            ActionMeaning::Wait => Some(Action::Wait),
            ActionMeaning::Start {
                queue_slot,
                class,
                level,
            } => {
                let queue = encoder.queue_slot_jobs(view);
                let job = queue.get(queue_slot)?;
                if class >= view.num_classes() {
                    return None;
                }
                Some(Action::Start {
                    job: job.id,
                    class: NodeClassId(class),
                    parallelism: self.level_to_parallelism(job, level),
                })
            }
            ActionMeaning::Scale { running_slot, up } => {
                let running = encoder.running_slot_jobs(view);
                let job = running.get(running_slot)?;
                let target = if up {
                    job.units.saturating_add(1).min(job.max_parallelism)
                } else {
                    job.units.saturating_sub(1).max(job.min_parallelism)
                };
                Some(Action::Scale {
                    job: job.id,
                    new_parallelism: target,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AgentConfig;
    use tcrm_sim::prelude::*;

    fn setup(pending: usize, start_first: bool) -> (ActionSpace, StateEncoder, Simulator) {
        let cfg = AgentConfig::small();
        let space = ActionSpace::new(&cfg, 4);
        let encoder = StateEncoder::new(&cfg, 4);
        let mut sim_cfg = SimConfig::default();
        sim_cfg.decision_interval = None;
        sim_cfg.scale_cooldown = 0.0;
        let mut sim = Simulator::new(ClusterSpec::icpp_default(), sim_cfg);
        let jobs: Vec<Job> = (0..pending as u64)
            .map(|i| {
                Job::builder(JobId(i), JobClass::Batch)
                    .arrival(0.0)
                    .total_work(40.0)
                    .demand_per_unit(ResourceVector::of(2.0, 8.0, 0.0, 0.5))
                    .parallelism_range(1, 5)
                    .deadline(200.0 + i as f64)
                    .build()
            })
            .collect();
        sim.start(jobs);
        assert!(sim.advance());
        if start_first {
            let id = sim.view().pending[0].id;
            sim.apply(&Action::Start {
                job: id,
                class: NodeClassId(0),
                parallelism: 2,
            });
        }
        while sim.view().pending.len() < pending - usize::from(start_first) {
            if !sim.advance() {
                break;
            }
        }
        (space, encoder, sim)
    }

    #[test]
    fn index_meaning_roundtrip() {
        let cfg = AgentConfig::default();
        let space = ActionSpace::new(&cfg, 4);
        assert_eq!(
            space.action_count(),
            10 * 4 * 3 + 2 * 5 + 1,
            "default action-space size"
        );
        for qs in 0..10 {
            for c in 0..4 {
                for l in 0..3 {
                    let idx = space.start_index(qs, c, l);
                    assert_eq!(
                        space.meaning(idx),
                        ActionMeaning::Start {
                            queue_slot: qs,
                            class: c,
                            level: l
                        }
                    );
                }
            }
        }
        for rs in 0..5 {
            for up in [true, false] {
                let idx = space.scale_index(rs, up);
                assert_eq!(
                    space.meaning(idx),
                    ActionMeaning::Scale {
                        running_slot: rs,
                        up
                    }
                );
            }
        }
        assert_eq!(space.meaning(space.wait_index()), ActionMeaning::Wait);
    }

    #[test]
    fn level_mapping_spans_the_range() {
        let cfg = AgentConfig::default(); // 3 levels
        let space = ActionSpace::new(&cfg, 4);
        let job = PendingJobView {
            id: JobId(0),
            class: JobClass::Batch,
            arrival: 0.0,
            deadline: 10.0,
            total_work: 1.0,
            demand_per_unit: ResourceVector::zero(),
            min_parallelism: 2,
            max_parallelism: 10,
            speedup: SpeedupModel::Linear,
            malleable: true,
            utility_value: 1.0,
            wait: 0.0,
        };
        assert_eq!(space.level_to_parallelism(&job, 0), 2);
        assert_eq!(space.level_to_parallelism(&job, 1), 6);
        assert_eq!(space.level_to_parallelism(&job, 2), 10);
        // Rigid jobs and rigid agents always get the minimum.
        let rigid_job = PendingJobView {
            malleable: false,
            ..job.clone()
        };
        assert_eq!(space.level_to_parallelism(&rigid_job, 2), 2);
        let rigid_space = ActionSpace::new(&AgentConfig::default().rigid(), 4);
        assert_eq!(rigid_space.level_to_parallelism(&job, 2), 2);
    }

    #[test]
    fn mask_allows_feasible_starts_and_wait() {
        let (space, encoder, sim) = setup(3, false);
        let view = sim.view();
        let mask = space.mask(&view, &encoder);
        assert_eq!(mask.len(), space.action_count());
        assert!(mask[space.wait_index()]);
        // Some start action must be feasible on the idle cluster.
        assert!(mask.iter().take(space.action_count() - 1).any(|&m| m));
        // Empty queue slots (slot 3 with only 3 pending jobs and 4 slots)
        // must be fully masked.
        for c in 0..4 {
            for l in 0..2 {
                assert!(!mask[space.start_index(3, c, l)]);
            }
        }
        // No scale actions: nothing is running.
        for rs in 0..2 {
            assert!(!mask[space.scale_index(rs, true)]);
            assert!(!mask[space.scale_index(rs, false)]);
        }
    }

    #[test]
    fn mask_enables_scaling_for_running_malleable_jobs() {
        let (space, encoder, sim) = setup(3, true);
        let view = sim.view();
        assert_eq!(view.running.len(), 1);
        let mask = space.mask(&view, &encoder);
        // The running job is at 2 units of a 1..5 range on an idle class:
        // both directions are feasible.
        assert!(mask[space.scale_index(0, true)]);
        assert!(mask[space.scale_index(0, false)]);
        // Rigid agents never see scale actions.
        let rigid_space = ActionSpace::new(&AgentConfig::small().rigid(), 4);
        let rigid_mask = rigid_space.mask(&view, &encoder);
        assert!(!rigid_mask[rigid_space.scale_index(0, true)]);
        assert!(!rigid_mask[rigid_space.scale_index(0, false)]);
    }

    #[test]
    fn decode_produces_engine_accepted_actions() {
        let (space, encoder, mut sim) = setup(4, false);
        let view = sim.view();
        let mask = space.mask(&view, &encoder);
        let mut applied = 0;
        for idx in 0..space.action_count() {
            if !mask[idx] || idx == space.wait_index() {
                continue;
            }
            let action = space
                .decode(idx, &view, &encoder)
                .expect("masked-in action must decode");
            let outcome = sim.apply(&action);
            assert!(
                !outcome.is_invalid(),
                "masked-in action {idx} rejected: {action:?} -> {outcome:?}"
            );
            applied += 1;
            break; // one is enough; the view is stale after applying
        }
        assert_eq!(applied, 1);
    }

    #[test]
    fn decode_empty_slot_is_none_and_wait_decodes() {
        let (space, encoder, sim) = setup(1, false);
        let view = sim.view();
        // Slot 3 is empty with a single pending job.
        assert!(space
            .decode(space.start_index(3, 0, 0), &view, &encoder)
            .is_none());
        assert_eq!(
            space.decode(space.wait_index(), &view, &encoder),
            Some(Action::Wait)
        );
    }

    #[test]
    fn gpu_only_demand_is_masked_off_cpu_classes() {
        let cfg = AgentConfig::small();
        let space = ActionSpace::new(&cfg, 4);
        let encoder = StateEncoder::new(&cfg, 4);
        let mut sim_cfg = SimConfig::default();
        sim_cfg.decision_interval = None;
        let mut sim = Simulator::new(ClusterSpec::icpp_default(), sim_cfg);
        let job = Job::builder(JobId(0), JobClass::MlTraining)
            .arrival(0.0)
            .total_work(10.0)
            .demand_per_unit(ResourceVector::of(1.0, 4.0, 1.0, 0.5))
            .parallelism_range(1, 2)
            .deadline(100.0)
            .build();
        sim.start(vec![job]);
        assert!(sim.advance());
        let mask = space.mask(&sim.view(), &encoder);
        // Class 2 is the GPU class in the default spec; classes 0, 1, 3 have
        // no GPUs, so every start action for slot 0 on them must be masked.
        for class in [0usize, 1, 3] {
            for level in 0..2 {
                assert!(!mask[space.start_index(0, class, level)]);
            }
        }
        assert!(mask[space.start_index(0, 2, 0)]);
    }
}
