//! Reward shaping for the time-critical scheduling MDP.

use crate::config::{RewardConfig, RewardKind};
use serde::{Deserialize, Serialize};
use tcrm_sim::{ClusterView, CompletedJob};

/// Computes per-step rewards from the events of a decision interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RewardTracker {
    config: RewardConfig,
}

impl RewardTracker {
    /// Create a tracker with the given shaping configuration.
    pub fn new(config: RewardConfig) -> Self {
        RewardTracker { config }
    }

    /// The shaping configuration.
    pub fn config(&self) -> &RewardConfig {
        &self.config
    }

    /// Reward for one environment step.
    ///
    /// * `new_completions` — jobs that finished since the previous step,
    /// * `dt` — simulated time elapsed since the previous step,
    /// * `view` — the snapshot *after* the step (used for the shaping terms
    ///   that look at the jobs still in the system).
    pub fn step_reward(
        &self,
        new_completions: &[CompletedJob],
        dt: f64,
        view: &ClusterView,
    ) -> f64 {
        match self.config.kind {
            RewardKind::Utility => {
                let mut reward = 0.0;
                for job in new_completions {
                    reward += self.config.utility_scale * job.utility;
                    if job.missed {
                        reward -= self.config.miss_penalty;
                    }
                }
                // Penalise letting pending jobs become infeasible (their
                // deadline can no longer be met even at maximum parallelism on
                // the fastest class).
                let infeasible = view
                    .pending
                    .iter()
                    .filter(|j| {
                        view.classes
                            .iter()
                            .map(|c| j.slack_on(view.time, c, j.max_parallelism))
                            .fold(f64::NEG_INFINITY, f64::max)
                            < 0.0
                    })
                    .count();
                reward -= self.config.infeasible_pending_penalty * infeasible as f64;
                reward
            }
            RewardKind::MissPenalty => {
                let mut reward = 0.0;
                for job in new_completions {
                    reward += if job.missed { -1.0 } else { 1.0 };
                }
                reward
            }
            RewardKind::Slowdown => {
                if dt <= 0.0 {
                    return 0.0;
                }
                // DeepRM-style: every job in the system costs dt normalised by
                // its best-case service time, which the optimal policy
                // minimises by clearing jobs quickly.
                let mut cost = 0.0;
                for job in &view.pending {
                    let best = best_case_service_pending(job, view);
                    cost += dt / best.max(1.0);
                }
                for job in &view.running {
                    let best: f64 = view
                        .classes
                        .iter()
                        .map(|c| {
                            job.total_work
                                / (c.speed_factor(job.class).max(1e-9)
                                    * job.speedup.speedup(job.max_parallelism))
                        })
                        .fold(f64::INFINITY, f64::min);
                    cost += dt / best.max(1.0);
                }
                -cost
            }
        }
    }

    /// The maximum reward one job can contribute under this shaping (used to
    /// sanity-check reward scales in tests).
    pub fn max_per_job(&self, utility_value: f64) -> f64 {
        match self.config.kind {
            RewardKind::Utility => self.config.utility_scale * utility_value,
            RewardKind::MissPenalty => 1.0,
            RewardKind::Slowdown => 0.0,
        }
    }
}

fn best_case_service_pending(job: &tcrm_sim::PendingJobView, view: &ClusterView) -> f64 {
    view.classes
        .iter()
        .map(|c| job.service_time_on(c, job.max_parallelism))
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RewardConfig;
    use tcrm_sim::prelude::*;
    use tcrm_sim::JobClass;

    fn completed(missed: bool, utility: f64) -> CompletedJob {
        CompletedJob {
            id: JobId(0),
            class: JobClass::Batch,
            arrival: 0.0,
            start: 1.0,
            finish: 10.0,
            deadline: if missed { 5.0 } else { 50.0 },
            wait: 1.0,
            response: 10.0,
            best_case_service: 5.0,
            slowdown: 2.0,
            missed,
            utility,
            max_utility: 1.0,
            avg_parallelism: 1.0,
            scale_count: 0,
        }
    }

    fn empty_view() -> ClusterView {
        let mut cfg = SimConfig::default();
        cfg.decision_interval = None;
        let mut sim = Simulator::new(ClusterSpec::tiny(), cfg);
        sim.start(vec![Job::builder(JobId(0), JobClass::Batch)
            .arrival(0.0)
            .total_work(5.0)
            .deadline(100.0)
            .build()]);
        sim.advance();
        sim.view()
    }

    #[test]
    fn utility_reward_credits_completions_and_penalises_misses() {
        let tracker = RewardTracker::new(RewardConfig::default());
        let view = empty_view();
        let on_time = tracker.step_reward(&[completed(false, 1.0)], 5.0, &view);
        let missed = tracker.step_reward(&[completed(true, 0.0)], 5.0, &view);
        assert!(on_time > 0.9);
        assert!(missed < -0.9);
        assert!(on_time > missed);
    }

    #[test]
    fn utility_reward_penalises_infeasible_pending_jobs() {
        let tracker = RewardTracker::new(RewardConfig::default());
        // Build a view whose single pending job can no longer meet its
        // deadline.
        let mut cfg = SimConfig::default();
        cfg.decision_interval = Some(10.0);
        let mut sim = Simulator::new(ClusterSpec::tiny(), cfg);
        sim.start(vec![Job::builder(JobId(0), JobClass::Batch)
            .arrival(0.0)
            .total_work(500.0)
            .deadline(5.0)
            .build()]);
        sim.advance();
        let view = sim.view();
        let r = tracker.step_reward(&[], 1.0, &view);
        assert!(r < 0.0, "expected infeasible-pending penalty, got {r}");
    }

    #[test]
    fn miss_penalty_reward_is_plus_minus_one() {
        let cfg = RewardConfig {
            kind: RewardKind::MissPenalty,
            ..Default::default()
        };
        let tracker = RewardTracker::new(cfg);
        let view = empty_view();
        assert_eq!(
            tracker.step_reward(&[completed(false, 1.0)], 1.0, &view),
            1.0
        );
        assert_eq!(
            tracker.step_reward(&[completed(true, 0.0)], 1.0, &view),
            -1.0
        );
        assert_eq!(tracker.step_reward(&[], 1.0, &view), 0.0);
    }

    #[test]
    fn slowdown_reward_charges_jobs_in_system() {
        let cfg = RewardConfig {
            kind: RewardKind::Slowdown,
            ..Default::default()
        };
        let tracker = RewardTracker::new(cfg);
        let view = empty_view(); // one pending job
        let r = tracker.step_reward(&[], 10.0, &view);
        assert!(r < 0.0);
        assert_eq!(tracker.step_reward(&[], 0.0, &view), 0.0);
    }

    #[test]
    fn max_per_job_reflects_kind() {
        let utility = RewardTracker::new(RewardConfig::default());
        assert_eq!(utility.max_per_job(2.5), 2.5);
        let miss = RewardTracker::new(RewardConfig {
            kind: RewardKind::MissPenalty,
            ..Default::default()
        });
        assert_eq!(miss.max_per_job(2.5), 1.0);
    }
}
