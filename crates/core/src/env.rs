//! The scheduling environment: the bridge between the discrete-event
//! simulator and the reinforcement-learning substrate.
//!
//! One episode = one simulated workload. At every decision epoch the agent
//! may issue any number of start/scale actions (each is one environment
//! step); choosing *wait* — or exhausting the feasible actions — advances
//! simulated time to the next epoch. Rewards are computed from the jobs that
//! completed in between, according to the configured shaping.

use crate::action::ActionSpace;
use crate::config::AgentConfig;
use crate::reward::RewardTracker;
use crate::state::StateEncoder;
use tcrm_rl::{Environment, Step, Transition};
use tcrm_sim::{Action, ClusterSpec, ClusterView, Job, SimConfig, Simulator};
use tcrm_workload::{SyntheticSource, WorkloadSpec};

/// Where episode workloads come from. (Named `EpisodeSource` to leave the
/// `WorkloadSource` name to `tcrm_workload`'s streaming trait, which the
/// `Streamed` variant accepts through any boxed source.)
pub enum EpisodeSource {
    /// Every episode replays exactly this job list (evaluation on a fixed
    /// trace).
    Fixed(Vec<Job>),
    /// Every episode generates a fresh workload from the spec with the
    /// episode seed (training).
    Generated {
        /// The workload family.
        spec: WorkloadSpec,
        /// Number of jobs per episode.
        jobs_per_episode: usize,
    },
    /// Every episode re-arms this source with the episode seed and collects
    /// its stream into that episode's job list — training on arbitrary
    /// composed scenarios (replays, transformed traces, merged streams)
    /// from one resettable source instead of a per-episode job-list
    /// configuration. The stream **must be finite** (bound endless
    /// generators with `truncate`): each `reset` drains it fully.
    Streamed(Box<dyn tcrm_workload::WorkloadSource>),
}

/// The scheduling environment (implements [`tcrm_rl::Environment`]).
pub struct SchedulingEnv {
    cluster: ClusterSpec,
    sim_config: SimConfig,
    encoder: StateEncoder,
    actions: ActionSpace,
    reward: RewardTracker,
    source: EpisodeSource,
    max_steps: usize,

    sim: Option<Simulator>,
    current_view: Option<ClusterView>,
    credited_completions: usize,
    last_time: f64,
    steps: usize,
    episode_utility: f64,
    episode_misses: usize,
    /// Actions issued at the current decision epoch (bounded so a policy
    /// cannot spin forever re-scaling jobs back and forth without letting
    /// simulated time advance).
    epoch_actions: usize,
    /// Reusable encode/mask buffers: [`Environment::step_into`] refreshes
    /// these in place every step instead of allocating fresh `Step` vectors.
    obs_scratch: Vec<f32>,
    mask_scratch: Vec<bool>,
}

impl SchedulingEnv {
    /// Create an environment.
    pub fn new(
        cluster: ClusterSpec,
        sim_config: SimConfig,
        agent_config: &AgentConfig,
        source: EpisodeSource,
    ) -> Self {
        let num_classes = cluster.num_classes();
        SchedulingEnv {
            encoder: StateEncoder::new(agent_config, num_classes),
            actions: ActionSpace::new(agent_config, num_classes),
            reward: RewardTracker::new(agent_config.reward),
            max_steps: agent_config.max_steps_per_episode,
            cluster,
            sim_config,
            source,
            sim: None,
            current_view: None,
            credited_completions: 0,
            last_time: 0.0,
            steps: 0,
            episode_utility: 0.0,
            episode_misses: 0,
            epoch_actions: 0,
            obs_scratch: Vec::new(),
            mask_scratch: Vec::new(),
        }
    }

    /// Maximum number of actions the agent may issue at one decision epoch
    /// before the environment forces time to advance: enough to start every
    /// visible queued job and re-scale every visible running job once.
    fn max_actions_per_epoch(&self) -> usize {
        self.encoder.queue_slots() + 2 * self.encoder.running_slots() + 2
    }

    /// The state encoder (shared with the inference-time agent).
    pub fn encoder(&self) -> &StateEncoder {
        &self.encoder
    }

    /// The action space (shared with the inference-time agent).
    pub fn action_space(&self) -> &ActionSpace {
        &self.actions
    }

    /// Total utility accrued in the current episode so far.
    pub fn episode_utility(&self) -> f64 {
        self.episode_utility
    }

    /// Deadline misses observed in the current episode so far.
    pub fn episode_misses(&self) -> usize {
        self.episode_misses
    }

    /// Finish the current episode (if any) and return its simulation result.
    /// Useful after an evaluation rollout on a fixed trace.
    pub fn take_result(&mut self) -> Option<tcrm_sim::SimulationResult> {
        self.current_view = None;
        self.sim.take().map(|sim| sim.finalize())
    }

    fn episode_jobs(&mut self, seed: u64) -> Vec<Job> {
        match &mut self.source {
            EpisodeSource::Fixed(jobs) => jobs.clone(),
            EpisodeSource::Generated {
                spec,
                jobs_per_episode,
            } => {
                let spec = spec.clone().with_num_jobs(*jobs_per_episode);
                SyntheticSource::new(&spec, &self.cluster, seed)
                    .expect("episode workload spec validates")
                    .collect()
            }
            EpisodeSource::Streamed(source) => {
                source.reset(seed);
                source.by_ref().collect()
            }
        }
    }

    /// Encode the view and its feasibility mask into the caller's buffers,
    /// staging through the env-owned scratch so nothing is allocated once the
    /// scratch has warmed.
    fn write_step_into(&mut self, view: &ClusterView, obs: &mut [f32], mask: &mut [bool]) {
        self.encoder.encode_into(view, &mut self.obs_scratch);
        obs.copy_from_slice(&self.obs_scratch);
        self.actions
            .mask_into(view, &self.encoder, &mut self.mask_scratch);
        mask.copy_from_slice(&self.mask_scratch);
    }

    /// A terminal step: all-zero observation, only wait feasible.
    fn write_terminal_into(&self, obs: &mut [f32], mask: &mut [bool]) {
        obs.fill(0.0);
        mask.fill(false);
        mask[self.actions.wait_index()] = true;
    }

    /// Collect the reward accrued since the previous step and update the
    /// bookkeeping. `view` is the snapshot after any time advancement.
    fn collect_reward(&mut self, view: &ClusterView) -> f64 {
        let sim = self.sim.as_ref().expect("no active episode");
        let completions = sim.completed_so_far();
        let new = &completions[self.credited_completions..];
        let dt = (view.time - self.last_time).max(0.0);
        let reward = self.reward.step_reward(new, dt, view);
        self.episode_utility += new.iter().map(|c| c.utility).sum::<f64>();
        self.episode_misses += new.iter().filter(|c| c.missed).count();
        self.credited_completions = completions.len();
        self.last_time = view.time;
        reward
    }

    /// Whether any non-wait action is feasible in the view.
    fn has_feasible_work(&mut self, view: &ClusterView) -> bool {
        self.actions
            .mask_into(view, &self.encoder, &mut self.mask_scratch);
        let wait = self.actions.wait_index();
        self.mask_scratch
            .iter()
            .enumerate()
            .any(|(i, &m)| m && i != wait)
    }
}

impl Environment for SchedulingEnv {
    fn observation_dim(&self) -> usize {
        self.encoder.observation_dim()
    }

    fn action_count(&self) -> usize {
        self.actions.action_count()
    }

    fn reset(&mut self, seed: u64) -> Step {
        let mut observation = vec![0.0; self.observation_dim()];
        let mut mask = vec![false; self.action_count()];
        self.reset_into(seed, &mut observation, &mut mask);
        Step::new(observation, mask)
    }

    fn step(&mut self, action: usize) -> Transition {
        let mut observation = vec![0.0; self.observation_dim()];
        let mut mask = vec![false; self.action_count()];
        let (reward, done) = self.step_into(action, &mut observation, &mut mask);
        Transition {
            reward,
            done,
            next: Step::new(observation, mask),
        }
    }

    fn reset_into(&mut self, seed: u64, observation: &mut [f32], mask: &mut [bool]) {
        let jobs = self.episode_jobs(seed);
        let mut sim = Simulator::new(self.cluster.clone(), self.sim_config.clone());
        sim.start(jobs);
        let alive = sim.advance();
        self.credited_completions = 0;
        self.last_time = sim.time();
        self.steps = 0;
        self.episode_utility = 0.0;
        self.episode_misses = 0;
        self.epoch_actions = 0;
        // Reuse the previous episode's view buffer when one exists.
        let mut view = self.current_view.take().unwrap_or_else(|| sim.view());
        sim.view_into(&mut view);
        sim.compact_log(&view);
        self.sim = Some(sim);
        if alive {
            self.write_step_into(&view, observation, mask);
        } else {
            self.write_terminal_into(observation, mask);
        }
        self.current_view = Some(view);
    }

    fn step_into(
        &mut self,
        action: usize,
        observation: &mut [f32],
        mask: &mut [bool],
    ) -> (f64, bool) {
        self.steps += 1;
        // The episode's single view buffer is taken out, refreshed in place
        // after each simulator interaction (clear-and-refill, no clone), and
        // put back before returning.
        let mut view = self.current_view.take().expect("step called before reset");
        let decoded = self
            .actions
            .decode(action, &view, &self.encoder)
            .unwrap_or(Action::Wait);
        let is_wait = matches!(decoded, Action::Wait);
        let outcome = {
            let sim = self.sim.as_mut().expect("no active episode");
            sim.apply(&decoded)
        };

        // Decide whether to stay at this decision epoch (more scheduling to
        // do) or advance simulated time.
        self.epoch_actions += 1;
        let stay =
            !is_wait && !outcome.is_invalid() && self.epoch_actions < self.max_actions_per_epoch();
        if stay {
            let sim = self.sim.as_mut().expect("no active episode");
            sim.view_into(&mut view);
            // One retained view per episode: dropping the consumed deltas
            // here keeps the engine's change log bounded by one epoch over
            // arbitrarily long episodes.
            sim.compact_log(&view);
            if self.has_feasible_work(&view) {
                // Stay at the epoch: reward only reflects shaping on the new
                // snapshot (no time has passed).
                let reward = self.collect_reward(&view);
                self.write_step_into(&view, observation, mask);
                self.current_view = Some(view);
                return (reward, false);
            }
        }

        // Deadlock guard: nothing is running, nothing will ever arrive, and
        // the agent is not starting the remaining pending jobs (or cannot).
        // The simulation state can never change again, so end the episode and
        // forfeit the pending jobs rather than spinning on empty decision
        // epochs.
        {
            let sim = self.sim.as_mut().expect("no active episode");
            sim.view_into(&mut view);
            sim.compact_log(&view);
            if sim.running_count() == 0 && view.future_arrivals == 0 && !view.pending.is_empty() {
                let reward = self.collect_reward(&view);
                self.write_terminal_into(observation, mask);
                self.current_view = Some(view);
                return (reward, true);
            }
        }

        let alive = {
            let sim = self.sim.as_mut().expect("no active episode");
            sim.advance()
        };
        self.epoch_actions = 0;
        {
            let sim = self.sim.as_mut().expect("no active episode");
            sim.view_into(&mut view);
            sim.compact_log(&view);
        }
        let reward = self.collect_reward(&view);
        let truncated = self.steps >= self.max_steps;
        let done = !alive || truncated;
        if done {
            self.write_terminal_into(observation, mask);
        } else {
            self.write_step_into(&view, observation, mask);
        }
        self.current_view = Some(view);
        (reward, done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AgentConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tcrm_sim::{JobClass, JobId, ResourceVector, TimeUtility};

    fn tiny_env(jobs: usize) -> SchedulingEnv {
        let spec = WorkloadSpec::tiny();
        SchedulingEnv::new(
            ClusterSpec::tiny(),
            SimConfig::default(),
            &AgentConfig::small(),
            EpisodeSource::Generated {
                spec,
                jobs_per_episode: jobs,
            },
        )
    }

    /// Run an episode with uniformly random feasible actions.
    fn random_episode(env: &mut SchedulingEnv, seed: u64) -> (f64, usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut step = env.reset(seed);
        let mut total_reward = 0.0;
        let mut steps = 0;
        loop {
            let feasible: Vec<usize> = step
                .action_mask
                .iter()
                .enumerate()
                .filter(|(_, &m)| m)
                .map(|(i, _)| i)
                .collect();
            let action = feasible[rng.gen_range(0..feasible.len())];
            let t = env.step(action);
            total_reward += t.reward;
            steps += 1;
            if t.done {
                break;
            }
            step = t.next;
            assert!(steps < 10_000, "episode did not terminate");
        }
        (total_reward, steps)
    }

    #[test]
    fn dims_are_consistent() {
        let env = tiny_env(5);
        assert_eq!(env.observation_dim(), env.encoder().observation_dim());
        assert_eq!(env.action_count(), env.action_space().action_count());
    }

    #[test]
    fn reset_produces_valid_initial_step() {
        let mut env = tiny_env(5);
        let step = env.reset(1);
        assert_eq!(step.observation.len(), env.observation_dim());
        assert_eq!(step.action_mask.len(), env.action_count());
        assert!(step.action_mask[env.action_space().wait_index()]);
        assert!(step.feasible_actions() >= 1);
    }

    #[test]
    fn random_episodes_terminate_and_account_all_jobs() {
        let mut env = tiny_env(8);
        let (_, steps) = random_episode(&mut env, 3);
        assert!(steps >= 8, "at least one decision per job");
        let result = env.take_result().expect("episode result");
        assert_eq!(result.summary.total_jobs, 8);
        assert_eq!(
            result.summary.completed_jobs + result.summary.unfinished_jobs,
            8
        );
    }

    #[test]
    fn episodes_are_seed_deterministic() {
        let mut env = tiny_env(6);
        let a = random_episode(&mut env, 11);
        let mut env2 = tiny_env(6);
        let b = random_episode(&mut env2, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn always_wait_policy_finishes_episode() {
        let mut env = tiny_env(4);
        let wait = env.action_space().wait_index();
        let mut step = env.reset(2);
        let mut steps = 0;
        loop {
            let t = env.step(wait);
            steps += 1;
            if t.done {
                break;
            }
            step = t.next;
            assert!(steps < 5_000);
        }
        let _ = step;
        // Nothing was ever scheduled, so nothing completed and every job was
        // forfeited.
        assert_eq!(env.episode_utility(), 0.0);
        let result = env.take_result().unwrap();
        assert_eq!(result.summary.completed_jobs, 0);
        assert_eq!(result.summary.unfinished_jobs, 4);
    }

    #[test]
    fn good_actions_earn_more_reward_than_waiting() {
        // A single feasible job: starting it earns utility; waiting forfeits.
        let job = Job::builder(JobId(0), JobClass::Batch)
            .arrival(0.0)
            .total_work(10.0)
            .demand_per_unit(ResourceVector::of(1.0, 2.0, 0.0, 0.1))
            .parallelism_range(1, 2)
            .deadline(100.0)
            .utility(TimeUtility::hard(1.0))
            .build();
        let mk = || {
            SchedulingEnv::new(
                ClusterSpec::tiny(),
                SimConfig::default(),
                &AgentConfig::small(),
                EpisodeSource::Fixed(vec![job.clone()]),
            )
        };
        // Greedy: pick the first feasible non-wait action at every step.
        let mut env = mk();
        let mut step = env.reset(0);
        let mut greedy_reward = 0.0;
        for _ in 0..100 {
            let wait = env.action_space().wait_index();
            let action = step
                .action_mask
                .iter()
                .enumerate()
                .position(|(i, &m)| m && i != wait)
                .unwrap_or(wait);
            let t = env.step(action);
            greedy_reward += t.reward;
            if t.done {
                break;
            }
            step = t.next;
        }
        // Wait-only forfeits the job.
        let mut env = mk();
        env.reset(0);
        let mut wait_reward = 0.0;
        for _ in 0..100 {
            let t = env.step(env.action_space().wait_index());
            wait_reward += t.reward;
            if t.done {
                break;
            }
        }
        assert!(
            greedy_reward > wait_reward + 0.5,
            "starting the job ({greedy_reward}) should beat waiting ({wait_reward})"
        );
    }

    #[test]
    fn buffered_step_into_matches_allocating_step() {
        // The native `reset_into`/`step_into` overrides (the VecEnv hot path)
        // must be observably identical to the `Step`/`Transition` API.
        let mut alloc_env = tiny_env(6);
        let mut into_env = tiny_env(6);
        let mut rng = StdRng::seed_from_u64(7);
        let mut obs = vec![0.0f32; into_env.observation_dim()];
        let mut mask = vec![false; into_env.action_count()];
        let mut step = alloc_env.reset(21);
        into_env.reset_into(21, &mut obs, &mut mask);
        assert_eq!(step.observation, obs);
        assert_eq!(step.action_mask, mask);
        for _ in 0..500 {
            let feasible: Vec<usize> = step
                .action_mask
                .iter()
                .enumerate()
                .filter(|(_, &m)| m)
                .map(|(i, _)| i)
                .collect();
            let action = feasible[rng.gen_range(0..feasible.len())];
            let t = alloc_env.step(action);
            let (reward, done) = into_env.step_into(action, &mut obs, &mut mask);
            assert_eq!(t.reward, reward);
            assert_eq!(t.done, done);
            assert_eq!(t.next.observation, obs);
            assert_eq!(t.next.action_mask, mask);
            if t.done {
                break;
            }
            step = t.next;
        }
    }

    #[test]
    fn fixed_source_replays_identical_workloads() {
        let job = Job::builder(JobId(0), JobClass::Stream)
            .arrival(0.0)
            .total_work(5.0)
            .deadline(50.0)
            .build();
        let mut env = SchedulingEnv::new(
            ClusterSpec::tiny(),
            SimConfig::default(),
            &AgentConfig::small(),
            EpisodeSource::Fixed(vec![job]),
        );
        let a = env.reset(1);
        let b = env.reset(99);
        assert_eq!(a.observation, b.observation);
    }
}
