//! State encoding: turning a [`ClusterView`] into the fixed-length feature
//! vector the policy and value networks consume.
//!
//! The encoding follows the DeepRM/Decima recipe adapted to elastic,
//! deadline-constrained jobs on a heterogeneous cluster:
//!
//! * **per node class** — free capacity (normalised per dimension), scalar
//!   utilisation, and the speed factor for every job class;
//! * **per queue slot** (first `queue_slots` pending jobs) — presence flag,
//!   job-class one-hot, normalised per-unit demand, log-scaled work, time to
//!   deadline, best-case slack, elasticity range and malleability;
//! * **per running slot** (first `running_slots` running jobs) — presence,
//!   class one-hot, node-class one-hot share, normalised parallelism,
//!   remaining-work fraction and slack;
//! * **global aggregates** — queue backlog, total pending work, number of
//!   running jobs, number of pending/running jobs that can no longer meet
//!   their deadline.
//!
//! The heterogeneity-blind ablation replaces every per-class block with the
//! cluster-wide average so the network cannot distinguish node classes.

use crate::config::AgentConfig;
use serde::{Deserialize, Serialize};
use tcrm_sim::{
    ClusterView, JobClass, NodeClassView, PendingJobView, RunningJobView, NUM_RESOURCES,
};

/// Number of features per node class block.
const CLASS_FEATURES: usize = NUM_RESOURCES + 1 + JobClass::COUNT;
/// Number of features per queue slot.
const QUEUE_FEATURES: usize = 1 + JobClass::COUNT + NUM_RESOURCES + 7;
/// Number of features per running slot.
const RUNNING_FEATURES: usize = 1 + JobClass::COUNT + 6;
/// Number of global aggregate features.
const GLOBAL_FEATURES: usize = 8;

/// Time-scale (seconds) used to squash deadline/slack features into a
/// bounded range via `tanh(x / TIME_SCALE)`.
const TIME_SCALE: f64 = 300.0;
/// Work-scale used to squash work features.
const WORK_SCALE: f64 = 200.0;

/// Encodes cluster views into observation vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateEncoder {
    queue_slots: usize,
    running_slots: usize,
    num_classes: usize,
    heterogeneity_aware: bool,
}

impl StateEncoder {
    /// Create an encoder for a cluster with `num_classes` node classes.
    pub fn new(config: &AgentConfig, num_classes: usize) -> Self {
        StateEncoder {
            queue_slots: config.queue_slots,
            running_slots: config.running_slots,
            num_classes,
            heterogeneity_aware: config.heterogeneity_aware,
        }
    }

    /// Length of the observation vector.
    pub fn observation_dim(&self) -> usize {
        self.num_classes * CLASS_FEATURES
            + self.queue_slots * QUEUE_FEATURES
            + self.running_slots * RUNNING_FEATURES
            + GLOBAL_FEATURES
    }

    /// Number of queue slots encoded.
    pub fn queue_slots(&self) -> usize {
        self.queue_slots
    }

    /// Number of running slots encoded.
    pub fn running_slots(&self) -> usize {
        self.running_slots
    }

    /// The pending jobs that occupy the queue slots, in the deterministic
    /// slot order used by both the encoder and the action space:
    /// earliest-deadline-first (ties by id), read straight from the
    /// engine-maintained deadline index — no per-call sort.
    pub fn queue_slot_jobs<'a>(&self, view: &'a ClusterView) -> Vec<&'a PendingJobView> {
        view.pending_in_deadline_order()
            .take(self.queue_slots)
            .collect()
    }

    /// The running jobs that occupy the running slots: least slack first
    /// (ties by id), so the jobs most at risk are always visible.
    pub fn running_slot_jobs<'a>(&self, view: &'a ClusterView) -> Vec<&'a RunningJobView> {
        let mut jobs: Vec<&RunningJobView> = view.running.iter().collect();
        jobs.sort_by(|a, b| {
            a.slack(view.time)
                .partial_cmp(&b.slack(view.time))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        jobs.truncate(self.running_slots);
        jobs
    }

    /// Encode a view into an observation vector of length
    /// [`Self::observation_dim`].
    pub fn encode(&self, view: &ClusterView) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.observation_dim());
        self.encode_into(view, &mut out);
        out
    }

    /// [`Self::encode`] into a caller-owned buffer (clear-and-refill), so the
    /// batched rollout hot path re-encodes every step without growing the
    /// heap once the buffer has warmed to [`Self::observation_dim`].
    pub fn encode_into(&self, view: &ClusterView, out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.observation_dim());
        self.encode_classes(view, out);
        self.encode_queue(view, out);
        self.encode_running(view, out);
        self.encode_globals(view, out);
        debug_assert_eq!(out.len(), self.observation_dim());
    }

    fn encode_classes(&self, view: &ClusterView, out: &mut Vec<f32>) {
        if self.heterogeneity_aware {
            for class in &view.classes {
                Self::push_class_features(class, out);
            }
            // Pad if the view has fewer classes than the encoder expects
            // (never happens in practice; keeps the length invariant).
            for _ in view.classes.len()..self.num_classes {
                out.extend(std::iter::repeat_n(0.0, CLASS_FEATURES));
            }
        } else {
            // Heterogeneity-blind: every class block becomes the cluster-wide
            // average, with speed factors forced to 1. Each block is staged at
            // the tail of `out` and folded into a stack-allocated accumulator
            // so this branch stays heap-free too.
            let mut avg = [0.0f32; CLASS_FEATURES];
            for class in &view.classes {
                let begin = out.len();
                Self::push_class_features(class, out);
                for (a, b) in avg.iter_mut().zip(out[begin..].iter()) {
                    *a += b / view.classes.len() as f32;
                }
                out.truncate(begin);
            }
            for i in 0..JobClass::COUNT {
                avg[NUM_RESOURCES + 1 + i] = 1.0;
            }
            for _ in 0..self.num_classes {
                out.extend_from_slice(&avg);
            }
        }
    }

    fn push_class_features(class: &NodeClassView, out: &mut Vec<f32>) {
        let free_frac = class.free_capacity.normalized_by(&class.total_capacity);
        for i in 0..NUM_RESOURCES {
            out.push(free_frac.0[i] as f32);
        }
        out.push(class.utilization() as f32);
        for job_class in JobClass::ALL {
            // Speed factors are O(1); /4 keeps GPUs (6x) in a sane range.
            out.push((class.speed_factor(job_class) / 4.0) as f32);
        }
    }

    fn encode_queue(&self, view: &ClusterView, out: &mut Vec<f32>) {
        let slots = self.queue_slot_jobs(view);
        for slot in 0..self.queue_slots {
            match slots.get(slot) {
                Some(job) => self.push_queue_features(job, view, out),
                None => out.extend(std::iter::repeat_n(0.0, QUEUE_FEATURES)),
            }
        }
    }

    fn push_queue_features(&self, job: &PendingJobView, view: &ClusterView, out: &mut Vec<f32>) {
        out.push(1.0); // presence
        for class in JobClass::ALL {
            out.push(if job.class == class { 1.0 } else { 0.0 });
        }
        let total_cap = view.spec.total_capacity();
        let demand_frac = job.demand_per_unit.normalized_by(&total_cap);
        for i in 0..NUM_RESOURCES {
            // Multiply by the node count so the scale is "fraction of one
            // average machine" rather than of the whole cluster.
            out.push((demand_frac.0[i] * view.spec.num_nodes() as f64).min(2.0) as f32);
        }
        out.push(squash(job.total_work, WORK_SCALE));
        out.push(squash(job.time_to_deadline(view.time), TIME_SCALE));
        // Best-case slack across classes at max parallelism (can the deadline
        // still be met at all?).
        let best_slack = view
            .classes
            .iter()
            .map(|c| job.slack_on(view.time, c, job.max_parallelism))
            .fold(f64::NEG_INFINITY, f64::max);
        out.push(squash(best_slack, TIME_SCALE));
        // Slack at minimum parallelism on the best class (how urgent is
        // scaling up?).
        let min_par_slack = view
            .classes
            .iter()
            .map(|c| job.slack_on(view.time, c, job.min_parallelism))
            .fold(f64::NEG_INFINITY, f64::max);
        out.push(squash(min_par_slack, TIME_SCALE));
        out.push(job.min_parallelism as f32 / 16.0);
        out.push(job.max_parallelism as f32 / 16.0);
        out.push(if job.malleable { 1.0 } else { 0.0 });
    }

    fn encode_running(&self, view: &ClusterView, out: &mut Vec<f32>) {
        let slots = self.running_slot_jobs(view);
        for slot in 0..self.running_slots {
            match slots.get(slot) {
                Some(job) => {
                    out.push(1.0);
                    for class in JobClass::ALL {
                        out.push(if job.class == class { 1.0 } else { 0.0 });
                    }
                    out.push(job.units as f32 / 16.0);
                    out.push((job.remaining_work / job.total_work.max(1e-9)) as f32);
                    out.push(squash(job.slack(view.time), TIME_SCALE));
                    out.push(job.max_parallelism.saturating_sub(job.units) as f32 / 16.0);
                    out.push(if job.malleable { 1.0 } else { 0.0 });
                    out.push(if job.scale_ready { 1.0 } else { 0.0 });
                }
                None => out.extend(std::iter::repeat_n(0.0, RUNNING_FEATURES)),
            }
        }
    }

    fn encode_globals(&self, view: &ClusterView, out: &mut Vec<f32>) {
        let pending = view.pending.len();
        let running = view.running.len();
        let backlog = pending.saturating_sub(self.queue_slots);
        // Engine-maintained aggregate — no re-summation over the queue.
        let total_pending_work: f64 = view.pending_work_total;
        let infeasible_pending = view
            .pending
            .iter()
            .filter(|j| {
                view.classes
                    .iter()
                    .map(|c| j.slack_on(view.time, c, j.max_parallelism))
                    .fold(f64::NEG_INFINITY, f64::max)
                    < 0.0
            })
            .count();
        let at_risk_running = view
            .running
            .iter()
            .filter(|r| r.slack(view.time) < 0.0)
            .count();
        out.push((pending as f32 / 50.0).min(2.0));
        out.push((running as f32 / 50.0).min(2.0));
        out.push((backlog as f32 / 50.0).min(2.0));
        out.push(squash(total_pending_work, 10.0 * WORK_SCALE));
        out.push((infeasible_pending as f32 / 20.0).min(2.0));
        out.push((at_risk_running as f32 / 20.0).min(2.0));
        out.push(view.overall_utilization() as f32);
        out.push((view.future_arrivals as f32 / 100.0).min(2.0));
    }
}

/// Squash an unbounded quantity into `(-1, 1)` with `tanh(x / scale)`.
fn squash(x: f64, scale: f64) -> f32 {
    (x / scale).tanh() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcrm_sim::prelude::*;

    fn make_view(pending: usize, running: bool) -> ClusterView {
        let mut cfg = SimConfig::default();
        cfg.decision_interval = None;
        let mut sim = Simulator::new(ClusterSpec::icpp_default(), cfg);
        let mut jobs = Vec::new();
        for i in 0..pending as u64 + 1 {
            jobs.push(
                Job::builder(
                    JobId(i),
                    if i % 2 == 0 {
                        JobClass::Batch
                    } else {
                        JobClass::MlTraining
                    },
                )
                .arrival(0.0)
                .total_work(50.0 + i as f64)
                .demand_per_unit(ResourceVector::of(2.0, 8.0, 0.0, 0.5))
                .parallelism_range(1, 6)
                .deadline(100.0 + i as f64 * 10.0)
                .build(),
            );
        }
        sim.start(jobs);
        assert!(sim.advance());
        if running {
            let id = sim.view().pending[0].id;
            sim.apply(&Action::Start {
                job: id,
                class: NodeClassId(0),
                parallelism: 2,
            });
        }
        while sim.view().pending.len() < pending {
            if !sim.advance() {
                break;
            }
        }
        sim.view()
    }

    #[test]
    fn observation_length_matches_dim() {
        let cfg = AgentConfig::default();
        let enc = StateEncoder::new(&cfg, 4);
        let view = make_view(3, true);
        let obs = enc.encode(&view);
        assert_eq!(obs.len(), enc.observation_dim());
        assert!(obs.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn features_are_bounded() {
        let cfg = AgentConfig::default();
        let enc = StateEncoder::new(&cfg, 4);
        let view = make_view(15, true);
        let obs = enc.encode(&view);
        assert!(
            obs.iter().all(|v| v.abs() <= 2.5),
            "unbounded feature found: max={}",
            obs.iter().cloned().fold(f32::MIN, f32::max)
        );
    }

    #[test]
    fn empty_slots_are_zero() {
        let cfg = AgentConfig::small();
        let enc = StateEncoder::new(&cfg, 4);
        let view = make_view(1, false);
        let obs = enc.encode(&view);
        // With 1 pending job and 4 queue slots, slots 2..4 must be all-zero.
        let class_len = 4 * CLASS_FEATURES;
        let slot1_start = class_len + QUEUE_FEATURES;
        assert!(obs[class_len] == 1.0, "first slot presence flag");
        assert!(obs[slot1_start..class_len + 4 * QUEUE_FEATURES]
            .iter()
            .all(|&v| v == 0.0));
    }

    #[test]
    fn queue_slots_are_edf_ordered() {
        let cfg = AgentConfig::default();
        let enc = StateEncoder::new(&cfg, 4);
        let view = make_view(4, false);
        let slots = enc.queue_slot_jobs(&view);
        for w in slots.windows(2) {
            assert!(w[0].deadline <= w[1].deadline);
        }
    }

    #[test]
    fn heterogeneity_blind_encoding_hides_class_differences() {
        let aware = StateEncoder::new(&AgentConfig::default(), 4);
        let blind = StateEncoder::new(&AgentConfig::default().heterogeneity_blind(), 4);
        let view = make_view(2, false);
        let obs_aware = aware.encode(&view);
        let obs_blind = blind.encode(&view);
        assert_eq!(obs_aware.len(), obs_blind.len());
        // In the blind encoding all class blocks are identical.
        let block = CLASS_FEATURES;
        for c in 1..4 {
            assert_eq!(
                &obs_blind[0..block],
                &obs_blind[c * block..(c + 1) * block],
                "blind class blocks must be identical"
            );
        }
        // In the aware encoding at least one pair differs (GPU vs CPU class).
        let mut any_diff = false;
        for c in 1..4 {
            if obs_aware[0..block] != obs_aware[c * block..(c + 1) * block] {
                any_diff = true;
            }
        }
        assert!(any_diff);
    }

    #[test]
    fn observation_changes_when_jobs_start() {
        let cfg = AgentConfig::default();
        let enc = StateEncoder::new(&cfg, 4);
        let idle = make_view(2, false);
        let busy = make_view(2, true);
        assert_ne!(enc.encode(&idle), enc.encode(&busy));
    }
}
