//! The composable policy registry: every scheduler the harness can evaluate
//! — classical heuristics, DRL agents, ad-hoc test policies — registered
//! under a name, composed with adapters through parsed **spec strings**.
//!
//! # Spec-string grammar
//!
//! ```text
//! spec    := base ('+' adapter)*
//! base    := a registered policy name ("edf", "greedy-elastic", "drl", …)
//! adapter := "rigid"                  -- strip elasticity (RigidAdapter)
//!          | "admission"              -- deadline admission control, margin 0
//!          | "admission(" margin ")"  -- admission control with slack margin
//! ```
//!
//! `"edf+rigid"` is EDF with elasticity stripped; `"greedy-elastic+admission"`
//! is the greedy-elastic heuristic behind deadline-based admission control;
//! adapters stack left to right, so `"edf+rigid+admission(5)"` wraps rigid
//! EDF in an admission controller requiring 5 s of slack. [`PolicySpec`]
//! round-trips: parsing the canonical rendering of a spec yields the same
//! spec, and rendering a parsed canonical string reproduces it byte for byte.

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

use tcrm_baselines::{
    all_baseline_names, by_name, AdmissionAdapter, RigidAdapter, UnknownBaselineError,
};
use tcrm_core::DrlScheduler;
use tcrm_sim::Scheduler;

/// A named constructor of fresh [`Scheduler`] instances.
///
/// One factory is registered per policy name; the harness calls
/// [`PolicyFactory::build`] once per replication (or reuses an instance via
/// [`Scheduler::reset`]). `build(seed)` must be deterministic: the same seed
/// always yields a scheduler that behaves identically.
///
/// ```
/// use tcrm_bench::{PolicyFactory, PolicyRegistry};
/// use tcrm_sim::{Action, ClusterView, Scheduler};
///
/// /// A policy that never starts anything (useful as a lower bound).
/// struct IdleFactory;
///
/// struct Idle;
/// impl Scheduler for Idle {
///     fn name(&self) -> &str {
///         "idle"
///     }
///     fn decide(&mut self, _view: &ClusterView) -> Vec<Action> {
///         vec![Action::Wait]
///     }
/// }
///
/// impl PolicyFactory for IdleFactory {
///     fn name(&self) -> &str {
///         "idle"
///     }
///     fn build(&self, _seed: u64) -> Box<dyn Scheduler> {
///         Box::new(Idle)
///     }
/// }
///
/// let mut registry = PolicyRegistry::with_baselines();
/// registry.register(IdleFactory).unwrap();
/// assert!(registry.names().contains(&"idle"));
/// // Custom entries compose with adapters like any other policy:
/// let spec = registry.parse("idle+rigid").unwrap();
/// assert_eq!(spec.to_string(), "idle+rigid");
/// ```
pub trait PolicyFactory: Send + Sync {
    /// The registered policy name (the `base` of the spec grammar). Must not
    /// contain `'+'` or parentheses.
    fn name(&self) -> &str;

    /// Construct a fresh scheduler for one replication.
    fn build(&self, seed: u64) -> Box<dyn Scheduler>;

    /// True when one built instance may serve many replications, re-armed
    /// between runs with [`Scheduler::reset`] instead of being rebuilt.
    ///
    /// Only return `true` if `reset(seed)` fully re-derives every
    /// seed-dependent piece of state `build(seed)` would have initialised —
    /// otherwise a reused instance would silently run every replication on
    /// one seed. The default is the safe `false`: the evaluation sweep then
    /// builds a fresh scheduler per replication (all the factories this
    /// crate ships override this, since the bundled schedulers implement
    /// `reset`).
    fn reusable(&self) -> bool {
        false
    }
}

/// Errors of registry operations and spec-string parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyError {
    /// The spec's base name is not registered.
    UnknownPolicy {
        /// The name that failed to resolve.
        requested: String,
        /// Every name the registry currently holds.
        registered: Vec<String>,
    },
    /// A factory with this name is already registered.
    DuplicatePolicy(String),
    /// The factory name itself violates the grammar (contains `+` etc.).
    InvalidPolicyName(String),
    /// The spec string does not follow the grammar.
    InvalidSpec {
        /// The offending spec string.
        spec: String,
        /// What is wrong with it.
        reason: String,
    },
    /// A checkpoint file could not be written.
    CheckpointIo {
        /// The checkpoint path.
        path: String,
        /// The underlying I/O error.
        message: String,
    },
    /// A workload or scenario of the evaluation grid is invalid: a point's
    /// workload spec failed validation, a scenario spec failed to parse, or
    /// a scenario source (e.g. a `replay(path)` trace) could not be built.
    /// Surfaced as a configuration error before any cell is simulated,
    /// instead of aborting mid-sweep.
    Workload {
        /// What was being validated (a scenario id or an evaluation point).
        context: String,
        /// The underlying workload error.
        message: String,
    },
    /// The requested shard is out of range (`index` must be `< count`).
    InvalidShard {
        /// Requested shard index.
        index: usize,
        /// Total shard count.
        count: usize,
    },
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::UnknownPolicy {
                requested,
                registered,
            } => write!(
                f,
                "unknown policy '{requested}'; registered policies: {}",
                registered.join(", ")
            ),
            PolicyError::DuplicatePolicy(name) => {
                write!(f, "a policy named '{name}' is already registered")
            }
            PolicyError::InvalidPolicyName(name) => write!(
                f,
                "invalid policy name '{name}': names must be non-empty and free of '+', '(' and ')'"
            ),
            PolicyError::InvalidSpec { spec, reason } => {
                write!(f, "invalid policy spec '{spec}': {reason}")
            }
            PolicyError::CheckpointIo { path, message } => {
                write!(f, "could not write checkpoint '{path}': {message}")
            }
            PolicyError::Workload { context, message } => {
                write!(f, "invalid workload configuration ({context}): {message}")
            }
            PolicyError::InvalidShard { index, count } => {
                write!(
                    f,
                    "invalid shard {index}/{count}: the index must be smaller than the count \
                     (counting from zero), and the count must be at least 1"
                )
            }
        }
    }
}

impl std::error::Error for PolicyError {}

/// An adapter applied on top of a base policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdapterSpec {
    /// [`RigidAdapter`]: force minimum parallelism, drop scale actions.
    Rigid,
    /// [`AdmissionAdapter`]: refuse to start jobs whose deadline is already
    /// unreachable, requiring `margin` seconds of residual slack.
    Admission {
        /// Slack (seconds) a job must retain to be admitted.
        margin: f64,
    },
}

impl fmt::Display for AdapterSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdapterSpec::Rigid => write!(f, "rigid"),
            AdapterSpec::Admission { margin } if *margin == 0.0 => write!(f, "admission"),
            AdapterSpec::Admission { margin } => write!(f, "admission({margin})"),
        }
    }
}

/// A parsed policy spec: a base policy name plus a stack of adapters.
///
/// The [`fmt::Display`] rendering is the canonical spec string
/// (`"edf+rigid"`, `"greedy-elastic+admission(2.5)"`); [`FromStr`] parses it
/// back, and the two round-trip.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicySpec {
    base: String,
    adapters: Vec<AdapterSpec>,
}

impl PolicySpec {
    /// A bare base policy with no adapters.
    pub fn base(name: impl Into<String>) -> Self {
        PolicySpec {
            base: name.into(),
            adapters: Vec::new(),
        }
    }

    /// Stack one more adapter on top.
    pub fn with_adapter(mut self, adapter: AdapterSpec) -> Self {
        self.adapters.push(adapter);
        self
    }

    /// The base policy name.
    pub fn base_name(&self) -> &str {
        &self.base
    }

    /// The adapter stack, innermost first.
    pub fn adapters(&self) -> &[AdapterSpec] {
        &self.adapters
    }

    /// The canonical spec string — the label used in result tables.
    pub fn name(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.base)?;
        for adapter in &self.adapters {
            write!(f, "+{adapter}")?;
        }
        Ok(())
    }
}

impl FromStr for PolicySpec {
    type Err = PolicyError;

    fn from_str(s: &str) -> Result<Self, PolicyError> {
        let invalid = |reason: &str| PolicyError::InvalidSpec {
            spec: s.to_string(),
            reason: reason.to_string(),
        };
        let mut segments = s.split('+');
        let base = segments.next().unwrap_or_default();
        if base.is_empty() {
            return Err(invalid("the base policy name is empty"));
        }
        if base.contains('(') || base.contains(')') {
            return Err(invalid("the base policy name must not contain parentheses"));
        }
        let mut adapters = Vec::new();
        for segment in segments {
            if segment == "rigid" {
                adapters.push(AdapterSpec::Rigid);
            } else if segment == "admission" {
                adapters.push(AdapterSpec::Admission { margin: 0.0 });
            } else if let Some(args) = segment
                .strip_prefix("admission(")
                .and_then(|rest| rest.strip_suffix(')'))
            {
                let margin: f64 = args
                    .parse()
                    .map_err(|_| invalid("the admission margin is not a number"))?;
                if !margin.is_finite() || margin < 0.0 {
                    return Err(invalid("the admission margin must be finite and >= 0"));
                }
                adapters.push(AdapterSpec::Admission { margin });
            } else if segment.is_empty() {
                return Err(invalid("empty adapter segment (trailing or doubled '+')"));
            } else {
                return Err(invalid(
                    "unknown adapter (expected 'rigid', 'admission' or 'admission(<seconds>)')",
                ));
            }
        }
        Ok(PolicySpec {
            base: base.to_string(),
            adapters,
        })
    }
}

/// A [`PolicyFactory`] for one named baseline from `tcrm-baselines`.
struct BaselineFactory {
    name: &'static str,
}

impl PolicyFactory for BaselineFactory {
    fn name(&self) -> &str {
        self.name
    }

    fn build(&self, seed: u64) -> Box<dyn Scheduler> {
        by_name(self.name, seed).expect("baseline validated at registration")
    }

    fn reusable(&self) -> bool {
        // Every bundled baseline either is stateless across runs or
        // implements `Scheduler::reset` (the random scheduler re-seeds).
        true
    }
}

/// A [`PolicyFactory`] cloning a (trained) DRL agent per replication.
struct DrlFactory {
    name: String,
    agent: DrlScheduler,
}

impl PolicyFactory for DrlFactory {
    fn name(&self) -> &str {
        &self.name
    }

    fn build(&self, seed: u64) -> Box<dyn Scheduler> {
        let mut agent = self.agent.clone();
        agent.reset(seed);
        Box::new(agent)
    }

    fn reusable(&self) -> bool {
        // `DrlScheduler::reset` re-derives the action RNG and per-epoch
        // state; reuse avoids cloning the policy weights per replication.
        true
    }
}

/// A [`PolicyFactory`] built from a closure (ad-hoc policies in tests and
/// examples).
struct FnFactory {
    name: String,
    build: Box<dyn Fn(u64) -> Box<dyn Scheduler> + Send + Sync>,
}

impl PolicyFactory for FnFactory {
    fn name(&self) -> &str {
        &self.name
    }

    fn build(&self, seed: u64) -> Box<dyn Scheduler> {
        (self.build)(seed)
    }
}

/// The open registry of evaluable policies.
///
/// Registration order is preserved (it is the order `names()` reports), and
/// names are unique. The registry resolves and validates spec strings
/// ([`PolicyRegistry::parse`]) and instantiates composed schedulers
/// ([`PolicyRegistry::build`]).
///
/// ```
/// use tcrm_bench::PolicyRegistry;
///
/// let registry = PolicyRegistry::with_baselines();
/// let spec = registry.parse("greedy-elastic+rigid").unwrap();
/// let mut scheduler = registry.build(&spec, 7).unwrap();
/// assert_eq!(scheduler.name(), "greedy-elastic-rigid");
/// // Unknown bases fail with the full menu:
/// let err = registry.parse("edfff").unwrap_err();
/// assert!(err.to_string().contains("registered policies"));
/// ```
#[derive(Default)]
pub struct PolicyRegistry {
    factories: Vec<Box<dyn PolicyFactory>>,
    index: HashMap<String, usize>,
}

impl PolicyRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-populated with every heuristic `tcrm-baselines` ships
    /// (headline set first, then the extended set).
    pub fn with_baselines() -> Self {
        let mut registry = Self::new();
        for name in all_baseline_names() {
            registry
                .register(BaselineFactory { name })
                .expect("baseline names are unique");
        }
        registry
    }

    /// Register a factory. Fails on duplicate or grammar-violating names.
    pub fn register(&mut self, factory: impl PolicyFactory + 'static) -> Result<(), PolicyError> {
        let name = factory.name().to_string();
        if name.is_empty() || name.contains(['+', '(', ')']) {
            return Err(PolicyError::InvalidPolicyName(name));
        }
        if self.index.contains_key(&name) {
            return Err(PolicyError::DuplicatePolicy(name));
        }
        self.index.insert(name, self.factories.len());
        self.factories.push(Box::new(factory));
        Ok(())
    }

    /// Register a DRL agent under its own name (cloned and re-seeded per
    /// replication).
    pub fn register_drl(&mut self, agent: DrlScheduler) -> Result<(), PolicyError> {
        self.register(DrlFactory {
            name: agent.name().to_string(),
            agent,
        })
    }

    /// Register a closure-backed factory.
    pub fn register_fn(
        &mut self,
        name: impl Into<String>,
        build: impl Fn(u64) -> Box<dyn Scheduler> + Send + Sync + 'static,
    ) -> Result<(), PolicyError> {
        self.register(FnFactory {
            name: name.into(),
            build: Box::new(build),
        })
    }

    /// Every registered policy name, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.factories.iter().map(|f| f.name()).collect()
    }

    /// True when `name` is registered as a base policy.
    pub fn contains(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// The factory registered under `name`.
    pub fn get(&self, name: &str) -> Option<&dyn PolicyFactory> {
        self.index.get(name).map(|&i| &*self.factories[i])
    }

    /// Parse a spec string and validate its base against the registry.
    pub fn parse(&self, spec: &str) -> Result<PolicySpec, PolicyError> {
        let parsed: PolicySpec = spec.parse()?;
        self.validate(&parsed)?;
        Ok(parsed)
    }

    /// Validate that a spec's base policy is registered.
    pub fn validate(&self, spec: &PolicySpec) -> Result<(), PolicyError> {
        if self.contains(spec.base_name()) {
            Ok(())
        } else {
            Err(PolicyError::UnknownPolicy {
                requested: spec.base_name().to_string(),
                registered: self.names().iter().map(|n| n.to_string()).collect(),
            })
        }
    }

    /// Instantiate a fresh scheduler for `spec` and `seed`, applying the
    /// adapter stack innermost-first.
    pub fn build(&self, spec: &PolicySpec, seed: u64) -> Result<Box<dyn Scheduler>, PolicyError> {
        self.validate(spec)?;
        let factory = self.get(spec.base_name()).expect("validated above");
        let mut scheduler = factory.build(seed);
        for adapter in spec.adapters() {
            scheduler = match adapter {
                AdapterSpec::Rigid => Box::new(RigidAdapter::new(scheduler)),
                AdapterSpec::Admission { margin } => {
                    Box::new(AdmissionAdapter::with_margin(scheduler, *margin))
                }
            };
        }
        Ok(scheduler)
    }

    /// Parse and instantiate in one step.
    pub fn build_str(&self, spec: &str, seed: u64) -> Result<Box<dyn Scheduler>, PolicyError> {
        let spec = self.parse(spec)?;
        self.build(&spec, seed)
    }
}

impl From<UnknownBaselineError> for PolicyError {
    fn from(err: UnknownBaselineError) -> Self {
        PolicyError::UnknownPolicy {
            requested: err.requested,
            registered: all_baseline_names().iter().map(|n| n.to_string()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcrm_baselines::BASELINE_NAMES;

    #[test]
    fn with_baselines_registers_every_heuristic_in_order() {
        let registry = PolicyRegistry::with_baselines();
        let names = registry.names();
        assert_eq!(names, all_baseline_names());
        for name in BASELINE_NAMES {
            assert!(registry.contains(name));
            let sched = registry.get(name).unwrap().build(3);
            assert_eq!(sched.name(), name);
        }
    }

    #[test]
    fn duplicate_and_invalid_names_are_rejected() {
        let mut registry = PolicyRegistry::with_baselines();
        let dup = registry.register_fn("edf", |_| panic!("never built"));
        assert_eq!(dup, Err(PolicyError::DuplicatePolicy("edf".into())));
        let bad = registry.register_fn("my+policy", |_| panic!("never built"));
        assert_eq!(bad, Err(PolicyError::InvalidPolicyName("my+policy".into())));
    }

    #[test]
    fn spec_strings_round_trip() {
        let cases = [
            "edf",
            "edf+rigid",
            "greedy-elastic+admission",
            "edf+admission(2.5)",
            "edf+rigid+admission(5)",
            "tetris+admission+rigid",
        ];
        for case in cases {
            let spec: PolicySpec = case.parse().unwrap();
            assert_eq!(spec.to_string(), case, "canonical string must re-render");
            let reparsed: PolicySpec = spec.to_string().parse().unwrap();
            assert_eq!(reparsed, spec, "render-then-parse must round-trip");
        }
    }

    #[test]
    fn invalid_specs_are_rejected_with_reasons() {
        for bad in [
            "",
            "+rigid",
            "edf+",
            "edf++rigid",
            "edf+elastic",
            "edf+admission(",
            "edf+admission()",
            "edf+admission(abc)",
            "edf+admission(-1)",
            "edf+admission(inf)",
            "edf(2)",
        ] {
            let parsed: Result<PolicySpec, _> = bad.parse();
            assert!(
                matches!(parsed, Err(PolicyError::InvalidSpec { .. })),
                "'{bad}' must fail to parse, got {parsed:?}"
            );
        }
    }

    #[test]
    fn unknown_base_lists_the_registry() {
        let registry = PolicyRegistry::with_baselines();
        let err = registry.parse("warp-speed+rigid").unwrap_err();
        match &err {
            PolicyError::UnknownPolicy {
                requested,
                registered,
            } => {
                assert_eq!(requested, "warp-speed");
                assert_eq!(registered.len(), all_baseline_names().len());
            }
            other => panic!("unexpected error {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("greedy-elastic") && msg.contains("heft"));
    }

    #[test]
    fn adapters_stack_in_spec_order() {
        let registry = PolicyRegistry::with_baselines();
        let sched = registry.build_str("edf+rigid+admission(5)", 0).unwrap();
        // Outermost adapter is the admission controller.
        assert_eq!(sched.name(), "edf-rigid+admission");
        let sched = registry.build_str("edf+admission+rigid", 0).unwrap();
        assert_eq!(sched.name(), "edf+admission-rigid");
    }

    #[test]
    fn build_is_seed_deterministic_for_random() {
        let registry = PolicyRegistry::with_baselines();
        let spec = registry.parse("random").unwrap();
        let a = registry.build(&spec, 42).unwrap();
        let b = registry.build(&spec, 42).unwrap();
        assert_eq!(a.name(), b.name());
    }
}
