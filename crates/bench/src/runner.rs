//! Running `(scheduler × workload point × seed)` grids and collecting rows.

use crate::results::ResultRow;
use rayon::prelude::*;
use tcrm_baselines::{by_name, RigidAdapter};
use tcrm_core::DrlScheduler;
use tcrm_sim::{ClusterSpec, Scheduler, SimConfig, Simulator};
use tcrm_workload::{generate, WorkloadSpec};

/// A scheduler that can be instantiated fresh for every replication.
#[derive(Debug, Clone)]
pub enum SchedulerSpec {
    /// One of the named heuristics from `tcrm-baselines`.
    Baseline(String),
    /// A baseline wrapped in the rigid adapter (elasticity stripped).
    RigidBaseline(String),
    /// A (trained or untrained) DRL agent; cloned per replication.
    Drl(Box<DrlScheduler>),
}

impl SchedulerSpec {
    /// Convenience constructor for a named baseline.
    pub fn baseline(name: &str) -> Self {
        SchedulerSpec::Baseline(name.to_string())
    }

    /// Convenience constructor for a DRL agent.
    pub fn drl(agent: DrlScheduler) -> Self {
        SchedulerSpec::Drl(Box::new(agent))
    }

    /// The display name used in result tables.
    pub fn name(&self) -> String {
        match self {
            SchedulerSpec::Baseline(name) => name.clone(),
            SchedulerSpec::RigidBaseline(name) => format!("{name}-rigid"),
            SchedulerSpec::Drl(agent) => agent.name().to_string(),
        }
    }

    /// Instantiate a fresh scheduler for one replication.
    pub fn build(&self, seed: u64) -> Box<dyn Scheduler> {
        match self {
            SchedulerSpec::Baseline(name) => {
                by_name(name, seed).unwrap_or_else(|| panic!("unknown baseline '{name}'"))
            }
            SchedulerSpec::RigidBaseline(name) => {
                let inner =
                    by_name(name, seed).unwrap_or_else(|| panic!("unknown baseline '{name}'"));
                Box::new(RigidAdapter::new(inner))
            }
            SchedulerSpec::Drl(agent) => Box::new((**agent).clone()),
        }
    }
}

/// One evaluation point: cluster, engine knobs, workload family and the seeds
/// to replicate over.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Cluster specification.
    pub cluster: ClusterSpec,
    /// Engine configuration.
    pub sim: SimConfig,
    /// Workload family (including the offered load and job count).
    pub workload: WorkloadSpec,
    /// Replication seeds.
    pub seeds: Vec<u64>,
}

impl EvalConfig {
    /// A small default evaluation configuration.
    pub fn new(cluster: ClusterSpec, workload: WorkloadSpec, seeds: Vec<u64>) -> Self {
        EvalConfig {
            cluster,
            sim: SimConfig::default(),
            workload,
            seeds,
        }
    }
}

/// Evaluate one scheduler on one workload point, one row per seed.
/// Replications run in parallel (rayon); each replication is itself fully
/// deterministic, so the result set does not depend on the thread schedule.
pub fn evaluate(spec: &SchedulerSpec, config: &EvalConfig, parameter: f64) -> Vec<ResultRow> {
    config
        .seeds
        .par_iter()
        .map(|&seed| {
            let jobs = generate(&config.workload, &config.cluster, seed);
            let mut scheduler = spec.build(seed);
            let result = Simulator::new(config.cluster.clone(), config.sim.clone())
                .run(jobs, &mut scheduler);
            ResultRow {
                scheduler: spec.name(),
                parameter,
                seed,
                summary: result.summary,
            }
        })
        .collect()
}

/// Evaluate a set of schedulers over a set of `(parameter, workload)` points.
pub fn evaluate_grid(
    specs: &[SchedulerSpec],
    points: &[(f64, WorkloadSpec)],
    cluster: &ClusterSpec,
    sim: &SimConfig,
    seeds: &[u64],
) -> Vec<ResultRow> {
    let mut rows = Vec::new();
    for (parameter, workload) in points {
        let config = EvalConfig {
            cluster: cluster.clone(),
            sim: sim.clone(),
            workload: workload.clone(),
            seeds: seeds.to_vec(),
        };
        for spec in specs {
            rows.extend(evaluate(spec, &config, *parameter));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(load: f64) -> EvalConfig {
        EvalConfig::new(
            ClusterSpec::icpp_default(),
            WorkloadSpec::icpp_default()
                .with_num_jobs(30)
                .with_load(load),
            vec![1, 2],
        )
    }

    #[test]
    fn evaluate_produces_one_row_per_seed() {
        let rows = evaluate(&SchedulerSpec::baseline("edf"), &quick_config(0.7), 0.7);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.scheduler == "edf"));
        assert!(rows.iter().all(|r| r.summary.total_jobs == 30));
        assert!(rows.iter().all(|r| r.parameter == 0.7));
    }

    #[test]
    fn evaluation_is_deterministic_across_calls() {
        let spec = SchedulerSpec::baseline("greedy-elastic");
        let a = evaluate(&spec, &quick_config(0.9), 0.9);
        let b = evaluate(&spec, &quick_config(0.9), 0.9);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.summary, y.summary);
        }
    }

    #[test]
    fn grid_covers_all_cells() {
        let specs = vec![
            SchedulerSpec::baseline("fifo"),
            SchedulerSpec::RigidBaseline("greedy-elastic".into()),
        ];
        let points = vec![
            (
                0.5,
                WorkloadSpec::icpp_default()
                    .with_num_jobs(20)
                    .with_load(0.5),
            ),
            (
                0.9,
                WorkloadSpec::icpp_default()
                    .with_num_jobs(20)
                    .with_load(0.9),
            ),
        ];
        let rows = evaluate_grid(
            &specs,
            &points,
            &ClusterSpec::icpp_default(),
            &SimConfig::default(),
            &[3],
        );
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().any(|r| r.scheduler == "greedy-elastic-rigid"));
    }

    #[test]
    #[should_panic]
    fn unknown_baseline_panics() {
        SchedulerSpec::baseline("no-such-policy").build(0);
    }
}
