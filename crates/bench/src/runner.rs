//! Running `(policy × workload point × seed)` grids and collecting rows.
//!
//! The entry point is the builder-style [`EvalSession`]: it resolves policy
//! spec strings against a [`PolicyRegistry`], flattens the full evaluation
//! grid into one parallel sweep with work-stealing-friendly self-scheduling,
//! reuses per-worker simulator/view/scheduler scratch so the steady-state
//! sweep loop stays off the allocator, streams completed rows through a
//! progress callback, and checkpoints/resumes partial grids as versioned
//! JSON.

use crate::policy::{PolicyError, PolicyRegistry, PolicySpec};
use crate::results::{ResultRow, ResultTable};
use parking_lot::Mutex;
use rayon::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use tcrm_sim::{ClusterSpec, ClusterView, Scheduler, SimConfig, Simulator, Summary};
use tcrm_workload::{generate, WorkloadSpec};

/// Rows are streamed through this callback as replications complete:
/// `(row, completed_so_far, total_to_compute)`. Called from worker threads
/// in parallel mode, so implementations must be `Send + Sync`.
pub type ProgressCallback = Box<dyn Fn(&ResultRow, usize, usize) + Send + Sync>;

/// What [`EvalSession::run`] produced, beyond the table itself.
pub struct EvalReport {
    /// The full result table, rows in canonical grid order
    /// (point-major, then policy, then seed).
    pub table: ResultTable,
    /// Rows simulated by this run.
    pub computed: usize,
    /// Rows loaded from the resume checkpoint instead of being re-simulated.
    pub resumed: usize,
}

/// One flattened grid cell.
#[derive(Clone, Copy)]
struct Cell {
    policy: usize,
    point: usize,
    seed: u64,
}

/// FNV-1a hash of the serialised grid configuration (cluster, engine config,
/// per-point workloads) — the provenance stamp of a checkpoint. Stable
/// across processes because it hashes the JSON rendering, not Rust's
/// randomised `Hash`.
fn grid_fingerprint(
    cluster: &ClusterSpec,
    sim: &SimConfig,
    points: &[(f64, WorkloadSpec)],
) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(serde_json::to_string(cluster)
        .unwrap_or_default()
        .as_bytes());
    eat(serde_json::to_string(sim).unwrap_or_default().as_bytes());
    for (parameter, workload) in points {
        eat(&parameter.to_bits().to_le_bytes());
        eat(serde_json::to_string(workload)
            .unwrap_or_default()
            .as_bytes());
    }
    format!("{hash:016x}")
}

/// Per-worker scratch reused across every cell the worker executes: one
/// simulator (reset per replication), one snapshot buffer, and one scheduler
/// instance per policy (re-armed with [`Scheduler::reset`]). This extends
/// the zero-allocation stepping contract to the sweep loop — steady-state
/// replication reuses the cluster, event heap, metrics buffers and view
/// instead of reconstructing them per cell.
struct WorkerScratch {
    sim: Simulator,
    view: ClusterView,
    schedulers: HashMap<usize, Box<dyn Scheduler>>,
}

impl WorkerScratch {
    fn new(cluster: &ClusterSpec, sim: &SimConfig) -> Self {
        let sim = Simulator::new(cluster.clone(), sim.clone());
        let view = sim.view();
        WorkerScratch {
            sim,
            view,
            schedulers: HashMap::new(),
        }
    }
}

/// A builder-style evaluation session over one `(policy × point × seed)`
/// grid.
///
/// ```
/// use tcrm_bench::{EvalSession, PolicyRegistry};
/// use tcrm_sim::{ClusterSpec, SimConfig};
/// use tcrm_workload::WorkloadSpec;
///
/// let registry = PolicyRegistry::with_baselines();
/// let report = EvalSession::new(&registry)
///     .policies(["edf", "greedy-elastic+rigid"])
///     .unwrap()
///     .cluster(ClusterSpec::icpp_default())
///     .sim(SimConfig::default())
///     .point(0.9, WorkloadSpec::icpp_default().with_num_jobs(30).with_load(0.9))
///     .seeds(&[1, 2])
///     .run()
///     .unwrap();
/// // 2 policies × 1 point × 2 seeds:
/// assert_eq!(report.table.rows.len(), 4);
/// assert!(report.table.rows.iter().any(|r| r.scheduler == "greedy-elastic+rigid"));
/// ```
///
/// Interrupted full-scale sweeps resume from a versioned JSON checkpoint:
///
/// ```no_run
/// use tcrm_bench::{EvalSession, PolicyRegistry};
/// use tcrm_workload::WorkloadSpec;
///
/// let registry = PolicyRegistry::with_baselines();
/// let report = EvalSession::new(&registry)
///     .policies(["edf"])
///     .unwrap()
///     .point(0.9, WorkloadSpec::icpp_default().with_load(0.9))
///     .seeds(&[1, 2, 3, 4, 5])
///     // Rows already present in the checkpoint are loaded, not re-run;
///     // completed rows are flushed back so a second interruption loses
///     // nothing.
///     .checkpoint("results/main-grid.json")
///     .run()
///     .unwrap();
/// println!("resumed {} rows, simulated {}", report.resumed, report.computed);
/// ```
pub struct EvalSession<'r> {
    registry: &'r PolicyRegistry,
    policies: Vec<PolicySpec>,
    points: Vec<(f64, WorkloadSpec)>,
    cluster: ClusterSpec,
    sim: SimConfig,
    seeds: Vec<u64>,
    parallel: bool,
    checkpoint: Option<PathBuf>,
    checkpoint_every: usize,
    progress: Option<ProgressCallback>,
    experiment: String,
    caption: String,
    parameter_name: String,
}

impl<'r> EvalSession<'r> {
    /// Start a session against a policy registry. Defaults: the ICPP default
    /// cluster, default engine config, seed `[1]`, parallel execution.
    pub fn new(registry: &'r PolicyRegistry) -> Self {
        EvalSession {
            registry,
            policies: Vec::new(),
            points: Vec::new(),
            cluster: ClusterSpec::icpp_default(),
            sim: SimConfig::default(),
            seeds: vec![1],
            parallel: true,
            checkpoint: None,
            checkpoint_every: 32,
            progress: None,
            experiment: "eval".into(),
            caption: String::new(),
            parameter_name: "parameter".into(),
        }
    }

    /// Add policies by spec string (see the [`crate::policy`] grammar).
    /// Fails fast on unknown bases or malformed specs.
    pub fn policies<I, S>(mut self, specs: I) -> Result<Self, PolicyError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        for spec in specs {
            self.policies.push(self.registry.parse(spec.as_ref())?);
        }
        Ok(self)
    }

    /// Add one pre-parsed policy spec (validated against the registry).
    pub fn policy_spec(mut self, spec: PolicySpec) -> Result<Self, PolicyError> {
        self.registry.validate(&spec)?;
        self.policies.push(spec);
        Ok(self)
    }

    /// Add one `(parameter, workload)` evaluation point.
    pub fn point(mut self, parameter: f64, workload: WorkloadSpec) -> Self {
        self.points.push((parameter, workload));
        self
    }

    /// Add many `(parameter, workload)` points (e.g. from
    /// `tcrm_workload::load_sweep`).
    pub fn points(mut self, points: impl IntoIterator<Item = (f64, WorkloadSpec)>) -> Self {
        self.points.extend(points);
        self
    }

    /// The cluster every replication runs on.
    pub fn cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = cluster;
        self
    }

    /// The engine configuration.
    pub fn sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Replication seeds per `(policy, point)` cell.
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// Run the sweep on the calling thread only. The flattened grid order
    /// and therefore the produced table are identical to the parallel path;
    /// this is the reference the determinism tests compare against.
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Stream completed rows through `callback` (see [`ProgressCallback`]).
    pub fn on_row(
        mut self,
        callback: impl Fn(&ResultRow, usize, usize) + Send + Sync + 'static,
    ) -> Self {
        self.progress = Some(Box::new(callback));
        self
    }

    /// Checkpoint completed rows to `path` as versioned JSON and, when the
    /// file already holds rows of this grid, resume from them instead of
    /// re-simulating.
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Flush the checkpoint after every `rows` completed rows (default 32).
    pub fn checkpoint_every(mut self, rows: usize) -> Self {
        self.checkpoint_every = rows.max(1);
        self
    }

    /// Name the produced table (experiment id, caption, parameter column).
    pub fn table(
        mut self,
        experiment: impl Into<String>,
        caption: impl Into<String>,
        parameter_name: impl Into<String>,
    ) -> Self {
        self.experiment = experiment.into();
        self.caption = caption.into();
        self.parameter_name = parameter_name.into();
        self
    }

    /// Execute the sweep and return the table plus resume statistics.
    ///
    /// The grid is flattened point-major (point, then policy, then seed) and
    /// executed as one self-scheduling parallel sweep; rows come back in
    /// canonical grid order regardless of thread timing, so the rendered
    /// CSV/markdown are byte-identical between parallel and sequential runs.
    pub fn run(self) -> Result<EvalReport, PolicyError> {
        let EvalSession {
            registry,
            policies,
            points,
            cluster,
            sim,
            seeds,
            parallel,
            checkpoint,
            checkpoint_every,
            progress,
            experiment,
            caption,
            parameter_name,
        } = self;

        // Canonical cell order: point-major, then policy, then seed.
        let mut cells = Vec::with_capacity(points.len() * policies.len() * seeds.len());
        for point in 0..points.len() {
            for policy in 0..policies.len() {
                for &seed in &seeds {
                    cells.push(Cell {
                        policy,
                        point,
                        seed,
                    });
                }
            }
        }

        // Fingerprint of everything that determines a row's value besides its
        // (policy, parameter, seed) key: the cluster, the engine config and
        // the per-point workloads. A checkpoint carrying a different
        // fingerprint comes from a different grid configuration and must not
        // be resumed (its rows would be silently presented as this run's
        // results). DRL agent weights are not part of the fingerprint —
        // retraining an agent under the same name requires a fresh
        // checkpoint path.
        let fingerprint = grid_fingerprint(&cluster, &sim, &points);

        // Rows are keyed by (label, parameter, seed). If two points share a
        // parameter value the key cannot tell their cells apart, so those
        // cells are never resumed (and always recomputed).
        let mut parameter_counts: HashMap<u64, usize> = HashMap::new();
        for (parameter, _) in &points {
            *parameter_counts.entry(parameter.to_bits()).or_default() += 1;
        }
        let ambiguous =
            |parameter_bits: u64| parameter_counts.get(&parameter_bits).copied().unwrap_or(0) > 1;

        // Resume: index previously completed rows by (label, parameter, seed).
        let cached: HashMap<(String, u64, u64), ResultRow> = checkpoint
            .as_deref()
            .filter(|p| p.exists())
            .and_then(|p| ResultTable::load_json(p).ok())
            .filter(|t| t.fingerprint == fingerprint)
            .map(|t| {
                t.rows
                    .into_iter()
                    .filter(|r| !ambiguous(r.parameter.to_bits()))
                    .map(|r| ((r.scheduler.clone(), r.parameter.to_bits(), r.seed), r))
                    .collect()
            })
            .unwrap_or_default();
        let key_of = |cell: &Cell| {
            (
                policies[cell.policy].name(),
                points[cell.point].0.to_bits(),
                cell.seed,
            )
        };
        let (resumed_cells, todo): (Vec<Cell>, Vec<Cell>) = cells
            .iter()
            .copied()
            .partition(|c| cached.contains_key(&key_of(c)));
        let resumed = resumed_cells.len();
        let total = todo.len();

        // Whether each policy's worker-cached instance may be reused across
        // replications (see [`crate::policy::PolicyFactory::reusable`]);
        // non-reusable policies are rebuilt fresh for every cell.
        let reusable: Vec<bool> = policies
            .iter()
            .map(|spec| {
                registry
                    .get(spec.base_name())
                    .map(|f| f.reusable())
                    .unwrap_or(false)
            })
            .collect();

        // Shared flush state for incremental checkpointing.
        let flusher = checkpoint.as_ref().map(|path| {
            let mut base = ResultTable::new(&experiment, &caption, &parameter_name);
            base.fingerprint = fingerprint.clone();
            base.extend(cached.values().cloned().collect());
            (path.clone(), Mutex::new(base))
        });
        let done = AtomicUsize::new(0);
        let run_cell = |scratch: &mut WorkerScratch, cell: &Cell| -> ResultRow {
            let (parameter, workload) = &points[cell.point];
            let spec = &policies[cell.policy];
            let jobs = generate(workload, &cluster, cell.seed);
            let mut fresh;
            let scheduler: &mut Box<dyn Scheduler> = if reusable[cell.policy] {
                let cached = scratch
                    .schedulers
                    .entry(cell.policy)
                    .or_insert_with(|| registry.build(spec, cell.seed).expect("spec validated"));
                cached.reset(cell.seed);
                cached
            } else {
                fresh = registry.build(spec, cell.seed).expect("spec validated");
                &mut fresh
            };
            let summary: Summary = scratch.sim.run_reusing(jobs, scheduler, &mut scratch.view);
            let row = ResultRow {
                scheduler: spec.name(),
                parameter: *parameter,
                seed: cell.seed,
                summary,
            };
            let completed = done.fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(callback) = progress.as_ref() {
                callback(&row, completed, total);
            }
            if let Some((path, partial)) = flusher.as_ref() {
                let mut partial = partial.lock();
                partial.rows.push(row.clone());
                if partial.rows.len() % checkpoint_every == 0 {
                    let _ = partial.save_json(path);
                }
            }
            row
        };

        let computed_rows: Vec<ResultRow> = if parallel {
            todo.par_iter()
                .map_init(
                    || WorkerScratch::new(&cluster, &sim),
                    |scratch, cell| run_cell(scratch, cell),
                )
                .collect()
        } else {
            let mut scratch = WorkerScratch::new(&cluster, &sim);
            todo.iter().map(|c| run_cell(&mut scratch, c)).collect()
        };

        // Merge computed and cached rows back into canonical grid order.
        let mut computed_iter = computed_rows.into_iter();
        let mut table = ResultTable::new(experiment, caption, parameter_name);
        table.fingerprint = fingerprint;
        for cell in &cells {
            match cached.get(&key_of(cell)) {
                Some(row) => table.rows.push(row.clone()),
                None => table.rows.push(
                    computed_iter
                        .next()
                        .expect("one computed row per todo cell"),
                ),
            }
        }
        if let Some((path, _)) = flusher.as_ref() {
            // Final flush: the complete grid in canonical order. Incremental
            // flushes above are best-effort, but a failure here would break
            // the resume guarantee, so it is reported.
            table
                .save_json(path)
                .map_err(|e| PolicyError::CheckpointIo {
                    path: path.display().to_string(),
                    message: e.to_string(),
                })?;
        }
        Ok(EvalReport {
            table,
            computed: total,
            resumed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_workload(load: f64) -> WorkloadSpec {
        WorkloadSpec::icpp_default()
            .with_num_jobs(30)
            .with_load(load)
    }

    fn session(registry: &PolicyRegistry) -> EvalSession<'_> {
        EvalSession::new(registry)
            .cluster(ClusterSpec::icpp_default())
            .sim(SimConfig::default())
    }

    #[test]
    fn session_produces_one_row_per_cell() {
        let registry = PolicyRegistry::with_baselines();
        let report = session(&registry)
            .policies(["edf"])
            .unwrap()
            .point(0.7, quick_workload(0.7))
            .seeds(&[1, 2])
            .run()
            .unwrap();
        assert_eq!(report.computed, 2);
        assert_eq!(report.resumed, 0);
        let rows = &report.table.rows;
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.scheduler == "edf"));
        assert!(rows.iter().all(|r| r.summary.total_jobs == 30));
        assert!(rows.iter().all(|r| r.parameter == 0.7));
    }

    #[test]
    fn grid_covers_all_cells_including_adapters() {
        let registry = PolicyRegistry::with_baselines();
        let report = session(&registry)
            .policies(["fifo", "greedy-elastic+rigid"])
            .unwrap()
            .point(0.5, quick_workload(0.5).with_num_jobs(20))
            .point(0.9, quick_workload(0.9).with_num_jobs(20))
            .seeds(&[3])
            .run()
            .unwrap();
        assert_eq!(report.table.rows.len(), 4);
        assert!(report
            .table
            .rows
            .iter()
            .any(|r| r.scheduler == "greedy-elastic+rigid"));
    }

    #[test]
    fn unknown_policy_fails_at_build_time() {
        let registry = PolicyRegistry::with_baselines();
        let Err(err) = session(&registry).policies(["no-such-policy"]) else {
            panic!("unknown policy must not resolve");
        };
        assert!(matches!(err, PolicyError::UnknownPolicy { .. }));
    }

    #[test]
    fn evaluation_is_deterministic_across_calls() {
        let registry = PolicyRegistry::with_baselines();
        let run = || {
            session(&registry)
                .policies(["greedy-elastic"])
                .unwrap()
                .point(0.9, quick_workload(0.9))
                .seeds(&[1, 2])
                .run()
                .unwrap()
                .table
        };
        let a = run();
        let b = run();
        for (x, y) in a.rows.iter().zip(b.rows.iter()) {
            assert_eq!(x.summary, y.summary);
        }
    }

    #[test]
    fn progress_callback_sees_every_row() {
        use std::sync::atomic::AtomicUsize;
        let registry = PolicyRegistry::with_baselines();
        let seen = std::sync::Arc::new(AtomicUsize::new(0));
        let seen_cb = std::sync::Arc::clone(&seen);
        let report = session(&registry)
            .policies(["edf", "fifo"])
            .unwrap()
            .point(0.7, quick_workload(0.7))
            .seeds(&[1, 2])
            .on_row(move |_row, done, total| {
                assert!(done <= total);
                seen_cb.fetch_add(1, Ordering::Relaxed);
            })
            .run()
            .unwrap();
        assert_eq!(seen.load(Ordering::Relaxed), 4);
        assert_eq!(report.computed, 4);
    }
}
