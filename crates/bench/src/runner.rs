//! Running `(policy × scenario × workload point × seed)` grids and
//! collecting rows.
//!
//! The entry point is the builder-style [`EvalSession`]: it resolves policy
//! spec strings against a [`PolicyRegistry`] and scenario spec strings
//! against a [`ScenarioRegistry`], flattens the full evaluation grid into
//! one parallel sweep with work-stealing-friendly self-scheduling, streams
//! each cell's jobs on demand from a per-worker cached [`WorkloadSource`]
//! (reset per replication — no per-cell materialisation), reuses per-worker
//! simulator/view/scheduler scratch so the steady-state sweep loop stays off
//! the allocator, streams completed rows through a progress callback,
//! checkpoints/resumes partial grids as versioned JSON, and shards grids
//! across processes (`shard(i, n)` + [`ResultTable::merge`]).
//!
//! The validated grid itself is a first-class value: [`EvalSession::plan`]
//! freezes a session into a [`SweepPlan`] — the canonical cell list, the
//! grid fingerprint and a `run_cell(index)` executor — which is what the
//! in-process sweep drives with rayon and the multi-process sweep
//! (`tcrm-ipc` work ring, see [`crate::mproc`]) drives across worker
//! processes. Both paths execute the *same* cells through the *same* code,
//! which is why their outputs are byte-identical.

use crate::policy::{PolicyError, PolicyRegistry, PolicySpec};
use crate::results::{ResultRow, ResultTable, DEFAULT_SCENARIO};
use parking_lot::Mutex;
use rayon::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use tcrm_sim::{ClusterSpec, ClusterView, Scheduler, SimConfig, Simulator, Summary};
use tcrm_workload::{
    ScenarioRegistry, ScenarioSpec, SourceSpec, SyntheticSource, WorkloadSource, WorkloadSpec,
};

/// Rows are streamed through this callback as replications complete:
/// `(row, completed_so_far, total_to_compute)`. Called from worker threads
/// in parallel mode, so implementations must be `Send + Sync`.
pub type ProgressCallback = Box<dyn Fn(&ResultRow, usize, usize) + Send + Sync>;

/// What [`EvalSession::run`] produced, beyond the table itself.
#[derive(Debug)]
pub struct EvalReport {
    /// The full result table, rows in canonical grid order
    /// (point-major, then scenario, then policy, then seed).
    pub table: ResultTable,
    /// Rows simulated by this run.
    pub computed: usize,
    /// Rows loaded from the resume checkpoint instead of being re-simulated.
    pub resumed: usize,
    /// A resume checkpoint existed but carried a different grid
    /// fingerprint (the cluster, engine config, workloads, scenarios or a
    /// replay trace changed), so none of its rows were trusted and the
    /// whole grid was recomputed. Callers should surface this — a user who
    /// expected a fast resume is otherwise left guessing why the sweep ran
    /// from scratch.
    pub stale_checkpoint: bool,
}

/// One flattened grid cell.
#[derive(Clone, Copy)]
struct Cell {
    policy: usize,
    scenario: usize,
    point: usize,
    seed: u64,
}

/// Collect every `replay(<path>)` trace path referenced by a scenario
/// (recursing through `merge` branches).
fn replay_paths(spec: &ScenarioSpec, out: &mut Vec<String>) {
    match spec.source_spec() {
        SourceSpec::Replay { path } => out.push(path.clone()),
        SourceSpec::Merge(a, b) => {
            replay_paths(a, out);
            replay_paths(b, out);
        }
        _ => {}
    }
}

/// FNV-1a hash of the serialised grid configuration (cluster, engine config,
/// per-point workloads, scenario ids, and the **contents** of every replay
/// trace file) — the provenance stamp of a checkpoint. Hashing trace
/// contents, not just paths, means re-recording a trace at the same path
/// invalidates cached rows instead of silently resuming results computed
/// from the old trace. Stable across processes because it hashes the JSON
/// rendering, not Rust's randomised `Hash`.
fn grid_fingerprint(
    cluster: &ClusterSpec,
    sim: &SimConfig,
    points: &[(f64, WorkloadSpec)],
    scenario_labels: &[String],
    replay_traces: &[(String, Vec<u8>)],
) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(serde_json::to_string(cluster)
        .unwrap_or_default()
        .as_bytes());
    eat(serde_json::to_string(sim).unwrap_or_default().as_bytes());
    for (parameter, workload) in points {
        eat(&parameter.to_bits().to_le_bytes());
        eat(serde_json::to_string(workload)
            .unwrap_or_default()
            .as_bytes());
    }
    for label in scenario_labels {
        eat(label.as_bytes());
        eat(b"\x1f");
    }
    for (path, contents) in replay_traces {
        eat(path.as_bytes());
        eat(b"\x1f");
        eat(contents);
        eat(b"\x1f");
    }
    format!("{hash:016x}")
}

/// Per-worker scratch reused across every cell the worker executes: one
/// simulator (reset per replication), one snapshot buffer, one scheduler
/// instance per policy (re-armed with [`Scheduler::reset`]), and one
/// workload source per `(scenario, point)` pair (re-armed with
/// [`WorkloadSource::reset`] and streamed through
/// [`Simulator::run_source`]). This extends the zero-allocation stepping
/// contract to the sweep loop — steady-state replication reuses the
/// cluster, event heap, metrics buffers, view and job stream instead of
/// reconstructing them per cell. Create one per worker (thread *or*
/// process) with [`SweepPlan::make_scratch`].
pub struct SweepScratch {
    sim: Simulator,
    view: ClusterView,
    schedulers: HashMap<usize, Box<dyn Scheduler>>,
    sources: HashMap<(usize, usize), Box<dyn WorkloadSource>>,
}

impl SweepScratch {
    fn new(cluster: &ClusterSpec, sim: &SimConfig) -> Self {
        let sim = Simulator::new(cluster.clone(), sim.clone());
        let view = sim.view();
        SweepScratch {
            sim,
            view,
            schedulers: HashMap::new(),
            sources: HashMap::new(),
        }
    }
}

/// A validated, flattened sweep grid: the canonical cell list plus
/// everything needed to execute any cell by flat index.
///
/// A plan is produced by [`EvalSession::plan`] *after* all up-front
/// validation (workload specs, scenario builds), so executing its cells can
/// only fail for genuinely late reasons (a trace deleted mid-sweep, a
/// seed-dependent custom factory). The flat index is the plan's stable cell
/// identity: index `i` always names the same `(policy, scenario, point,
/// seed)` tuple in canonical order, in every process that builds the plan
/// from the same configuration — which is what lets the multi-process sweep
/// ship bare indices through a shared-memory ring and still reassemble the
/// exact sequential table.
pub struct SweepPlan<'r> {
    registry: &'r PolicyRegistry,
    scenario_registry: Option<&'r ScenarioRegistry>,
    policies: Vec<PolicySpec>,
    scenarios: Vec<ScenarioSpec>,
    scenario_labels: Vec<String>,
    points: Vec<(f64, WorkloadSpec)>,
    cluster: ClusterSpec,
    sim: SimConfig,
    cells: Vec<Cell>,
    fingerprint: String,
    reusable: Vec<bool>,
    parameter_counts: HashMap<u64, usize>,
    experiment: String,
    caption: String,
    parameter_name: String,
}

impl<'r> SweepPlan<'r> {
    /// Number of cells in the canonical grid.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// The grid's provenance fingerprint (see checkpoint resume).
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// Fresh per-worker scratch for [`SweepPlan::run_cell`].
    pub fn make_scratch(&self) -> SweepScratch {
        SweepScratch::new(&self.cluster, &self.sim)
    }

    /// An empty [`ResultTable`] carrying this plan's naming and
    /// fingerprint — the shell every driver fills with rows.
    pub fn table_shell(&self) -> ResultTable {
        let mut table = ResultTable::new(&self.experiment, &self.caption, &self.parameter_name);
        table.fingerprint = self.fingerprint.clone();
        table
    }

    /// The resume key of cell `index`: `(scheduler, scenario, parameter
    /// bits, seed)`, matching [`ResultRow::key`].
    pub fn key(&self, index: usize) -> (String, String, u64, u64) {
        let cell = &self.cells[index];
        (
            self.policies[cell.policy].name(),
            self.scenario_labels[cell.scenario].clone(),
            self.points[cell.point].0.to_bits(),
            cell.seed,
        )
    }

    /// Whether two grid points share this parameter value — such rows are
    /// ambiguous under the resume key and must never be resumed.
    pub fn ambiguous_parameter(&self, parameter_bits: u64) -> bool {
        self.parameter_counts
            .get(&parameter_bits)
            .copied()
            .unwrap_or(0)
            > 1
    }

    fn scenario_spec(&self, index: usize) -> Option<&ScenarioSpec> {
        if self.scenarios.is_empty() {
            None
        } else {
            Some(&self.scenarios[index])
        }
    }

    /// Execute cell `index` on `scratch` and return its row.
    ///
    /// Deterministic: the same plan configuration and index produce the
    /// same row in any process, on any thread, in any order — all cell
    /// state is re-armed from the cell's seed.
    pub fn run_cell(
        &self,
        scratch: &mut SweepScratch,
        index: usize,
    ) -> Result<ResultRow, PolicyError> {
        let cell = &self.cells[index];
        let (parameter, workload) = &self.points[cell.point];
        let spec = &self.policies[cell.policy];

        // The cell's job stream: one cached source per (scenario, point)
        // pair per worker, re-armed with reset(seed) and pulled on
        // demand by the streaming simulator. The up-front probe already
        // validated every (scenario, point) build, but a build can still
        // fail here (a seed-dependent custom factory, a trace deleted
        // mid-sweep) — that surfaces as a Workload error, not a panic.
        use std::collections::hash_map::Entry;
        let source = match scratch.sources.entry((cell.scenario, cell.point)) {
            Entry::Occupied(entry) => entry.into_mut(),
            Entry::Vacant(slot) => {
                let built: Box<dyn WorkloadSource> = match self.scenario_spec(cell.scenario) {
                    None => Box::new(
                        SyntheticSource::new(workload, &self.cluster, cell.seed).map_err(|e| {
                            PolicyError::Workload {
                                context: format!("point {parameter}"),
                                message: e.to_string(),
                            }
                        })?,
                    ),
                    Some(scenario) => self
                        .scenario_registry
                        .expect("set alongside scenarios")
                        .build(scenario, workload, &self.cluster, cell.seed)
                        .map_err(|e| PolicyError::Workload {
                            context: format!(
                                "scenario '{}' at point {parameter}",
                                self.scenario_labels[cell.scenario]
                            ),
                            message: e.to_string(),
                        })?,
                };
                slot.insert(built)
            }
        };
        source.reset(cell.seed);

        let mut fresh;
        let scheduler: &mut Box<dyn Scheduler> = if self.reusable[cell.policy] {
            let cached = scratch.schedulers.entry(cell.policy).or_insert_with(|| {
                self.registry
                    .build(spec, cell.seed)
                    .expect("spec validated")
            });
            cached.reset(cell.seed);
            cached
        } else {
            fresh = self
                .registry
                .build(spec, cell.seed)
                .expect("spec validated");
            &mut fresh
        };
        let summary: Summary =
            scratch
                .sim
                .run_source(source.as_mut(), scheduler, &mut scratch.view);
        Ok(ResultRow {
            scheduler: spec.name(),
            scenario: self.scenario_labels[cell.scenario].clone(),
            parameter: *parameter,
            seed: cell.seed,
            summary,
        })
    }
}

/// Execution options split off a session when it is frozen into a plan.
struct RunOptions {
    parallel: bool,
    shard: Option<(usize, usize)>,
    checkpoint: Option<PathBuf>,
    checkpoint_every: usize,
    progress: Option<ProgressCallback>,
}

/// A builder-style evaluation session over one `(policy × scenario × point
/// × seed)` grid.
///
/// ```
/// use tcrm_bench::{EvalSession, PolicyRegistry};
/// use tcrm_sim::{ClusterSpec, SimConfig};
/// use tcrm_workload::WorkloadSpec;
///
/// let registry = PolicyRegistry::with_baselines();
/// let report = EvalSession::new(&registry)
///     .policies(["edf", "greedy-elastic+rigid"])
///     .unwrap()
///     .cluster(ClusterSpec::icpp_default())
///     .sim(SimConfig::default())
///     .point(0.9, WorkloadSpec::icpp_default().with_num_jobs(30).with_load(0.9))
///     .seeds(&[1, 2])
///     .run()
///     .unwrap();
/// // 2 policies × 1 point × 2 seeds:
/// assert_eq!(report.table.rows.len(), 4);
/// assert!(report.table.rows.iter().any(|r| r.scheduler == "greedy-elastic+rigid"));
/// ```
///
/// A scenario axis multiplies the grid without touching the points: each
/// scenario spec reshapes the point's workload (or replaces it entirely, as
/// `replay` does) and its canonical string becomes the row label:
///
/// ```
/// use tcrm_bench::{EvalSession, PolicyRegistry};
/// use tcrm_sim::{ClusterSpec, SimConfig};
/// use tcrm_workload::{ScenarioRegistry, WorkloadSpec};
///
/// let policies = PolicyRegistry::with_baselines();
/// let scenarios = ScenarioRegistry::new();
/// let report = EvalSession::new(&policies)
///     .policies(["edf"])
///     .unwrap()
///     .scenarios(&scenarios, ["poisson", "poisson+burst(3x)"])
///     .unwrap()
///     .cluster(ClusterSpec::icpp_default())
///     .sim(SimConfig::default())
///     .point(0.9, WorkloadSpec::icpp_default().with_num_jobs(25).with_load(0.9))
///     .seeds(&[1])
///     .run()
///     .unwrap();
/// // 1 policy × 2 scenarios × 1 point × 1 seed:
/// assert_eq!(report.table.rows.len(), 2);
/// assert!(report.table.rows.iter().any(|r| r.scenario == "poisson+burst(3x)"));
/// ```
///
/// Interrupted full-scale sweeps resume from a versioned JSON checkpoint:
///
/// ```no_run
/// use tcrm_bench::{EvalSession, PolicyRegistry};
/// use tcrm_workload::WorkloadSpec;
///
/// let registry = PolicyRegistry::with_baselines();
/// let report = EvalSession::new(&registry)
///     .policies(["edf"])
///     .unwrap()
///     .point(0.9, WorkloadSpec::icpp_default().with_load(0.9))
///     .seeds(&[1, 2, 3, 4, 5])
///     // Rows already present in the checkpoint are loaded, not re-run;
///     // completed rows are flushed back so a second interruption loses
///     // nothing.
///     .checkpoint("results/main-grid.json")
///     .run()
///     .unwrap();
/// println!("resumed {} rows, simulated {}", report.resumed, report.computed);
/// ```
pub struct EvalSession<'r> {
    registry: &'r PolicyRegistry,
    scenario_registry: Option<&'r ScenarioRegistry>,
    policies: Vec<PolicySpec>,
    scenarios: Vec<ScenarioSpec>,
    points: Vec<(f64, WorkloadSpec)>,
    cluster: ClusterSpec,
    sim: SimConfig,
    seeds: Vec<u64>,
    parallel: bool,
    shard: Option<(usize, usize)>,
    checkpoint: Option<PathBuf>,
    checkpoint_every: usize,
    progress: Option<ProgressCallback>,
    experiment: String,
    caption: String,
    parameter_name: String,
}

impl<'r> EvalSession<'r> {
    /// Start a session against a policy registry. Defaults: the ICPP default
    /// cluster, default engine config, seed `[1]`, parallel execution, no
    /// scenario axis (each point's workload is streamed as-is under the
    /// scenario id `"default"`).
    pub fn new(registry: &'r PolicyRegistry) -> Self {
        EvalSession {
            registry,
            scenario_registry: None,
            policies: Vec::new(),
            scenarios: Vec::new(),
            points: Vec::new(),
            cluster: ClusterSpec::icpp_default(),
            sim: SimConfig::default(),
            seeds: vec![1],
            parallel: true,
            shard: None,
            checkpoint: None,
            checkpoint_every: 32,
            progress: None,
            experiment: "eval".into(),
            caption: String::new(),
            parameter_name: "parameter".into(),
        }
    }

    /// Add policies by spec string (see the [`crate::policy`] grammar).
    /// Fails fast on unknown bases or malformed specs.
    pub fn policies<I, S>(mut self, specs: I) -> Result<Self, PolicyError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        for spec in specs {
            self.policies.push(self.registry.parse(spec.as_ref())?);
        }
        Ok(self)
    }

    /// Add one pre-parsed policy spec (validated against the registry).
    pub fn policy_spec(mut self, spec: PolicySpec) -> Result<Self, PolicyError> {
        self.registry.validate(&spec)?;
        self.policies.push(spec);
        Ok(self)
    }

    /// Add scenarios by spec string (see the `tcrm_workload::scenario`
    /// grammar), resolved against `registry`. Each scenario multiplies the
    /// grid: every `(policy, point, seed)` cell is evaluated once per
    /// scenario, with the scenario's canonical string as the row label.
    /// Fails fast on malformed specs and unknown custom sources.
    pub fn scenarios<I, S>(
        mut self,
        registry: &'r ScenarioRegistry,
        specs: I,
    ) -> Result<Self, PolicyError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        for spec in specs {
            let parsed = registry
                .parse(spec.as_ref())
                .map_err(|e| PolicyError::Workload {
                    context: spec.as_ref().to_string(),
                    message: e.to_string(),
                })?;
            self.scenarios.push(parsed);
        }
        self.scenario_registry = Some(registry);
        Ok(self)
    }

    /// Add one `(parameter, workload)` evaluation point.
    pub fn point(mut self, parameter: f64, workload: WorkloadSpec) -> Self {
        self.points.push((parameter, workload));
        self
    }

    /// Add many `(parameter, workload)` points (e.g. from
    /// `tcrm_workload::load_sweep`).
    pub fn points(mut self, points: impl IntoIterator<Item = (f64, WorkloadSpec)>) -> Self {
        self.points.extend(points);
        self
    }

    /// The cluster every replication runs on.
    pub fn cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = cluster;
        self
    }

    /// The engine configuration.
    pub fn sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Replication seeds per `(policy, scenario, point)` cell.
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// Run the sweep on the calling thread only. The flattened grid order
    /// and therefore the produced table are identical to the parallel path;
    /// this is the reference the determinism tests compare against.
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Restrict this run to shard `index` of `count`: cells whose canonical
    /// flat index is congruent to `index` modulo `count`. Shards of one grid
    /// partition it exactly; run each shard in its own process with its own
    /// checkpoint, then combine the checkpoints with [`ResultTable::merge`]
    /// (or `expdriver merge-checkpoints`) — the merged table reproduces the
    /// unsharded run's CSV byte for byte.
    pub fn shard(mut self, index: usize, count: usize) -> Self {
        self.shard = Some((index, count));
        self
    }

    /// Stream completed rows through `callback` (see [`ProgressCallback`]).
    pub fn on_row(
        mut self,
        callback: impl Fn(&ResultRow, usize, usize) + Send + Sync + 'static,
    ) -> Self {
        self.progress = Some(Box::new(callback));
        self
    }

    /// Checkpoint completed rows to `path` as versioned JSON and, when the
    /// file already holds rows of this grid, resume from them instead of
    /// re-simulating.
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Flush the checkpoint after every `rows` completed rows (default 32).
    pub fn checkpoint_every(mut self, rows: usize) -> Self {
        self.checkpoint_every = rows.max(1);
        self
    }

    /// Name the produced table (experiment id, caption, parameter column).
    pub fn table(
        mut self,
        experiment: impl Into<String>,
        caption: impl Into<String>,
        parameter_name: impl Into<String>,
    ) -> Self {
        self.experiment = experiment.into();
        self.caption = caption.into();
        self.parameter_name = parameter_name.into();
        self
    }

    /// Validate the session and freeze it into a [`SweepPlan`] (dropping
    /// the execution options — parallelism, sharding, checkpointing stay
    /// with the driver). Every workload and scenario is validated (and
    /// every scenario source built once) here, so configuration mistakes —
    /// an invalid spec, a missing replay trace — surface as a
    /// [`PolicyError::Workload`] before any cell simulates.
    pub fn plan(self) -> Result<SweepPlan<'r>, PolicyError> {
        self.into_plan_and_options().map(|(plan, _)| plan)
    }

    fn into_plan_and_options(self) -> Result<(SweepPlan<'r>, RunOptions), PolicyError> {
        let EvalSession {
            registry,
            scenario_registry,
            policies,
            scenarios,
            points,
            cluster,
            sim,
            seeds,
            parallel,
            shard,
            checkpoint,
            checkpoint_every,
            progress,
            experiment,
            caption,
            parameter_name,
        } = self;

        if let Some((index, count)) = shard {
            if count == 0 || index >= count {
                return Err(PolicyError::InvalidShard { index, count });
            }
        }

        // Scenario axis: an explicit list, or the single implicit default
        // scenario (each point's workload streamed as-is).
        let scenario_count = scenarios.len().max(1);
        let scenario_labels: Vec<String> = if scenarios.is_empty() {
            vec![DEFAULT_SCENARIO.to_string()]
        } else {
            scenarios.iter().map(|s| s.id()).collect()
        };

        // Fail fast on invalid configuration: every point workload must
        // validate, and every (scenario, point) source must build. This is
        // the only place scenario/workload errors can surface; the sweep
        // itself then runs on validated state.
        let probe_seed = seeds.first().copied().unwrap_or(0);
        for (parameter, workload) in &points {
            workload
                .validate()
                .map_err(|message| PolicyError::Workload {
                    context: format!("point {parameter}"),
                    message,
                })?;
        }
        for (spec, label) in scenarios.iter().zip(&scenario_labels) {
            let registry = scenario_registry.expect("set alongside scenarios");
            for (parameter, workload) in &points {
                registry
                    .build(spec, workload, &cluster, probe_seed)
                    .map_err(|e| PolicyError::Workload {
                        context: format!("scenario '{label}' at point {parameter}"),
                        message: e.to_string(),
                    })?;
            }
        }

        // Canonical cell order: point-major, then scenario, then policy,
        // then seed.
        let mut cells =
            Vec::with_capacity(points.len() * scenario_count * policies.len() * seeds.len());
        for point in 0..points.len() {
            for scenario in 0..scenario_count {
                for policy in 0..policies.len() {
                    for &seed in &seeds {
                        cells.push(Cell {
                            policy,
                            scenario,
                            point,
                            seed,
                        });
                    }
                }
            }
        }

        // Fingerprint of everything that determines a row's value besides
        // its (policy, scenario, parameter, seed) key: the cluster, the
        // engine config, the per-point workloads, the scenario ids and the
        // contents of every referenced replay trace. A checkpoint carrying a
        // different fingerprint comes from a different grid configuration
        // and must not be resumed (its rows would be silently presented as
        // this run's results). DRL agent weights are not part of the
        // fingerprint — retraining an agent under the same name requires a
        // fresh checkpoint path. Shards deliberately share the full grid's
        // fingerprint so their checkpoints merge.
        let mut trace_paths: Vec<String> = Vec::new();
        for spec in &scenarios {
            replay_paths(spec, &mut trace_paths);
        }
        trace_paths.sort();
        trace_paths.dedup();
        // A missing file hashes as empty here; the build probe above already
        // turned it into a Workload error before this point.
        let replay_traces: Vec<(String, Vec<u8>)> = trace_paths
            .into_iter()
            .map(|path| {
                let contents = std::fs::read(&path).unwrap_or_default();
                (path, contents)
            })
            .collect();
        let fingerprint =
            grid_fingerprint(&cluster, &sim, &points, &scenario_labels, &replay_traces);

        // Rows are keyed by (label, scenario, parameter, seed). If two
        // points share a parameter value the key cannot tell their cells
        // apart, so those cells are never resumed (and always recomputed).
        let mut parameter_counts: HashMap<u64, usize> = HashMap::new();
        for (parameter, _) in &points {
            *parameter_counts.entry(parameter.to_bits()).or_default() += 1;
        }

        // Whether each policy's worker-cached instance may be reused across
        // replications (see [`crate::policy::PolicyFactory::reusable`]);
        // non-reusable policies are rebuilt fresh for every cell.
        let reusable: Vec<bool> = policies
            .iter()
            .map(|spec| {
                registry
                    .get(spec.base_name())
                    .map(|f| f.reusable())
                    .unwrap_or(false)
            })
            .collect();

        Ok((
            SweepPlan {
                registry,
                scenario_registry,
                policies,
                scenarios,
                scenario_labels,
                points,
                cluster,
                sim,
                cells,
                fingerprint,
                reusable,
                parameter_counts,
                experiment,
                caption,
                parameter_name,
            },
            RunOptions {
                parallel,
                shard,
                checkpoint,
                checkpoint_every,
                progress,
            },
        ))
    }

    /// Execute the sweep and return the table plus resume statistics.
    ///
    /// The grid is flattened point-major (point, then scenario, then policy,
    /// then seed) and executed as one self-scheduling parallel sweep; rows
    /// come back in canonical grid order regardless of thread timing, so the
    /// rendered CSV/markdown are byte-identical between parallel and
    /// sequential runs. Every workload and scenario is validated (and every
    /// scenario source built once) *before* the sweep starts, so
    /// configuration mistakes — an invalid spec, a missing replay trace —
    /// surface as a [`PolicyError::Workload`] instead of aborting mid-sweep.
    pub fn run(self) -> Result<EvalReport, PolicyError> {
        let (plan, options) = self.into_plan_and_options()?;
        let RunOptions {
            parallel,
            shard,
            checkpoint,
            checkpoint_every,
            progress,
        } = options;

        // Sharding: this run owns every cell whose canonical flat index is
        // congruent to the shard index. The produced table holds only the
        // owned subset (still in canonical order); ResultTable::merge
        // reassembles the full grid from the shard checkpoints.
        let owned: Vec<usize> = match shard {
            Some((index, count)) => (0..plan.cell_count())
                .filter(|i| i % count == index)
                .collect(),
            None => (0..plan.cell_count()).collect(),
        };

        // Resume: index previously completed rows by (label, scenario,
        // parameter, seed). A checkpoint from a *different* grid
        // configuration (fingerprint mismatch) contributes nothing and is
        // flagged so callers can tell the user why everything recomputed.
        let mut stale_checkpoint = false;
        let cached: HashMap<(String, String, u64, u64), ResultRow> = match checkpoint
            .as_deref()
            .filter(|p| p.exists())
            .and_then(|p| ResultTable::load_json(p).ok())
        {
            Some(table) if table.fingerprint == plan.fingerprint() => table
                .rows
                .into_iter()
                .filter(|r| !plan.ambiguous_parameter(r.parameter.to_bits()))
                .map(|r| (r.key(), r))
                .collect(),
            Some(_) => {
                stale_checkpoint = true;
                HashMap::new()
            }
            None => HashMap::new(),
        };
        let (resumed_cells, todo): (Vec<usize>, Vec<usize>) = owned
            .iter()
            .copied()
            .partition(|&i| cached.contains_key(&plan.key(i)));
        let resumed = resumed_cells.len();
        let total = todo.len();

        // Shared flush state for incremental checkpointing.
        let flusher = checkpoint.as_ref().map(|path| {
            let mut base = plan.table_shell();
            base.extend(cached.values().cloned().collect());
            (path.clone(), Mutex::new(base))
        });
        let done = AtomicUsize::new(0);
        let run_cell =
            |scratch: &mut SweepScratch, index: usize| -> Result<ResultRow, PolicyError> {
                let row = plan.run_cell(scratch, index)?;
                let completed = done.fetch_add(1, Ordering::Relaxed) + 1;
                if let Some(callback) = progress.as_ref() {
                    callback(&row, completed, total);
                }
                if let Some((path, partial)) = flusher.as_ref() {
                    let mut partial = partial.lock();
                    partial.rows.push(row.clone());
                    if partial.rows.len() % checkpoint_every == 0 {
                        let _ = partial.save_json(path);
                    }
                }
                Ok(row)
            };

        let computed_rows: Vec<Result<ResultRow, PolicyError>> = if parallel {
            todo.par_iter()
                .map_init(
                    || plan.make_scratch(),
                    |scratch, &index| run_cell(scratch, index),
                )
                .collect()
        } else {
            let mut scratch = plan.make_scratch();
            todo.iter().map(|&i| run_cell(&mut scratch, i)).collect()
        };

        // Merge computed and cached rows back into canonical grid order.
        // A failed cell surfaces here as the sweep's error (completed rows
        // of a checkpointed run were already flushed, so nothing is lost).
        let mut computed_iter = computed_rows.into_iter();
        let mut table = plan.table_shell();
        for &index in &owned {
            match cached.get(&plan.key(index)) {
                Some(row) => table.rows.push(row.clone()),
                None => table.rows.push(
                    computed_iter
                        .next()
                        .expect("one computed result per todo cell")?,
                ),
            }
        }
        if let Some((path, _)) = flusher.as_ref() {
            // Final flush: the complete grid in canonical order. Incremental
            // flushes above are best-effort, but a failure here would break
            // the resume guarantee, so it is reported.
            table
                .save_json(path)
                .map_err(|e| PolicyError::CheckpointIo {
                    path: path.display().to_string(),
                    message: e.to_string(),
                })?;
        }
        Ok(EvalReport {
            table,
            computed: total,
            resumed,
            stale_checkpoint,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_workload(load: f64) -> WorkloadSpec {
        WorkloadSpec::icpp_default()
            .with_num_jobs(30)
            .with_load(load)
    }

    fn session(registry: &PolicyRegistry) -> EvalSession<'_> {
        EvalSession::new(registry)
            .cluster(ClusterSpec::icpp_default())
            .sim(SimConfig::default())
    }

    #[test]
    fn session_produces_one_row_per_cell() {
        let registry = PolicyRegistry::with_baselines();
        let report = session(&registry)
            .policies(["edf"])
            .unwrap()
            .point(0.7, quick_workload(0.7))
            .seeds(&[1, 2])
            .run()
            .unwrap();
        assert_eq!(report.computed, 2);
        assert_eq!(report.resumed, 0);
        assert!(!report.stale_checkpoint);
        let rows = &report.table.rows;
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.scheduler == "edf"));
        assert!(rows.iter().all(|r| r.scenario == DEFAULT_SCENARIO));
        assert!(rows.iter().all(|r| r.summary.total_jobs == 30));
        assert!(rows.iter().all(|r| r.parameter == 0.7));
    }

    #[test]
    fn grid_covers_all_cells_including_adapters() {
        let registry = PolicyRegistry::with_baselines();
        let report = session(&registry)
            .policies(["fifo", "greedy-elastic+rigid"])
            .unwrap()
            .point(0.5, quick_workload(0.5).with_num_jobs(20))
            .point(0.9, quick_workload(0.9).with_num_jobs(20))
            .seeds(&[3])
            .run()
            .unwrap();
        assert_eq!(report.table.rows.len(), 4);
        assert!(report
            .table
            .rows
            .iter()
            .any(|r| r.scheduler == "greedy-elastic+rigid"));
    }

    #[test]
    fn scenario_axis_multiplies_the_grid() {
        let registry = PolicyRegistry::with_baselines();
        let scenarios = ScenarioRegistry::new();
        let report = session(&registry)
            .policies(["edf", "fifo"])
            .unwrap()
            .scenarios(&scenarios, ["poisson", "poisson+tighten(0.7)"])
            .unwrap()
            .point(0.8, quick_workload(0.8).with_num_jobs(20))
            .seeds(&[1, 2])
            .run()
            .unwrap();
        // 2 policies × 2 scenarios × 1 point × 2 seeds.
        assert_eq!(report.table.rows.len(), 8);
        assert_eq!(
            report.table.scenarios(),
            vec!["poisson".to_string(), "poisson+tighten(0.7)".to_string()]
        );
        // Tightening deadlines can only raise (or keep) the miss rate on
        // otherwise identical streams.
        let miss_of = |scenario: &str| {
            report
                .table
                .aggregates()
                .into_iter()
                .filter(|a| a.scenario == scenario)
                .map(|a| a.miss_rate)
                .sum::<f64>()
        };
        assert!(miss_of("poisson+tighten(0.7)") >= miss_of("poisson"));
    }

    #[test]
    fn plan_cells_match_run_rows_exactly() {
        // The plan's flat-index executor is the same computation as run():
        // executing every cell by index in canonical order reproduces the
        // full table byte for byte. This is the contract the multi-process
        // sweep (cells shipped as indices over shared memory) rests on.
        let registry = PolicyRegistry::with_baselines();
        let scenarios = ScenarioRegistry::new();
        let build = || {
            session(&registry)
                .policies(["edf", "fifo"])
                .unwrap()
                .scenarios(&scenarios, ["poisson", "poisson+tighten(0.7)"])
                .unwrap()
                .point(0.8, quick_workload(0.8).with_num_jobs(20))
                .seeds(&[1, 2])
        };
        let report = build().run().unwrap();
        let plan = build().plan().unwrap();
        assert_eq!(plan.cell_count(), report.table.rows.len());
        assert_eq!(plan.fingerprint(), report.table.fingerprint);

        let mut scratch = plan.make_scratch();
        let mut table = plan.table_shell();
        // Out-of-order execution must not matter: run odd indices first.
        let mut rows = vec![None; plan.cell_count()];
        for index in (1..plan.cell_count())
            .step_by(2)
            .chain((0..plan.cell_count()).step_by(2))
        {
            rows[index] = Some(plan.run_cell(&mut scratch, index).unwrap());
        }
        table.rows.extend(rows.into_iter().map(Option::unwrap));
        assert_eq!(table.to_csv(), report.table.to_csv());
        for (a, b) in table.rows.iter().zip(&report.table.rows) {
            assert_eq!(a.key(), b.key());
            assert_eq!(a.summary, b.summary);
        }
    }

    #[test]
    fn invalid_workloads_and_scenarios_are_config_errors_not_panics() {
        let registry = PolicyRegistry::with_baselines();

        // An invalid point workload: surfaced before the sweep runs.
        let mut broken = quick_workload(0.9);
        broken.num_jobs = 0;
        let err = session(&registry)
            .policies(["edf"])
            .unwrap()
            .point(0.9, broken)
            .run()
            .unwrap_err();
        assert!(matches!(err, PolicyError::Workload { .. }));
        assert!(err.to_string().contains("num_jobs"));

        // A malformed scenario spec fails at the builder.
        let scenarios = ScenarioRegistry::new();
        let Err(err) = session(&registry)
            .policies(["edf"])
            .unwrap()
            .scenarios(&scenarios, ["poisson+warp(3)"])
        else {
            panic!("malformed scenario spec must not resolve");
        };
        assert!(matches!(err, PolicyError::Workload { .. }));
        assert!(err.to_string().contains("warp(3)"));

        // A well-formed scenario whose source cannot be built (missing
        // trace) fails in run(), before any cell simulates.
        let err = session(&registry)
            .policies(["edf"])
            .unwrap()
            .scenarios(&scenarios, ["replay(/no/such/trace.json)"])
            .unwrap()
            .point(0.9, quick_workload(0.9))
            .run()
            .unwrap_err();
        assert!(matches!(err, PolicyError::Workload { .. }));
        assert!(err.to_string().contains("/no/such/trace.json"));
    }

    #[test]
    fn failing_custom_source_builds_surface_as_errors_not_panics() {
        // A custom factory whose build fails is caught by the up-front
        // probe and surfaces as a Workload error from run(), not a panic
        // (the same typed path also guards late build failures inside
        // worker cells, e.g. a trace deleted mid-sweep).
        let registry = PolicyRegistry::with_baselines();
        let mut scenarios = ScenarioRegistry::new();
        scenarios
            .register_fn("picky", |ctx| {
                if ctx.seed == 777 {
                    Ok(Box::new(SyntheticSource::new(
                        ctx.base,
                        ctx.cluster,
                        ctx.seed,
                    )?))
                } else {
                    Err(tcrm_workload::WorkloadError::InvalidWorkload(format!(
                        "no recording for seed {}",
                        ctx.seed
                    )))
                }
            })
            .unwrap();
        let err = session(&registry)
            .policies(["edf"])
            .unwrap()
            .scenarios(&scenarios, ["picky"])
            .unwrap()
            .point(0.9, quick_workload(0.9))
            .seeds(&[1, 2])
            .sequential()
            .run()
            .unwrap_err();
        assert!(matches!(err, PolicyError::Workload { .. }));
        assert!(err.to_string().contains("no recording for seed 1"));
        assert!(err.to_string().contains("scenario 'picky'"));
    }

    #[test]
    fn re_recorded_replay_traces_invalidate_the_checkpoint() {
        let dir = std::env::temp_dir().join("tcrm-runner-replay-fingerprint");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("trace.json");
        let ckpt = dir.join("grid.json");

        let record = |seed: u64, jobs: usize| {
            let spec = quick_workload(0.8).with_num_jobs(jobs);
            let list: Vec<_> = SyntheticSource::new(&spec, &ClusterSpec::icpp_default(), seed)
                .unwrap()
                .collect();
            tcrm_workload::Trace::new(spec, seed, list)
                .save(&trace_path)
                .unwrap();
        };
        let registry = PolicyRegistry::with_baselines();
        // A fresh scenario registry per run: trace files are assumed
        // immutable for a registry's lifetime (its parse cache), and this
        // test re-records between runs.
        let run = |scenarios: &ScenarioRegistry| {
            session(&registry)
                .policies(["edf"])
                .unwrap()
                .scenarios(scenarios, [format!("replay({})", trace_path.display())])
                .unwrap()
                .point(0.9, quick_workload(0.9))
                .seeds(&[1])
                .checkpoint(&ckpt)
                .run()
                .unwrap()
        };

        record(7, 20);
        let first = run(&ScenarioRegistry::new());
        assert_eq!(first.computed, 1);
        assert!(!first.stale_checkpoint);

        // Same path, new contents: the fingerprint must change, so nothing
        // resumes, the row reflects the new trace, and the report says the
        // checkpoint was stale.
        record(8, 25);
        let second = run(&ScenarioRegistry::new());
        assert_eq!(second.resumed, 0, "stale replay rows must not resume");
        assert_eq!(second.computed, 1);
        assert!(second.stale_checkpoint, "staleness must be surfaced");
        assert!(second.table.rows.iter().all(|r| r.summary.total_jobs == 25));

        // Unchanged contents still resume.
        let third = run(&ScenarioRegistry::new());
        assert_eq!(third.resumed, 1);
        assert_eq!(third.computed, 0);
        assert!(!third.stale_checkpoint);
    }

    #[test]
    fn changed_grid_config_recomputes_and_flags_the_stale_checkpoint() {
        // Resume against a checkpoint written by a *different grid config*
        // (different workload sizing at the same parameter/seed keys): the
        // rows must be recomputed, not resumed, and the report must say so.
        let dir = std::env::temp_dir().join("tcrm-runner-stale-grid");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("grid.json");
        let registry = PolicyRegistry::with_baselines();
        let run = |jobs: usize| {
            session(&registry)
                .policies(["edf"])
                .unwrap()
                .point(0.8, quick_workload(0.8).with_num_jobs(jobs))
                .seeds(&[1, 2])
                .checkpoint(&ckpt)
                .run()
                .unwrap()
        };

        let first = run(20);
        assert_eq!((first.computed, first.resumed), (2, 0));
        assert!(!first.stale_checkpoint);

        // Same keys (same parameter 0.8, same seeds), different grid: every
        // row recomputes against the new workload and the staleness is
        // flagged.
        let second = run(25);
        assert_eq!((second.computed, second.resumed), (2, 0));
        assert!(second.stale_checkpoint);
        assert!(second.table.rows.iter().all(|r| r.summary.total_jobs == 25));

        // The rewritten checkpoint now matches the new grid and resumes.
        let third = run(25);
        assert_eq!((third.computed, third.resumed), (0, 2));
        assert!(!third.stale_checkpoint);
    }

    #[test]
    fn shards_partition_the_grid_exactly() {
        let registry = PolicyRegistry::with_baselines();
        let full = session(&registry)
            .policies(["edf", "fifo"])
            .unwrap()
            .point(0.7, quick_workload(0.7))
            .seeds(&[1, 2, 3])
            .run()
            .unwrap();
        assert_eq!(full.table.rows.len(), 6);

        let shard = |index: usize| {
            session(&registry)
                .policies(["edf", "fifo"])
                .unwrap()
                .point(0.7, quick_workload(0.7))
                .seeds(&[1, 2, 3])
                .shard(index, 2)
                .run()
                .unwrap()
        };
        let s0 = shard(0);
        let s1 = shard(1);
        assert_eq!(s0.table.rows.len() + s1.table.rows.len(), 6);
        assert_eq!(s0.table.fingerprint, full.table.fingerprint);

        let merged = ResultTable::merge(vec![s0.table, s1.table]).unwrap();
        assert_eq!(merged.rows.len(), 6);
        assert_eq!(merged.to_csv(), full.table.to_csv());

        // Out-of-range shards are config errors.
        let err = session(&registry)
            .policies(["edf"])
            .unwrap()
            .point(0.7, quick_workload(0.7))
            .shard(2, 2)
            .run()
            .unwrap_err();
        assert!(matches!(err, PolicyError::InvalidShard { .. }));
    }

    #[test]
    fn unknown_policy_fails_at_build_time() {
        let registry = PolicyRegistry::with_baselines();
        let Err(err) = session(&registry).policies(["no-such-policy"]) else {
            panic!("unknown policy must not resolve");
        };
        assert!(matches!(err, PolicyError::UnknownPolicy { .. }));
    }

    #[test]
    fn evaluation_is_deterministic_across_calls() {
        let registry = PolicyRegistry::with_baselines();
        let run = || {
            session(&registry)
                .policies(["greedy-elastic"])
                .unwrap()
                .point(0.9, quick_workload(0.9))
                .seeds(&[1, 2])
                .run()
                .unwrap()
                .table
        };
        let a = run();
        let b = run();
        for (x, y) in a.rows.iter().zip(b.rows.iter()) {
            assert_eq!(x.summary, y.summary);
        }
    }

    #[test]
    fn progress_callback_sees_every_row() {
        use std::sync::atomic::AtomicUsize;
        let registry = PolicyRegistry::with_baselines();
        let seen = std::sync::Arc::new(AtomicUsize::new(0));
        let seen_cb = std::sync::Arc::clone(&seen);
        let report = session(&registry)
            .policies(["edf", "fifo"])
            .unwrap()
            .point(0.7, quick_workload(0.7))
            .seeds(&[1, 2])
            .on_row(move |_row, done, total| {
                assert!(done <= total);
                seen_cb.fetch_add(1, Ordering::Relaxed);
            })
            .run()
            .unwrap();
        assert_eq!(seen.load(Ordering::Relaxed), 4);
        assert_eq!(report.computed, 4);
    }
}
