//! Small, testable parsers for `expdriver`'s command-line grammar.
//!
//! The binary keeps its flag loop, but anything with validation rules worth
//! testing lives here so the rules are enforced (and documented) in one
//! place rather than re-derived per subcommand.

/// Parse a `--shard <i>/<n>` value into `(index, count)`.
///
/// Shards count from zero, so `index` must be strictly below `count` and
/// `count` must be at least 1. Anything else — `3/3`, `0/0`, negative or
/// non-numeric pieces, a missing `/` — is rejected with a message that
/// restates the rule.
pub fn parse_shard(text: &str) -> Result<(usize, usize), String> {
    let Some((index_text, count_text)) = text.split_once('/') else {
        return Err(format!(
            "--shard must be '<i>/<n>' (e.g. '0/4'), got '{text}'"
        ));
    };
    let index: usize = index_text
        .trim()
        .parse()
        .map_err(|_| format!("--shard index '{index_text}' is not a non-negative integer"))?;
    let count: usize = count_text
        .trim()
        .parse()
        .map_err(|_| format!("--shard count '{count_text}' is not a positive integer"))?;
    if count == 0 {
        return Err(format!(
            "--shard count must be at least 1, got '{text}' (there is no 0-way sharding)"
        ));
    }
    if index >= count {
        return Err(format!(
            "--shard index must be below the count (shards count from zero), got '{text}': \
             valid indices for /{count} are 0..={}",
            count - 1
        ));
    }
    Ok((index, count))
}

/// Parse a `--chunk <n>` value: jobs per streamed block, at least 1.
pub fn parse_chunk(text: &str) -> Result<usize, String> {
    match text.trim().parse::<usize>() {
        Ok(0) => Err("--chunk must be at least 1 (jobs per streamed block)".into()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("--chunk '{text}' is not a positive integer")),
    }
}

/// Resolve the `serve` ingest flags. `--chunk` sizes the blocks of the
/// streaming path, so it requires `--stream`; the resolved value falls back
/// to the streaming default when the flag is absent.
pub fn resolve_serve_ingest(stream: bool, chunk: Option<usize>) -> Result<usize, String> {
    match (stream, chunk) {
        (false, Some(_)) => Err(
            "--chunk sizes streamed arrival blocks, so it requires --stream \
             (the materialized path sends jobs one at a time)"
                .into(),
        ),
        (_, chunk) => Ok(chunk.unwrap_or(tcrm_serve::DEFAULT_CHUNK)),
    }
}

/// Parse a `--workers <n>` value: a positive worker count.
pub fn parse_workers(text: &str) -> Result<usize, String> {
    match text.trim().parse::<usize>() {
        Ok(0) => Err("--workers must be at least 1".into()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("--workers '{text}' is not a positive integer")),
    }
}

/// Parse a duration flag value (e.g. `--heartbeat-timeout <secs>`):
/// positive seconds, fractions allowed. `flag` names the flag in errors.
pub fn parse_timeout_secs(flag: &str, text: &str) -> Result<std::time::Duration, String> {
    match text.trim().parse::<f64>() {
        Ok(secs) if secs.is_finite() && secs > 0.0 => Ok(std::time::Duration::from_secs_f64(secs)),
        Ok(_) => Err(format!(
            "{flag} must be a positive number of seconds, got '{text}'"
        )),
        Err(_) => Err(format!("{flag} '{text}' is not a number of seconds")),
    }
}

/// Parse a `--kill-worker <slot>@<cells>` chaos spec: SIGKILL worker
/// `slot` once it has completed `cells` cells. Used by the crash-recovery
/// tests and CI; hidden from the main usage text.
pub fn parse_kill_worker(text: &str) -> Result<(usize, u64), String> {
    let Some((slot_text, cells_text)) = text.split_once('@') else {
        return Err(format!(
            "--kill-worker must be '<slot>@<cells>' (e.g. '1@2'), got '{text}'"
        ));
    };
    let slot = slot_text
        .trim()
        .parse()
        .map_err(|_| format!("--kill-worker slot '{slot_text}' is not a non-negative integer"))?;
    let cells = cells_text
        .trim()
        .parse()
        .map_err(|_| format!("--kill-worker cell count '{cells_text}' is not an integer"))?;
    Ok((slot, cells))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_accepts_valid_specs() {
        assert_eq!(parse_shard("0/1"), Ok((0, 1)));
        assert_eq!(parse_shard("0/4"), Ok((0, 4)));
        assert_eq!(parse_shard("3/4"), Ok((3, 4)));
        assert_eq!(parse_shard(" 2 / 8 "), Ok((2, 8)));
    }

    #[test]
    fn shard_rejects_index_at_or_above_count() {
        let err = parse_shard("4/4").unwrap_err();
        assert!(err.contains("count from zero"), "unhelpful error: {err}");
        assert!(
            err.contains("0..=3"),
            "error should list valid range: {err}"
        );
        assert!(parse_shard("7/2").is_err());
    }

    #[test]
    fn shard_rejects_zero_count() {
        let err = parse_shard("0/0").unwrap_err();
        assert!(err.contains("at least 1"), "unhelpful error: {err}");
    }

    #[test]
    fn shard_rejects_malformed_specs() {
        for bad in ["", "3", "/", "a/4", "1/b", "-1/4", "1/-4", "1//4"] {
            assert!(parse_shard(bad).is_err(), "'{bad}' must not parse");
        }
    }

    #[test]
    fn chunk_requires_a_positive_count() {
        assert_eq!(parse_chunk("64"), Ok(64));
        assert_eq!(parse_chunk(" 1 "), Ok(1));
        let err = parse_chunk("0").unwrap_err();
        assert!(err.contains("at least 1"), "unhelpful error: {err}");
        assert!(parse_chunk("big").is_err());
        assert!(parse_chunk("-4").is_err());
    }

    #[test]
    fn serve_ingest_gates_chunk_behind_stream() {
        assert_eq!(
            resolve_serve_ingest(true, None),
            Ok(tcrm_serve::DEFAULT_CHUNK)
        );
        assert_eq!(resolve_serve_ingest(true, Some(7)), Ok(7));
        assert_eq!(
            resolve_serve_ingest(false, None),
            Ok(tcrm_serve::DEFAULT_CHUNK)
        );
        let err = resolve_serve_ingest(false, Some(7)).unwrap_err();
        assert!(err.contains("--stream"), "error must name the fix: {err}");
    }

    #[test]
    fn workers_requires_a_positive_count() {
        assert_eq!(parse_workers("3"), Ok(3));
        assert!(parse_workers("0").is_err());
        assert!(parse_workers("lots").is_err());
        assert!(parse_workers("-2").is_err());
    }

    #[test]
    fn timeout_secs_accepts_positive_seconds_only() {
        use std::time::Duration;
        assert_eq!(
            parse_timeout_secs("--heartbeat-timeout", "60"),
            Ok(Duration::from_secs(60))
        );
        assert_eq!(
            parse_timeout_secs("--heartbeat-timeout", "0.5"),
            Ok(Duration::from_millis(500))
        );
        for bad in ["0", "-1", "nan", "inf", "soon", ""] {
            let err = parse_timeout_secs("--heartbeat-timeout", bad).unwrap_err();
            assert!(
                err.contains("--heartbeat-timeout"),
                "error must name the flag: {err}"
            );
        }
    }

    #[test]
    fn kill_worker_parses_slot_at_cells() {
        assert_eq!(parse_kill_worker("1@2"), Ok((1, 2)));
        assert_eq!(parse_kill_worker("0@0"), Ok((0, 0)));
        assert!(parse_kill_worker("1").is_err());
        assert!(parse_kill_worker("x@2").is_err());
        assert!(parse_kill_worker("1@y").is_err());
    }
}
