//! Multi-process sweeps over the `tcrm-ipc` shared-memory plane.
//!
//! `expdriver sweep --workers N` runs here: the parent builds the same
//! [`SweepPlan`] the in-process sweep would run, embeds the sweep
//! configuration (plus the grid fingerprint) in a shared-memory segment,
//! pushes every cell's flat index into the plane's SPMC work ring and
//! spawns `N` child `expdriver worker` processes. Workers rebuild the
//! identical plan from the embedded config, steal cell indices, execute
//! them with the usual per-worker scratch reuse and publish each finished
//! [`ResultRow`] (JSON) through the MPSC result ring. The parent ingests
//! rows by cell index, watches worker leases and process exits, and
//! recovers from crashes by requeueing whatever a dead worker held.
//!
//! ## The byte-identity contract
//!
//! The final table must be byte-identical to `expdriver sweep` without
//! `--workers` — including when a worker is SIGKILLed mid-run. Three
//! properties compose into that guarantee:
//!
//! 1. **Same cells, same code.** Both paths execute
//!    [`SweepPlan::run_cell`] over the same canonical cell list; a cell's
//!    row depends only on the plan config and the cell index, never on
//!    which process ran it or when.
//! 2. **Exact transport.** Rows cross the ring as JSON; the vendored
//!    serializer prints `f64` shortest-roundtrip, so decoded rows are
//!    bit-identical to what the worker computed.
//! 3. **Idempotent ingestion.** The parent keeps the *first* row per cell
//!    index and drops duplicates. Since duplicates are recomputations of a
//!    deterministic cell they are identical anyway — which is what makes
//!    every recovery action (requeue on crash, conservative reconciliation
//!    requeues) safe to over-apply.
//!
//! ## Crash recovery
//!
//! * A worker that dies by signal (classified by [`Supervisor`]) gets its
//!   lease-announced in-flight cell requeued.
//! * A worker that dies *between* stealing a cell and announcing it leaves
//!   no trace; the reconciliation pass requeues any not-yet-completed cell
//!   that no live worker has announced once the work ring is drained.
//! * A worker that dies mid-`publish` can leave the result ring's head
//!   slot claimed-but-unreleased, which would wedge the single consumer.
//!   The claim-word protocol ([`tcrm_ipc::ResultRing::publish`]) lets the
//!   parent prove the claimant is dead before skipping the slot: no live
//!   worker's claim word may name the position (a worker killed between
//!   its claim-store and its claiming CAS leaves a *stale* claim naming a
//!   position a different, live worker then wins) and some dead worker's
//!   claim must name it — see `stuck_head_provably_dead`.
//! * A worker that goes quiet (stale heartbeat with no cell/done progress,
//!   e.g. wedged rather than dead) is SIGKILLed and then handled as a
//!   crash. Workers beat their lease from a sidecar thread every
//!   [`WORKER_BEAT_PERIOD`], so a single slow cell (or a publish spin on a
//!   full ring) is never mistaken for a wedge; `--heartbeat-timeout`
//!   tunes the parent's patience.
//!
//! A worker that exits *nonzero* is different: it decided the sweep cannot
//! continue (bad config, poisoned plane) and the parent aborts rather than
//! silently recomputing forever.

use crate::cli;
use crate::policy::{PolicyError, PolicyRegistry};
use crate::results::{ResultRow, ResultTable};
use crate::runner::{EvalSession, SweepPlan};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};
use tcrm_ipc::{
    codec, LeaseMonitor, LeaseState, LeaseTable, Plane, PlaneParams, Supervisor, Waiter, WorkerExit,
};
use tcrm_sim::{ClusterSpec, SimConfig};
use tcrm_workload::{ScenarioRegistry, WorkloadSpec};

/// The serialisable sweep configuration: exactly the `expdriver sweep`
/// inputs that define the grid. Parent and workers both turn this into an
/// [`EvalSession`] through [`SweepConfig::to_session`] — one code path, so
/// every process flattens the identical canonical cell list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Policy spec strings (the `--policies` list).
    pub policies: Vec<String>,
    /// Scenario spec strings (the `--scenarios` list; empty = default axis).
    pub scenarios: Vec<String>,
    /// Offered-load points (the `--loads` list).
    pub loads: Vec<f64>,
    /// Jobs per replication (the `--jobs` value).
    pub jobs: usize,
    /// Replication seeds (the `--seeds` list).
    pub seeds: Vec<u64>,
}

impl SweepConfig {
    /// Build the evaluation session this configuration describes. Both the
    /// single-process sweep and every sweep-plane process call this, which
    /// is what keeps their grids (and therefore their outputs) identical.
    pub fn to_session<'r>(
        &self,
        registry: &'r PolicyRegistry,
        scenario_registry: &'r ScenarioRegistry,
    ) -> Result<EvalSession<'r>, PolicyError> {
        let base = WorkloadSpec::icpp_default().with_num_jobs(self.jobs);
        let mut session = EvalSession::new(registry)
            .cluster(ClusterSpec::icpp_default())
            .sim(SimConfig::default())
            .seeds(&self.seeds)
            .table("sweep", "ad-hoc scenario sweep", "load")
            .points(tcrm_workload::load_sweep(&base, &self.loads))
            .policies(self.policies.iter())?;
        if !self.scenarios.is_empty() {
            session = session.scenarios(scenario_registry, self.scenarios.iter())?;
        }
        Ok(session)
    }
}

/// What the parent embeds in the plane's config region: the sweep config
/// plus the fingerprint of the grid it flattened. Workers rebuild the plan
/// and refuse to run if their fingerprint differs — that means the worker
/// binary disagrees with the parent about what the grid *is* (version
/// skew, a changed trace file), and any rows it produced would silently
/// poison the table.
#[derive(Debug, Serialize, Deserialize)]
struct PlaneManifest {
    fingerprint: String,
    config: SweepConfig,
}

/// Options for the parent side of a multi-process sweep.
pub struct MprocOptions {
    /// Number of worker processes.
    pub workers: usize,
    /// Path of the shared-memory segment file.
    pub plane_path: PathBuf,
    /// The binary to spawn workers from (it must understand
    /// `worker --plane <path> --slot <i>`; normally `current_exe()`).
    pub worker_exe: PathBuf,
    /// SIGKILL a worker that has shown no progress (heartbeat, announced
    /// cell, completed count) for this long. Workers beat from a sidecar
    /// thread every [`WORKER_BEAT_PERIOD`] even while a cell runs, so only
    /// a truly stopped process trips this. `--heartbeat-timeout <secs>`
    /// overrides the 60 s default.
    pub heartbeat_timeout: Duration,
    /// Emit a progress heartbeat line at this interval.
    pub progress_every: Duration,
    /// Chaos hook: SIGKILL worker `slot` once it has completed `cells`
    /// cells (`--kill-worker slot@cells`). Exercises the crash-recovery
    /// path in tests and CI.
    pub kill_worker: Option<(usize, u64)>,
    /// Write the completed table to this checkpoint path as versioned JSON.
    pub checkpoint: Option<PathBuf>,
}

impl MprocOptions {
    /// Defaults for `workers` workers: plane file under the system temp
    /// dir, workers spawned from the current executable, 60 s heartbeat
    /// timeout, 2 s progress interval, no chaos, no checkpoint.
    pub fn new(workers: usize, worker_exe: PathBuf) -> MprocOptions {
        MprocOptions {
            workers,
            plane_path: std::env::temp_dir()
                .join(format!("tcrm-sweep-plane-{}.shm", std::process::id())),
            worker_exe,
            heartbeat_timeout: Duration::from_secs(60),
            progress_every: Duration::from_secs(2),
            kill_worker: None,
            checkpoint: None,
        }
    }
}

/// What a multi-process sweep produced, beyond the table.
#[derive(Debug)]
pub struct MprocReport {
    /// The full result table, rows in canonical grid order.
    pub table: ResultTable,
    /// Cells executed across all workers (>= the grid size when crashes
    /// forced recomputation).
    pub computed: usize,
    /// Cells requeued after worker crashes (0 on a clean run).
    pub requeued: usize,
    /// Workers that died by signal (or were killed for a stale heartbeat).
    pub crashed_workers: usize,
}

/// Errors from the multi-process sweep.
#[derive(Debug)]
pub enum MprocError {
    /// Grid configuration error (same domain as the in-process sweep).
    Policy(PolicyError),
    /// Segment creation/open, spawn or similar OS failure.
    Io(io::Error),
    /// A ring payload failed to encode/decode.
    Codec(String),
    /// The plane's manifest names a different grid than this process
    /// flattens from the same config — parent/worker version skew.
    FingerprintMismatch {
        /// Fingerprint in the plane manifest.
        manifest: String,
        /// Fingerprint this process computed.
        computed: String,
    },
    /// A worker's lease slot was already claimed (two workers launched
    /// with the same slot index).
    SlotTaken(usize),
    /// A worker exited nonzero — it hit a non-recoverable error and the
    /// sweep was aborted.
    WorkerFailed {
        /// The worker's lease slot.
        slot: usize,
        /// Its exit code.
        code: i32,
    },
    /// Every worker died while cells were still outstanding.
    AllWorkersDead {
        /// Cells that never produced a row.
        missing: usize,
    },
    /// The work ring filled up (crash-requeue volume exceeded its sizing).
    RingFull,
}

impl std::fmt::Display for MprocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MprocError::Policy(e) => write!(f, "{e}"),
            MprocError::Io(e) => write!(f, "sweep plane I/O error: {e}"),
            MprocError::Codec(e) => write!(f, "sweep plane codec error: {e}"),
            MprocError::FingerprintMismatch { manifest, computed } => write!(
                f,
                "grid fingerprint mismatch: plane manifest says {manifest}, this process \
                 computes {computed} — parent and worker binaries disagree about the grid"
            ),
            MprocError::SlotTaken(slot) => {
                write!(f, "worker lease slot {slot} is already claimed")
            }
            MprocError::WorkerFailed { slot, code } => write!(
                f,
                "worker {slot} exited with status {code}; sweep aborted (crashes are \
                 recovered, but a nonzero exit means the worker rejected the configuration)"
            ),
            MprocError::AllWorkersDead { missing } => write!(
                f,
                "every worker died with {missing} cells still outstanding"
            ),
            MprocError::RingFull => write!(
                f,
                "work ring overflowed — more crash-requeues than the ring was sized for"
            ),
        }
    }
}

impl std::error::Error for MprocError {}

impl From<PolicyError> for MprocError {
    fn from(e: PolicyError) -> Self {
        MprocError::Policy(e)
    }
}

impl From<io::Error> for MprocError {
    fn from(e: io::Error) -> Self {
        MprocError::Io(e)
    }
}

impl From<codec::CodecError> for MprocError {
    fn from(e: codec::CodecError) -> Self {
        MprocError::Codec(e.to_string())
    }
}

/// Size the plane for a grid of `cells` cells and `workers` workers.
///
/// The work ring must **never wrap** (that is what makes a stealer crash
/// between its claim CAS and its slot release harmless), so its capacity
/// covers the initial enqueue plus a generous crash-requeue budget. The
/// result ring is small — the parent drains it continuously — but every
/// slot must hold a full JSON row.
fn plane_params(cells: usize, workers: usize) -> PlaneParams {
    let enqueue_budget = cells.max(1) * 8 + workers * 8;
    PlaneParams {
        worker_slots: workers,
        work_capacity: enqueue_budget.next_power_of_two().max(64),
        result_capacity: 128,
        result_stride: 4096,
    }
}

/// Run the parent side: create the plane, spawn the workers, drive the
/// sweep to completion and assemble the canonical table.
pub fn run_sweep_parent(
    config: &SweepConfig,
    options: &MprocOptions,
) -> Result<MprocReport, MprocError> {
    let registry = PolicyRegistry::with_baselines();
    let scenario_registry = ScenarioRegistry::new();
    let plan = config.to_session(&registry, &scenario_registry)?.plan()?;
    let cells = plan.cell_count();

    let manifest = PlaneManifest {
        fingerprint: plan.fingerprint().to_string(),
        config: config.clone(),
    };
    let manifest_bytes = codec::encode(&manifest)?;
    let plane = Plane::create(
        &options.plane_path,
        plane_params(cells, options.workers),
        &manifest_bytes,
    )?;
    let work = plane.work_ring();
    for index in 0..cells as u64 {
        work.push(index).map_err(|_| MprocError::RingFull)?;
    }

    let mut supervisor = Supervisor::new();
    for slot in 0..options.workers {
        let mut command = Command::new(&options.worker_exe);
        command
            .arg("worker")
            .arg("--plane")
            .arg(&options.plane_path)
            .arg("--slot")
            .arg(slot.to_string());
        supervisor.spawn(&mut command)?;
    }

    let outcome = drive(&plan, &plane, &mut supervisor, options, cells);
    // Whatever happened, release the workers and reap them — no zombies,
    // no orphan processes spinning on the segment.
    if outcome.is_err() {
        plane.signal_abort();
    }
    plane.signal_shutdown();
    supervisor.join_all(Duration::from_secs(10));
    let _ = std::fs::remove_file(&options.plane_path);

    let (rows, computed, requeued, crashed_workers) = outcome?;
    let mut table = plan.table_shell();
    table.rows.extend(rows);
    if let Some(path) = &options.checkpoint {
        table
            .save_json(path)
            .map_err(|e| PolicyError::CheckpointIo {
                path: path.display().to_string(),
                message: e.to_string(),
            })?;
    }
    Ok(MprocReport {
        table,
        computed,
        requeued,
        crashed_workers,
    })
}

type DriveOutcome = (Vec<ResultRow>, usize, usize, usize);

/// The parent's event loop: ingest rows, watch leases and exits, recover
/// from crashes, requeue, and report progress — until every cell has a row.
fn drive(
    plan: &SweepPlan<'_>,
    plane: &Plane,
    supervisor: &mut Supervisor,
    options: &MprocOptions,
    cells: usize,
) -> Result<DriveOutcome, MprocError> {
    let work = plane.work_ring();
    let results = plane.result_ring();
    let leases = plane.leases();
    let mut monitor = LeaseMonitor::new(options.workers);
    let mut rows: Vec<Option<ResultRow>> = (0..cells).map(|_| None).collect();
    let mut pending = cells;
    let mut computed = 0usize;
    let mut requeued = 0usize;
    let mut crashed_workers = 0usize;
    let mut chaos_armed = options.kill_worker;
    let mut waiter = Waiter::new();
    let mut buf = Vec::new();
    let started = Instant::now();
    let mut last_progress = Instant::now();
    let mut last_liveness = Instant::now();

    let requeue = |cell: u64, requeued: &mut usize, why: &str| -> Result<(), MprocError> {
        work.push(cell).map_err(|_| MprocError::RingFull)?;
        *requeued += 1;
        eprintln!("sweep: requeued cell {cell} ({why})");
        Ok(())
    };

    // Shared by the main reap site and the stuck-head re-check below:
    // classify a batch of worker exits. Crashes get their in-flight cell
    // requeued; a nonzero exit aborts the sweep; a clean exit before
    // shutdown is treated as a crash (the worker can only exit 0 after
    // observing shutdown). Returns whether anything was reaped.
    let handle_exits = |exits: Vec<(usize, WorkerExit)>,
                        rows: &[Option<ResultRow>],
                        requeued: &mut usize,
                        crashed_workers: &mut usize|
     -> Result<bool, MprocError> {
        let mut reaped = false;
        for (slot, exit) in exits {
            reaped = true;
            match exit {
                WorkerExit::Failed(code) => {
                    return Err(MprocError::WorkerFailed { slot, code });
                }
                WorkerExit::Crashed | WorkerExit::Clean => {
                    if exit == WorkerExit::Clean && plane.is_shutdown() {
                        continue;
                    }
                    *crashed_workers += 1;
                    eprintln!("sweep: worker {slot} crashed");
                    if let Some(cell) = leases.slot(slot).cell() {
                        if rows.get(cell as usize).is_some_and(|r| r.is_none()) {
                            requeue(cell, requeued, "in flight on crashed worker")?;
                        }
                    }
                }
            }
        }
        Ok(reaped)
    };

    while pending > 0 {
        let mut idle = true;

        // Ingest every available result; first row per cell wins, duplicate
        // recomputations (post-crash) are dropped.
        while let Some(cell) = results.try_pop(&mut buf) {
            idle = false;
            computed += 1;
            let row: ResultRow = codec::decode(&buf)?;
            let slot = rows
                .get_mut(cell as usize)
                .ok_or_else(|| MprocError::Codec(format!("row for unknown cell {cell}")))?;
            if slot.is_none() {
                *slot = Some(row);
                pending -= 1;
            }
        }

        // Chaos hook: kill the named worker once it has done enough cells.
        if let Some((slot, after)) = chaos_armed {
            if slot < options.workers
                && supervisor.is_live(slot)
                && leases.slot(slot).done() >= after
            {
                eprintln!("sweep: chaos: killing worker {slot} after {after} cells");
                let _ = supervisor.kill(slot);
                chaos_armed = None;
            }
        }

        // Reap exits.
        if handle_exits(
            supervisor.poll(),
            &rows,
            &mut requeued,
            &mut crashed_workers,
        )? {
            idle = false;
        }

        // A producer that died mid-publish leaves the result head claimed
        // but unreleased. Skipping it is sound only under the full
        // claim-word rule ([`tcrm_ipc::ResultRing::publish`]): several
        // claim words can name the same position at once — a worker killed
        // between its claim-store and its claiming CAS leaves a stale
        // claim naming the position a different, live worker then wins —
        // so the first dead claimant alone proves nothing.
        if let Some(stuck) = results.stuck_head() {
            if stuck_head_provably_dead(stuck, leases, options.workers, |i| supervisor.is_live(i)) {
                // `is_live` lags reality until a poll reaps the exit, so
                // reap again (requeueing whatever just died) and re-verify.
                // The fresh `stuck_head` read, taken *after* the claim
                // scan, discards the race where the live claimant released
                // the head between the first read and the scan.
                if handle_exits(
                    supervisor.poll(),
                    &rows,
                    &mut requeued,
                    &mut crashed_workers,
                )? {
                    idle = false;
                }
                if stuck_head_provably_dead(stuck, leases, options.workers, |i| {
                    supervisor.is_live(i)
                }) && results.stuck_head() == Some(stuck)
                {
                    idle = false;
                    eprintln!(
                        "sweep: result slot {stuck} is claimed by a dead worker; reclaiming it"
                    );
                    results.skip_head();
                    // Its row never arrived; the cell is still announced on
                    // the dead lease and was requeued by the crash handler
                    // above (or will be by reconciliation below).
                }
            }
            // A live claimant (publish in progress), or no dead claim
            // naming the position: leave the head alone.
        }

        // Stale-heartbeat kill: a wedged worker is indistinguishable from a
        // dead one to the sweep; force the question.
        if last_liveness.elapsed() >= Duration::from_millis(200) {
            last_liveness = Instant::now();
            for slot in 0..options.workers {
                if supervisor.is_live(slot)
                    && monitor.is_stale(leases.slot(slot), slot, options.heartbeat_timeout)
                {
                    eprintln!(
                        "sweep: worker {slot} heartbeat stale for {:?}; killing it",
                        options.heartbeat_timeout
                    );
                    let _ = supervisor.kill(slot);
                }
            }
        }

        // Reconciliation: once every pushed cell has been claimed, any
        // pending cell that no live worker announces is lost (stolen by a
        // worker that died before announcing, or whose requeue raced) —
        // requeue it. Over-requeueing is safe: duplicates dedup on ingest.
        if work.is_drained() && supervisor.live_count() > 0 {
            let announced: Vec<u64> = (0..options.workers)
                .filter(|&i| supervisor.is_live(i) && leases.slot(i).state() == LeaseState::Running)
                .filter_map(|i| leases.slot(i).cell())
                .collect();
            for (index, row) in rows.iter().enumerate() {
                if row.is_none() && !announced.contains(&(index as u64)) {
                    idle = false;
                    requeue(index as u64, &mut requeued, "unclaimed after drain")?;
                }
            }
        }

        if supervisor.live_count() == 0 && pending > 0 {
            // One final drain: rows published just before the last exit.
            while let Some(cell) = results.try_pop(&mut buf) {
                computed += 1;
                let row: ResultRow = codec::decode(&buf)?;
                let slot = rows
                    .get_mut(cell as usize)
                    .ok_or_else(|| MprocError::Codec(format!("row for unknown cell {cell}")))?;
                if slot.is_none() {
                    *slot = Some(row);
                    pending -= 1;
                }
            }
            if pending > 0 {
                return Err(MprocError::AllWorkersDead { missing: pending });
            }
            break;
        }

        // Progress heartbeat: cells done, total, and ingest rate — the same
        // line format the single-process sweep emits, plus worker liveness.
        if last_progress.elapsed() >= options.progress_every {
            last_progress = Instant::now();
            let done = cells - pending;
            let rate = done as f64 / started.elapsed().as_secs_f64().max(1e-9);
            eprintln!(
                "sweep: progress {done}/{cells} cells ({rate:.1} rows/s), {}/{} workers live",
                supervisor.live_count(),
                options.workers
            );
        }

        if idle {
            waiter.wait();
        } else {
            waiter.reset();
        }
    }

    let rows: Vec<ResultRow> = rows
        .into_iter()
        .map(|r| r.expect("pending reached 0 with a hole"))
        .collect();
    // The plan's canonical order is the row order by construction; the
    // count is a final sanity check on the ingest bookkeeping.
    debug_assert_eq!(rows.len(), plan.cell_count());
    Ok((rows, computed, requeued, crashed_workers))
}

/// The stuck-head skip rule from the claim-word protocol documented on
/// [`tcrm_ipc::ResultRing::publish`]: the parent may [`skip`] the result
/// ring's head only when
///
/// * **no live `Running` worker's** claim word names the stuck position —
///   the position's true claimant keeps its claim word set from before its
///   winning CAS until after its sequence release, so a live claimant is
///   mid-publish and must not be raced; and
/// * **some dead worker's** claim word does name it — positive evidence
///   that a claimant died, rather than a head we merely caught mid-claim.
///
/// Both conditions are needed because several claim words can name the
/// same position at once: a worker killed between its claim-store and its
/// claiming CAS leaves a stale claim naming a position that a different,
/// live worker then wins.
///
/// [`skip`]: tcrm_ipc::ResultRing::skip_head
fn stuck_head_provably_dead(
    stuck: u64,
    leases: LeaseTable<'_>,
    workers: usize,
    is_live: impl Fn(usize) -> bool,
) -> bool {
    let live_claimant = (0..workers).any(|i| {
        is_live(i)
            && leases.slot(i).state() == LeaseState::Running
            && leases.slot(i).claim() == Some(stuck)
    });
    let dead_claimant = (0..workers).any(|i| !is_live(i) && leases.slot(i).claim() == Some(stuck));
    !live_claimant && dead_claimant
}

/// How often a worker's sidecar thread beats its lease. Far inside any
/// sane `heartbeat_timeout`, so a worker that is merely *slow* — one cell
/// outlasting the timeout, or a publish spinning on a full result ring —
/// never reads as wedged to the parent.
pub const WORKER_BEAT_PERIOD: Duration = Duration::from_millis(50);

/// Run the worker side: open the plane at `plane_path`, verify the grid
/// fingerprint, take lease `slot`, and steal/execute/publish cells until
/// the parent signals shutdown (or abort).
pub fn run_sweep_worker(plane_path: &Path, slot: usize) -> Result<(), MprocError> {
    let plane = Plane::open(plane_path)?;
    let manifest: PlaneManifest = codec::decode(plane.config())?;
    let registry = PolicyRegistry::with_baselines();
    let scenario_registry = ScenarioRegistry::new();
    let plan = manifest
        .config
        .to_session(&registry, &scenario_registry)?
        .plan()?;
    if plan.fingerprint() != manifest.fingerprint {
        return Err(MprocError::FingerprintMismatch {
            manifest: manifest.fingerprint,
            computed: plan.fingerprint().to_string(),
        });
    }
    if slot >= plane.params().worker_slots {
        return Err(MprocError::SlotTaken(slot));
    }
    let leases = plane.leases();
    let lease = leases.slot(slot);
    if !lease.acquire(std::process::id() as u64) {
        return Err(MprocError::SlotTaken(slot));
    }

    let work = plane.work_ring();
    let results = plane.result_ring();
    let mut scratch = plan.make_scratch();
    // The steal loop beats once per trip, but a cell's `run_cell` (and a
    // publish spinning on a full result ring) can legitimately outlast the
    // parent's heartbeat timeout. A sidecar thread keeps the lease warm
    // the whole time this process is scheduled, so the parent only kills
    // workers that are actually stopped.
    let stop_beating = AtomicBool::new(false);
    let outcome = std::thread::scope(|scope| {
        scope.spawn(|| {
            while !stop_beating.load(Ordering::Acquire) {
                lease.beat();
                std::thread::sleep(WORKER_BEAT_PERIOD);
            }
        });
        let result: Result<(), MprocError> = (|| {
            let mut steal_waiter = Waiter::new();
            let mut publish_waiter = Waiter::new();
            loop {
                lease.beat();
                if plane.is_aborted() {
                    break;
                }
                match work.steal() {
                    Some(cell) => {
                        steal_waiter.reset();
                        lease.announce_cell(cell);
                        let row = match plan.run_cell(&mut scratch, cell as usize) {
                            Ok(row) => row,
                            Err(e) => {
                                lease.finish(LeaseState::Failed);
                                return Err(e.into());
                            }
                        };
                        let payload = codec::encode(&row)?;
                        results
                            .publish(lease.claim_word(), cell, &payload, &mut publish_waiter)
                            .map_err(|e| MprocError::Codec(e.to_string()))?;
                        lease.clear_cell();
                    }
                    None if plane.is_shutdown() && work.is_drained() => break,
                    None => steal_waiter.wait(),
                }
            }
            Ok(())
        })();
        stop_beating.store(true, Ordering::Release);
        result
    });
    outcome?;
    lease.finish(LeaseState::Finished);
    Ok(())
}

/// Parse `expdriver sweep`'s multi-process flags out of an argument pair
/// stream — kept here next to the options they fill so the binary stays a
/// thin dispatcher.
pub fn parse_mproc_flag(
    options: &mut Option<MprocFlags>,
    flag: &str,
    value: &str,
) -> Result<bool, String> {
    match flag {
        "--workers" => {
            options.get_or_insert_with(MprocFlags::default).workers = cli::parse_workers(value)?;
            Ok(true)
        }
        "--plane" => {
            options.get_or_insert_with(MprocFlags::default).plane = Some(PathBuf::from(value));
            Ok(true)
        }
        "--kill-worker" => {
            options.get_or_insert_with(MprocFlags::default).kill_worker =
                Some(cli::parse_kill_worker(value)?);
            Ok(true)
        }
        "--heartbeat-timeout" => {
            options
                .get_or_insert_with(MprocFlags::default)
                .heartbeat_timeout = Some(cli::parse_timeout_secs("--heartbeat-timeout", value)?);
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// The raw multi-process flags of `expdriver sweep` before they are turned
/// into [`MprocOptions`].
#[derive(Debug, Default)]
pub struct MprocFlags {
    /// `--workers N` (0 = not set; the single-process path).
    pub workers: usize,
    /// `--plane <path>` override for the segment file.
    pub plane: Option<PathBuf>,
    /// `--kill-worker slot@cells` chaos spec.
    pub kill_worker: Option<(usize, u64)>,
    /// `--heartbeat-timeout <secs>` override for
    /// [`MprocOptions::heartbeat_timeout`].
    pub heartbeat_timeout: Option<Duration>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SweepConfig {
        SweepConfig {
            policies: vec!["edf".into(), "fifo".into()],
            scenarios: vec![],
            loads: vec![0.7, 0.9],
            jobs: 20,
            seeds: vec![1, 2],
        }
    }

    #[test]
    fn sweep_config_roundtrips_and_builds_identical_plans() {
        let bytes = codec::encode(&config()).unwrap();
        let back: SweepConfig = codec::decode(&bytes).unwrap();
        assert_eq!(back, config());

        let registry = PolicyRegistry::with_baselines();
        let scenarios = ScenarioRegistry::new();
        let a = config()
            .to_session(&registry, &scenarios)
            .unwrap()
            .plan()
            .unwrap();
        let b = back
            .to_session(&registry, &scenarios)
            .unwrap()
            .plan()
            .unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.cell_count(), b.cell_count());
        // 2 policies × 2 loads × 2 seeds.
        assert_eq!(a.cell_count(), 8);
        for i in 0..a.cell_count() {
            assert_eq!(a.key(i), b.key(i));
        }
    }

    #[test]
    fn plane_params_never_wrap_and_stay_pow2() {
        for cells in [0, 1, 7, 100, 5000] {
            for workers in [1, 3, 16] {
                let p = plane_params(cells, workers);
                assert!(p.work_capacity.is_power_of_two());
                assert!(p.result_capacity.is_power_of_two());
                // Room for the initial enqueue plus a 7×-cells requeue
                // budget: the never-wrap discipline.
                assert!(p.work_capacity >= cells * 8);
                assert_eq!(p.result_stride % 64, 0);
            }
        }
    }

    #[test]
    fn mproc_flags_parse_and_reject() {
        let mut flags = None;
        assert!(parse_mproc_flag(&mut flags, "--workers", "3").unwrap());
        assert!(parse_mproc_flag(&mut flags, "--plane", "/tmp/p.shm").unwrap());
        assert!(parse_mproc_flag(&mut flags, "--kill-worker", "1@2").unwrap());
        assert!(parse_mproc_flag(&mut flags, "--heartbeat-timeout", "2.5").unwrap());
        assert!(!parse_mproc_flag(&mut flags, "--csv", "x").unwrap());
        let flags = flags.unwrap();
        assert_eq!(flags.workers, 3);
        assert_eq!(flags.plane.as_deref(), Some(Path::new("/tmp/p.shm")));
        assert_eq!(flags.kill_worker, Some((1, 2)));
        assert_eq!(flags.heartbeat_timeout, Some(Duration::from_millis(2500)));

        let mut flags = None;
        assert!(parse_mproc_flag(&mut flags, "--workers", "0").is_err());
        assert!(parse_mproc_flag(&mut flags, "--kill-worker", "nope").is_err());
        assert!(parse_mproc_flag(&mut flags, "--heartbeat-timeout", "0").is_err());
    }

    #[test]
    fn stuck_head_skip_requires_a_dead_claimant_and_no_live_one() {
        let path =
            std::env::temp_dir().join(format!("tcrm-mproc-stuck-test-{}.shm", std::process::id()));
        let plane = Plane::create(
            &path,
            PlaneParams {
                worker_slots: 2,
                work_capacity: 8,
                result_capacity: 8,
                result_stride: 128,
            },
            b"",
        )
        .unwrap();
        let leases = plane.leases();
        let stale = leases.slot(0);
        let claimant = leases.slot(1);
        assert!(stale.acquire(100));
        assert!(claimant.acquire(101));

        // Worker 1 wins result position 0 and stalls mid-publish (never
        // releases the slot) …
        plane.result_ring().abandon_claim(claimant.claim_word());
        // … while worker 0 was killed between storing position 0 into its
        // claim word and losing the claiming CAS: a stale claim naming the
        // same position.
        stale
            .claim_word()
            .store(0, std::sync::atomic::Ordering::Release);
        let stuck = plane.result_ring().stuck_head().expect("head is stuck");
        assert_eq!(stuck, 0);

        // The review scenario: the dead worker (lower slot) names the
        // stuck position, but the true claimant is alive mid-publish —
        // skipping now would corrupt the ring under a live writer.
        assert!(!stuck_head_provably_dead(stuck, leases, 2, |i| i == 1));
        // Everyone alive: a publish is simply in progress.
        assert!(!stuck_head_provably_dead(stuck, leases, 2, |_| true));
        // Claimant dead too: now provably safe to skip.
        assert!(stuck_head_provably_dead(stuck, leases, 2, |_| false));
        // Dead workers whose claims do not name the position are no
        // evidence — without a dead claim on the head, never skip.
        stale
            .claim_word()
            .store(tcrm_ipc::NONE, std::sync::atomic::Ordering::Release);
        claimant
            .claim_word()
            .store(tcrm_ipc::NONE, std::sync::atomic::Ordering::Release);
        assert!(!stuck_head_provably_dead(stuck, leases, 2, |_| false));

        drop(plane);
        let _ = std::fs::remove_file(&path);
    }
}
