//! One function per table and figure of the reconstructed evaluation.
//!
//! All experiments are driven through a [`Lab`], which owns the cluster and
//! workload configuration, lazily trains (and caches to disk) the DRL agent
//! variants, and scales every experiment down when `quick` mode is requested
//! (the integration tests and the default `expdriver` invocation use quick
//! mode; `--full` reproduces the paper-scale runs).

use crate::policy::PolicyRegistry;
use crate::results::ResultTable;
use crate::runner::{EvalReport, EvalSession};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::Instant;
use tcrm_baselines::{BASELINE_NAMES, EXTENDED_BASELINE_NAMES};
use tcrm_core::{
    train_agent, AgentConfig, DrlScheduler, LearnerKind, RewardKind, TrainConfig, TrainSetup,
};
use tcrm_rl::TrainingHistory;
use tcrm_sim::{ClusterSpec, Job, JobClass, SimConfig, Simulator};
use tcrm_workload::{load_sweep, slack_sweep, SyntheticSource, WorkloadSpec};

/// The rendered output of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Experiment id (`table1`, `fig3`, …).
    pub name: String,
    /// Markdown rendering (tables / series).
    pub markdown: String,
    /// CSV rendering of the underlying data.
    pub csv: String,
}

impl ExperimentOutput {
    /// Write `<out_dir>/<name>.md` and `<out_dir>/<name>.csv`.
    pub fn write_to(&self, out_dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(out_dir)?;
        std::fs::write(out_dir.join(format!("{}.md", self.name)), &self.markdown)?;
        std::fs::write(out_dir.join(format!("{}.csv", self.name)), &self.csv)?;
        Ok(())
    }
}

/// All experiment ids, in presentation order.
pub const ALL_EXPERIMENTS: [&str; 16] = [
    "table1", "table2", "table3", "table4", "table5", "fig2", "fig3", "fig4", "fig5", "fig6",
    "fig7", "fig8", "fig9", "fig10", "fig11",
    // summary is a derived artefact listing headline comparisons
    "summary",
];

/// The experiment laboratory: shared configuration, cached agents and cached
/// evaluation grids.
pub struct Lab {
    /// Quick mode scales every run down to seconds/minutes.
    pub quick: bool,
    /// Print sweep progress and resume statistics to stderr (the expdriver
    /// turns this on; tests leave it off).
    pub verbose: bool,
    /// Run only shard `i` of `n` of every evaluation grid (the
    /// `expdriver --shard i/n` flag). Sharded runs write per-shard
    /// checkpoints (`…-shard-i-of-n.json`) meant to be combined with
    /// `expdriver merge-checkpoints`; the rendered experiment outputs of a
    /// sharded run cover only the shard's rows.
    pub shard: Option<(usize, usize)>,
    /// Directory checkpoints and results are written to.
    pub out_dir: PathBuf,
    cluster: ClusterSpec,
    workload: WorkloadSpec,
    sim: SimConfig,
    registry: Mutex<PolicyRegistry>,
    agents: Mutex<HashMap<String, (DrlScheduler, TrainingHistory)>>,
    main_grid: Mutex<Option<ResultTable>>,
}

impl Lab {
    /// Create a lab.
    pub fn new(quick: bool, out_dir: impl Into<PathBuf>) -> Self {
        Lab {
            quick,
            verbose: false,
            shard: None,
            out_dir: out_dir.into(),
            cluster: ClusterSpec::icpp_default(),
            workload: WorkloadSpec::icpp_default(),
            sim: SimConfig::default(),
            registry: Mutex::new(PolicyRegistry::with_baselines()),
            agents: Mutex::new(HashMap::new()),
            main_grid: Mutex::new(None),
        }
    }

    /// Override the cluster, workload family and simulator configuration
    /// (used by integration tests to shrink experiments further than quick
    /// mode does).
    pub fn with_environment(
        mut self,
        cluster: ClusterSpec,
        workload: WorkloadSpec,
        sim: SimConfig,
    ) -> Self {
        self.cluster = cluster;
        self.workload = workload;
        self.sim = sim;
        self
    }

    /// Number of jobs per evaluation run.
    fn eval_jobs(&self) -> usize {
        if self.quick {
            120
        } else {
            2000
        }
    }

    /// Replication seeds per evaluation cell.
    fn seeds(&self) -> Vec<u64> {
        if self.quick {
            vec![1, 2]
        } else {
            vec![1, 2, 3, 4, 5]
        }
    }

    /// The load grid used by the sweep figures.
    fn load_grid(&self) -> Vec<f64> {
        if self.quick {
            vec![0.5, 0.9, 1.1]
        } else {
            tcrm_workload::sweep::default_load_grid()
        }
    }

    fn train_config(&self, learner: LearnerKind, seed: u64) -> TrainConfig {
        if self.quick {
            TrainConfig {
                learner,
                iterations: 30,
                episodes_per_iteration: 4,
                jobs_per_episode: 20,
                seed,
                ..Default::default()
            }
        } else {
            TrainConfig {
                learner,
                iterations: 400,
                episodes_per_iteration: 8,
                jobs_per_episode: 50,
                seed,
                ..Default::default()
            }
        }
    }

    /// Train (or fetch from cache / checkpoint) one agent variant.
    pub fn agent(&self, key: &str) -> (DrlScheduler, TrainingHistory) {
        if let Some(found) = self.agents.lock().get(key) {
            return found.clone();
        }
        let (agent_cfg, learner, reward) = match key {
            "drl" => (
                AgentConfig::default(),
                LearnerKind::A2c,
                RewardKind::Utility,
            ),
            "drl-rigid" => (
                AgentConfig::default().rigid(),
                LearnerKind::A2c,
                RewardKind::Utility,
            ),
            "drl-class-blind" => (
                AgentConfig::default().heterogeneity_blind(),
                LearnerKind::A2c,
                RewardKind::Utility,
            ),
            "drl-reward-miss" => (
                AgentConfig::default().with_reward(RewardKind::MissPenalty),
                LearnerKind::A2c,
                RewardKind::MissPenalty,
            ),
            "drl-reward-slowdown" => (
                AgentConfig::default().with_reward(RewardKind::Slowdown),
                LearnerKind::A2c,
                RewardKind::Slowdown,
            ),
            "drl-ppo" => (
                AgentConfig::default(),
                LearnerKind::Ppo,
                RewardKind::Utility,
            ),
            "drl-reinforce" => (
                AgentConfig::default(),
                LearnerKind::Reinforce,
                RewardKind::Utility,
            ),
            other => panic!("unknown agent variant '{other}'"),
        };
        let _ = reward;
        // Try the on-disk checkpoint first (training history is re-derived
        // only when an actual training run happens).
        let ckpt_dir = self.out_dir.join("agents");
        let ckpt = ckpt_dir.join(format!("{key}.json"));
        let hist_path = ckpt_dir.join(format!("{key}.history.json"));
        if ckpt.exists() {
            if let Ok(agent) = DrlScheduler::load(&ckpt) {
                let history: TrainingHistory = std::fs::read_to_string(&hist_path)
                    .ok()
                    .and_then(|s| serde_json::from_str(&s).ok())
                    .unwrap_or_default();
                let pair = (agent.with_name(key.to_string()), history);
                self.agents.lock().insert(key.to_string(), pair.clone());
                return pair;
            }
        }
        let setup = TrainSetup {
            cluster: self.cluster.clone(),
            workload: self.workload.clone(),
            sim: self.sim.clone(),
            agent: agent_cfg,
            train: self.train_config(learner, 7),
        };
        let outcome = train_agent(&setup);
        let agent = outcome.agent.with_name(key.to_string());
        let _ = std::fs::create_dir_all(&ckpt_dir);
        let _ = agent.save(&ckpt);
        let _ = std::fs::write(
            &hist_path,
            serde_json::to_string(&outcome.history).unwrap_or_default(),
        );
        let pair = (agent, outcome.history);
        self.agents.lock().insert(key.to_string(), pair.clone());
        pair
    }

    fn workload_at(&self, load: f64) -> WorkloadSpec {
        self.workload
            .clone()
            .with_num_jobs(self.eval_jobs())
            .with_load(load)
    }

    /// Materialise one workload through the streaming source API (the
    /// experiments that drive `Simulator::run` directly need a `Vec`).
    fn jobs(&self, workload: &WorkloadSpec, cluster: &ClusterSpec, seed: u64) -> Vec<Job> {
        SyntheticSource::new(workload, cluster, seed)
            .expect("lab workloads validate")
            .collect()
    }

    /// Train (or load) the agent variant `key` and make sure the policy
    /// registry can resolve it by name, so experiment policy lists can mix
    /// baselines and DRL variants freely.
    fn registered_agent(&self, key: &str) -> (DrlScheduler, TrainingHistory) {
        let pair = self.agent(key);
        let mut registry = self.registry.lock();
        if !registry.contains(key) {
            registry
                .register_drl(pair.0.clone())
                .expect("agent keys are grammar-clean and unique");
        }
        pair
    }

    /// Run one evaluation sweep over `policies × points × seeds` through the
    /// registry, with the lab's cluster/engine configuration and optional
    /// verbose progress reporting.
    fn sweep(
        &self,
        experiment: &str,
        caption: &str,
        parameter_name: &str,
        policies: &[&str],
        points: Vec<(f64, WorkloadSpec)>,
        checkpoint: Option<PathBuf>,
    ) -> ResultTable {
        let registry = self.registry.lock();
        let mut session = EvalSession::new(&registry)
            .cluster(self.cluster.clone())
            .sim(self.sim.clone())
            .seeds(&self.seeds())
            .table(experiment, caption, parameter_name)
            .points(points)
            .policies(policies.iter().copied())
            .unwrap_or_else(|e| panic!("{experiment}: {e}"));
        // Sharded runs compute their slice of the grid into a per-shard
        // checkpoint; `merge-checkpoints` reassembles the full grid.
        let checkpoint = match (self.shard, checkpoint) {
            (Some((index, count)), Some(path)) => {
                session = session.shard(index, count);
                let stem = path
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_default();
                Some(path.with_file_name(format!("{stem}-shard-{index}-of-{count}.json")))
            }
            (Some((index, count)), None) => {
                session = session.shard(index, count);
                None
            }
            (None, path) => path,
        };
        if self.verbose {
            let label = experiment.to_string();
            session = session.on_row(move |row, done, total| {
                if done % 8 == 0 || done == total {
                    eprintln!(
                        "  [{label}] {done}/{total} rows (last: {} @ {:.2}, seed {})",
                        row.scheduler, row.parameter, row.seed
                    );
                }
            });
        }
        if let Some(path) = checkpoint {
            session = session.checkpoint(path);
        }
        let EvalReport {
            table,
            computed,
            resumed,
            stale_checkpoint,
        } = session
            .run()
            .unwrap_or_else(|e| panic!("{experiment}: {e}"));
        if stale_checkpoint {
            eprintln!(
                "  [{experiment}] checkpoint was for a different grid; recomputed from scratch"
            );
        }
        if self.verbose && resumed > 0 {
            eprintln!("  [{experiment}] resumed {resumed} cached rows, simulated {computed}");
        }
        table
    }

    /// All comparison policies: the seven baselines plus the main DRL agent.
    fn comparison_policies(&self) -> Vec<&'static str> {
        self.registered_agent("drl");
        let mut policies: Vec<&'static str> = BASELINE_NAMES.to_vec();
        policies.push("drl");
        policies
    }

    /// The shared load-sweep grid over all comparison schedulers (used by
    /// Table 2/3 and Figures 3/4). Checkpointed to
    /// `<out_dir>/main-grid-{quick,full}.json`, so an interrupted run resumes
    /// from the completed rows.
    fn main_grid(&self) -> ResultTable {
        if let Some(table) = self.main_grid.lock().as_ref() {
            return table.clone();
        }
        let policies = self.comparison_policies();
        let points: Vec<(f64, WorkloadSpec)> = load_sweep(
            &self.workload.clone().with_num_jobs(self.eval_jobs()),
            &self.load_grid(),
        );
        // Quick and full grids resume from separate checkpoints: their rows
        // share (scheduler, load, seed) keys but not workload scale.
        let mode = if self.quick { "quick" } else { "full" };
        let checkpoint = self.out_dir.join(format!("main-grid-{mode}.json"));
        let table = self.sweep(
            "main-grid",
            "All schedulers across offered load",
            "load",
            &policies,
            points,
            Some(checkpoint),
        );
        *self.main_grid.lock() = Some(table.clone());
        table
    }

    // ------------------------------------------------------------------
    // Individual experiments
    // ------------------------------------------------------------------

    /// Table 1: cluster and workload configuration (static description).
    pub fn table1(&self) -> ExperimentOutput {
        let mut md = String::from("### table1 — Cluster and workload configuration\n\n");
        md.push_str("| node class | count | cpu | mem (GiB) | gpu | io (Gbit/s) | speed batch/stream/ml-train/ml-infer |\n|---|---|---|---|---|---|---|\n");
        let mut csv =
            String::from("node_class,count,cpu,mem,gpu,io,s_batch,s_stream,s_mltrain,s_mlinfer\n");
        for class in &self.cluster.node_classes {
            let c = class.capacity.as_array();
            let s = class.speed.as_array();
            md.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {:.1} / {:.1} / {:.1} / {:.1} |\n",
                class.name, class.count, c[0], c[1], c[2], c[3], s[0], s[1], s[2], s[3]
            ));
            csv.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{}\n",
                class.name, class.count, c[0], c[1], c[2], c[3], s[0], s[1], s[2], s[3]
            ));
        }
        md.push_str("\n| job class | mix | mean work | cpu/unit | mem/unit | gpu/unit | utility |\n|---|---|---|---|---|---|---|\n");
        csv.push_str("job_class,mix,work_mean,cpu,mem,gpu,utility\n");
        for t in &self.workload.classes {
            let d = t.demand_per_unit.as_array();
            md.push_str(&format!(
                "| {} | {:.0}% | {:.0} | {} | {} | {} | {:.1} |\n",
                t.class,
                t.weight * 100.0,
                t.work_mean,
                d[0],
                d[1],
                d[2],
                t.utility_value
            ));
            csv.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                t.class, t.weight, t.work_mean, d[0], d[1], d[2], t.utility_value
            ));
        }
        md.push_str(&format!(
            "\nDeadline slack ∈ [{:.1}, {:.1}] × best-case service time; load sweep {:?}.\n",
            self.workload.deadlines.slack_min,
            self.workload.deadlines.slack_max,
            self.load_grid()
        ));
        ExperimentOutput {
            name: "table1".into(),
            markdown: md,
            csv,
        }
    }

    /// Table 2: deadline-miss rate per scheduler at moderate and high load.
    pub fn table2(&self) -> ExperimentOutput {
        let grid = self.main_grid();
        let loads = self.table_loads();
        let mut table = ResultTable::new(
            "table2",
            format!("Deadline-miss rate at load {:?}", loads),
            "load",
        );
        table.extend(
            grid.rows
                .iter()
                .filter(|r| loads.iter().any(|l| (r.parameter - l).abs() < 1e-9))
                .cloned()
                .collect(),
        );
        ExperimentOutput {
            name: "table2".into(),
            markdown: table.to_markdown(),
            csv: table.to_csv(),
        }
    }

    fn table_loads(&self) -> Vec<f64> {
        let grid = self.load_grid();
        // Moderate and high load points present in the grid.
        let moderate = grid
            .iter()
            .cloned()
            .min_by(|a, b| (a - 0.7).abs().partial_cmp(&(b - 0.7).abs()).unwrap())
            .unwrap();
        let high = grid
            .iter()
            .cloned()
            .min_by(|a, b| (a - 1.1).abs().partial_cmp(&(b - 1.1).abs()).unwrap())
            .unwrap();
        vec![moderate, high]
    }

    /// Table 3: slowdown and time-utility per scheduler (moderate load).
    pub fn table3(&self) -> ExperimentOutput {
        let grid = self.main_grid();
        let load = self
            .load_grid()
            .iter()
            .cloned()
            .min_by(|a, b| (a - 0.9).abs().partial_cmp(&(b - 0.9).abs()).unwrap())
            .unwrap();
        let mut table = ResultTable::new(
            "table3",
            format!("Slowdown and utility ratio at load {load}"),
            "load",
        );
        table.extend(
            grid.rows
                .iter()
                .filter(|r| (r.parameter - load).abs() < 1e-9)
                .cloned()
                .collect(),
        );
        ExperimentOutput {
            name: "table3".into(),
            markdown: table.to_markdown(),
            csv: table.to_csv(),
        }
    }

    /// Table 4: decision latency per scheduler vs cluster size, plus agent
    /// model size.
    pub fn table4(&self) -> ExperimentOutput {
        let scales: Vec<f64> = if self.quick {
            vec![1.0, 2.0]
        } else {
            vec![1.0, 2.0, 4.0, 8.0]
        };
        let (agent, _) = self.registered_agent("drl");
        let mut md = String::from(
            "### table4 — Mean decision latency (µs per decision epoch)\n\n| scheduler | nodes | mean latency (µs) | decisions |\n|---|---|---|---|\n",
        );
        let mut csv = String::from("scheduler,nodes,mean_latency_us,decisions\n");
        let registry = self.registry.lock();
        for scale in &scales {
            let cluster = ClusterSpec::icpp_scaled(*scale);
            let nodes = cluster.num_nodes();
            let workload = self
                .workload
                .clone()
                .with_num_jobs(if self.quick { 80 } else { 400 })
                .with_load(0.9);
            for policy in ["edf", "tetris", "greedy-elastic", "drl"] {
                let jobs = self.jobs(&workload, &cluster, 11);
                let mut scheduler = registry.build_str(policy, 11).expect("policy registered");
                let start = Instant::now();
                let result =
                    Simulator::new(cluster.clone(), self.sim.clone()).run(jobs, &mut scheduler);
                let elapsed = start.elapsed();
                let decisions = result.summary.decision_epochs.max(1);
                let latency_us = elapsed.as_secs_f64() * 1e6 / decisions as f64;
                md.push_str(&format!(
                    "| {policy} | {nodes} | {latency_us:.1} | {decisions} |\n"
                ));
                csv.push_str(&format!("{policy},{nodes},{latency_us:.3},{decisions}\n"));
            }
        }
        md.push_str(&format!(
            "\nPolicy network parameters: {}; observation dim {}, action count {}.\n",
            agent.policy().network().num_parameters(),
            agent.policy().observation_dim(),
            agent.policy().action_count()
        ));
        ExperimentOutput {
            name: "table4".into(),
            markdown: md,
            csv,
        }
    }

    /// Table 5: extended heuristic comparison — the headline baselines plus
    /// the EASY-backfill, HEFT and slack-pack heuristics — at moderate load.
    pub fn table5(&self) -> ExperimentOutput {
        let load = self
            .load_grid()
            .iter()
            .cloned()
            .min_by(|a, b| (a - 0.9).abs().partial_cmp(&(b - 0.9).abs()).unwrap())
            .unwrap();
        self.registered_agent("drl");
        let mut policies: Vec<&str> = BASELINE_NAMES
            .iter()
            .chain(EXTENDED_BASELINE_NAMES.iter())
            .copied()
            .collect();
        policies.push("drl");
        let table = self.sweep(
            "table5",
            &format!(
                "Extended heuristic comparison (incl. backfill / HEFT / slack-pack) at load {load}"
            ),
            "load",
            &policies,
            vec![(load, self.workload_at(load))],
            None,
        );
        ExperimentOutput {
            name: "table5".into(),
            markdown: table.to_markdown(),
            csv: table.to_csv(),
        }
    }

    /// Figure 10: energy and fairness per scheduler at moderate load. Energy
    /// uses the per-class utilisation-proportional power models of the
    /// cluster spec; fairness is the Jain index over completed-job slowdowns.
    pub fn fig10(&self) -> ExperimentOutput {
        let load = self
            .load_grid()
            .iter()
            .cloned()
            .min_by(|a, b| (a - 0.9).abs().partial_cmp(&(b - 0.9).abs()).unwrap())
            .unwrap();
        let workload = self.workload_at(load);
        self.registered_agent("drl");
        let policies = ["drl", "edf", "greedy-elastic", "backfill", "tetris", "fifo"];
        let mut md = String::from(
            "### fig10 — Energy and fairness per scheduler (load ≈ 0.9)\n\n| scheduler | energy (kWh) | mean power (kW) | kJ / completed job | slowdown fairness (Jain) | miss rate |\n|---|---|---|---|---|---|\n",
        );
        let mut csv = String::from(
            "scheduler,seed,total_kwh,mean_watts,joules_per_job,slowdown_fairness,miss_rate,utility_ratio\n",
        );
        let registry = self.registry.lock();
        for policy in policies {
            let mut kwh = Vec::new();
            let mut watts = Vec::new();
            let mut per_job = Vec::new();
            let mut fairness = Vec::new();
            let mut miss = Vec::new();
            for &seed in &self.seeds() {
                let jobs = self.jobs(&workload, &self.cluster, seed);
                let mut scheduler = registry.build_str(policy, seed).expect("policy registered");
                let result = Simulator::new(self.cluster.clone(), self.sim.clone())
                    .run(jobs, &mut scheduler);
                let energy = result
                    .trace
                    .energy_report(&self.cluster, result.summary.completed_jobs);
                csv.push_str(&format!(
                    "{},{},{:.6},{:.1},{:.1},{:.4},{:.4},{:.4}\n",
                    policy,
                    seed,
                    energy.total_kwh,
                    energy.mean_watts(),
                    energy.joules_per_completed_job,
                    result.summary.slowdown_fairness,
                    result.summary.miss_rate,
                    result.summary.utility_ratio
                ));
                kwh.push(energy.total_kwh);
                watts.push(energy.mean_watts());
                per_job.push(energy.joules_per_completed_job);
                fairness.push(result.summary.slowdown_fairness);
                miss.push(result.summary.miss_rate);
            }
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
            md.push_str(&format!(
                "| {} | {:.3} | {:.2} | {:.1} | {:.3} | {:.1}% |\n",
                policy,
                mean(&kwh),
                mean(&watts) / 1000.0,
                mean(&per_job) / 1000.0,
                mean(&fairness),
                mean(&miss) * 100.0
            ));
        }
        md.push_str(
            "\nEnergy integrates each node class's utilisation-proportional power model over the run; idle machines still draw idle power, so schedulers that finish the workload sooner or keep fast classes busier spend fewer joules per completed job.\n",
        );
        ExperimentOutput {
            name: "fig10".into(),
            markdown: md,
            csv,
        }
    }

    /// Figure 2: training convergence of the DRL agent.
    pub fn fig2(&self) -> ExperimentOutput {
        let (_, history) = self.agent("drl");
        let mut md = String::from(
            "### fig2 — Training convergence (episode return per iteration)\n\n| iteration | mean return | min | max | entropy | policy loss |\n|---|---|---|---|---|---|\n",
        );
        let mut csv =
            String::from("iteration,mean_return,min_return,max_return,entropy,policy_loss,value_loss,mean_length\n");
        for s in &history.iterations {
            md.push_str(&format!(
                "| {} | {:.2} | {:.2} | {:.2} | {:.3} | {:.4} |\n",
                s.iteration,
                s.mean_return,
                s.min_return,
                s.max_return,
                s.update.entropy,
                s.update.policy_loss
            ));
            csv.push_str(&format!(
                "{},{:.4},{:.4},{:.4},{:.4},{:.6},{:.6},{:.2}\n",
                s.iteration,
                s.mean_return,
                s.min_return,
                s.max_return,
                s.update.entropy,
                s.update.policy_loss,
                s.update.value_loss,
                s.mean_length
            ));
        }
        md.push_str(&format!(
            "\nFinal mean return (last 5 iterations): {:.2}; best iteration: {:.2}.\n",
            history.final_mean_return(5),
            history.best_mean_return()
        ));
        ExperimentOutput {
            name: "fig2".into(),
            markdown: md,
            csv,
        }
    }

    /// Figure 3: deadline-miss rate vs offered load, all schedulers.
    pub fn fig3(&self) -> ExperimentOutput {
        let grid = self.main_grid();
        let mut table = grid.clone();
        table.experiment = "fig3".into();
        table.caption = "Deadline-miss rate vs offered load".into();
        ExperimentOutput {
            name: "fig3".into(),
            markdown: table.to_markdown(),
            csv: table.to_csv(),
        }
    }

    /// Figure 4: mean bounded slowdown vs offered load, all schedulers.
    pub fn fig4(&self) -> ExperimentOutput {
        let grid = self.main_grid();
        let mut table = grid.clone();
        table.experiment = "fig4".into();
        table.caption = "Mean bounded slowdown vs offered load".into();
        ExperimentOutput {
            name: "fig4".into(),
            markdown: table.to_markdown(),
            csv: table.to_csv(),
        }
    }

    /// Figure 5: per-class utilisation timeline, DRL vs EDF, at load 0.9.
    pub fn fig5(&self) -> ExperimentOutput {
        let workload = self.workload_at(0.9);
        self.registered_agent("drl");
        let mut md = String::from(
            "### fig5 — Cluster utilisation timeline (load 0.9)\n\n| scheduler | mean overall util | mean cpu-heavy | mean mem-heavy | mean gpu | mean edge |\n|---|---|---|---|---|---|\n",
        );
        let mut csv =
            String::from("scheduler,time,overall,cpu_heavy,mem_heavy,gpu,edge,pending,running\n");
        let registry = self.registry.lock();
        for policy in ["drl", "edf"] {
            let jobs = self.jobs(&workload, &self.cluster, 21);
            let mut scheduler = registry.build_str(policy, 21).expect("policy registered");
            let result =
                Simulator::new(self.cluster.clone(), self.sim.clone()).run(jobs, &mut scheduler);
            for sample in &result.trace.samples {
                let class_means: Vec<f64> = sample
                    .per_class
                    .iter()
                    .map(|v| {
                        let nz: Vec<f64> = v.0.iter().cloned().filter(|x| *x > 0.0).collect();
                        if nz.is_empty() {
                            0.0
                        } else {
                            nz.iter().sum::<f64>() / nz.len() as f64
                        }
                    })
                    .collect();
                csv.push_str(&format!(
                    "{},{:.1},{:.4},{:.4},{:.4},{:.4},{:.4},{},{}\n",
                    policy,
                    sample.time,
                    sample.overall,
                    class_means.first().copied().unwrap_or(0.0),
                    class_means.get(1).copied().unwrap_or(0.0),
                    class_means.get(2).copied().unwrap_or(0.0),
                    class_means.get(3).copied().unwrap_or(0.0),
                    sample.pending,
                    sample.running
                ));
            }
            md.push_str(&format!(
                "| {} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} |\n",
                policy,
                result.trace.mean_overall(),
                result.trace.mean_class_overall(0),
                result.trace.mean_class_overall(1),
                result.trace.mean_class_overall(2),
                result.trace.mean_class_overall(3),
            ));
        }
        ExperimentOutput {
            name: "fig5".into(),
            markdown: md,
            csv,
        }
    }

    /// Figure 6: elasticity ablation across load.
    pub fn fig6(&self) -> ExperimentOutput {
        self.registered_agent("drl");
        self.registered_agent("drl-rigid");
        let points = load_sweep(
            &self.workload.clone().with_num_jobs(self.eval_jobs()),
            &self.load_grid(),
        );
        let table = self.sweep(
            "fig6",
            "Elasticity ablation: elastic vs rigid allocation across load",
            "load",
            &[
                "drl",
                "drl-rigid",
                "greedy-elastic",
                "greedy-elastic+rigid",
                "edf",
            ],
            points,
            None,
        );
        ExperimentOutput {
            name: "fig6".into(),
            markdown: table.to_markdown(),
            csv: table.to_csv(),
        }
    }

    /// Figure 7: heterogeneity ablation at load 0.9.
    pub fn fig7(&self) -> ExperimentOutput {
        self.registered_agent("drl");
        self.registered_agent("drl-class-blind");
        let table = self.sweep(
            "fig7",
            "Heterogeneity ablation: class-aware vs class-blind state/action (load 0.9)",
            "load",
            &["drl", "drl-class-blind", "edf", "least-loaded"],
            vec![(0.9, self.workload_at(0.9))],
            None,
        );
        ExperimentOutput {
            name: "fig7".into(),
            markdown: table.to_markdown(),
            csv: table.to_csv(),
        }
    }

    /// Figure 8: sensitivity to deadline tightness (slack factor sweep).
    pub fn fig8(&self) -> ExperimentOutput {
        self.registered_agent("drl");
        let slacks: Vec<f64> = if self.quick {
            vec![1.2, 2.0, 3.0]
        } else {
            tcrm_workload::sweep::default_slack_grid()
        };
        let base = self
            .workload
            .clone()
            .with_num_jobs(self.eval_jobs())
            .with_load(0.9);
        let table = self.sweep(
            "fig8",
            "Sensitivity to deadline tightness (slack factor, load 0.9)",
            "slack",
            &["drl", "edf", "greedy-elastic", "fifo"],
            slack_sweep(&base, &slacks),
            None,
        );
        ExperimentOutput {
            name: "fig8".into(),
            markdown: table.to_markdown(),
            csv: table.to_csv(),
        }
    }

    /// Figure 9: reward-shaping ablation at load 0.9.
    pub fn fig9(&self) -> ExperimentOutput {
        self.registered_agent("drl");
        self.registered_agent("drl-reward-miss");
        self.registered_agent("drl-reward-slowdown");
        let table = self.sweep(
            "fig9",
            "Reward-shaping ablation (utility vs miss-penalty vs slowdown, load 0.9)",
            "load",
            &["drl", "drl-reward-miss", "drl-reward-slowdown", "edf"],
            vec![(0.9, self.workload_at(0.9))],
            None,
        );
        ExperimentOutput {
            name: "fig9".into(),
            markdown: table.to_markdown(),
            csv: table.to_csv(),
        }
    }

    /// Figure 11: learner ablation — the same scheduling MDP trained with
    /// A2C (the default), PPO and REINFORCE, evaluated at moderate load and
    /// compared on both final policy quality and training convergence.
    pub fn fig11(&self) -> ExperimentOutput {
        let variants = [
            ("a2c", "drl"),
            ("ppo", "drl-ppo"),
            ("reinforce", "drl-reinforce"),
        ];
        let load = self
            .load_grid()
            .iter()
            .cloned()
            .min_by(|a, b| (a - 0.9).abs().partial_cmp(&(b - 0.9).abs()).unwrap())
            .unwrap();
        let points = vec![(load, self.workload_at(load))];

        // Evaluation table.
        let mut policies: Vec<&str> = Vec::new();
        for (_, key) in variants {
            self.registered_agent(key);
            policies.push(key);
        }
        policies.push("edf");
        let table = self.sweep(
            "fig11",
            &format!("Learner ablation (A2C vs PPO vs REINFORCE) at load {load}"),
            "load",
            &policies,
            points,
            None,
        );

        // Convergence appendix: final/best training return per learner.
        let mut md = table.to_markdown();
        md.push_str("\n| learner | final mean return (last 5 iters) | best iteration return | iterations |\n|---|---|---|---|\n");
        let mut csv = table.to_csv();
        csv.push_str("\nlearner,final_mean_return,best_return,iterations\n");
        for (label, key) in variants {
            let (_, history) = self.agent(key);
            md.push_str(&format!(
                "| {} | {:.2} | {:.2} | {} |\n",
                label,
                history.final_mean_return(5),
                history.best_mean_return(),
                history.iterations.len()
            ));
            csv.push_str(&format!(
                "{},{:.4},{:.4},{}\n",
                label,
                history.final_mean_return(5),
                history.best_mean_return(),
                history.iterations.len()
            ));
        }
        ExperimentOutput {
            name: "fig11".into(),
            markdown: md,
            csv,
        }
    }

    /// A derived summary of the headline comparisons (who wins where).
    pub fn summary(&self) -> ExperimentOutput {
        let grid = self.main_grid();
        let mut md = String::from("### summary — Headline comparisons\n\n");
        let mut csv = String::from(
            "load,best_scheduler,best_miss_rate,drl_miss_rate,edf_miss_rate,fifo_miss_rate\n",
        );
        for load in self.load_grid() {
            let at_load: Vec<_> = grid
                .aggregates()
                .into_iter()
                .filter(|a| (a.parameter - load).abs() < 1e-9)
                .collect();
            if at_load.is_empty() {
                continue;
            }
            let best = at_load
                .iter()
                .min_by(|a, b| a.miss_rate.partial_cmp(&b.miss_rate).unwrap())
                .unwrap();
            let get = |name: &str| {
                at_load
                    .iter()
                    .find(|a| a.scheduler == name)
                    .map(|a| a.miss_rate)
                    .unwrap_or(f64::NAN)
            };
            md.push_str(&format!(
                "* load {:.2}: best = **{}** ({:.1}% miss); drl {:.1}%, edf {:.1}%, fifo {:.1}%\n",
                load,
                best.scheduler,
                best.miss_rate * 100.0,
                get("drl") * 100.0,
                get("edf") * 100.0,
                get("fifo") * 100.0
            ));
            csv.push_str(&format!(
                "{:.2},{},{:.4},{:.4},{:.4},{:.4}\n",
                load,
                best.scheduler,
                best.miss_rate,
                get("drl"),
                get("edf"),
                get("fifo")
            ));
        }
        ExperimentOutput {
            name: "summary".into(),
            markdown: md,
            csv,
        }
    }

    /// Run one experiment by id.
    pub fn run(&self, name: &str) -> Option<ExperimentOutput> {
        match name {
            "table1" => Some(self.table1()),
            "table2" => Some(self.table2()),
            "table3" => Some(self.table3()),
            "table4" => Some(self.table4()),
            "table5" => Some(self.table5()),
            "fig2" => Some(self.fig2()),
            "fig3" => Some(self.fig3()),
            "fig4" => Some(self.fig4()),
            "fig5" => Some(self.fig5()),
            "fig6" => Some(self.fig6()),
            "fig7" => Some(self.fig7()),
            "fig8" => Some(self.fig8()),
            "fig9" => Some(self.fig9()),
            "fig10" => Some(self.fig10()),
            "fig11" => Some(self.fig11()),
            "summary" => Some(self.summary()),
            _ => None,
        }
    }

    /// Convenience: the mix of job classes in the workload (used by tests).
    pub fn job_classes(&self) -> Vec<JobClass> {
        self.workload.classes.iter().map(|c| c.class).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A micro lab that keeps every experiment to a couple of seconds: tiny
    /// cluster-level knobs are not exposed, so we shrink via the quick flag
    /// plus very small overrides on the private fields through `Lab::new`.
    fn micro_lab(dir: &str) -> Lab {
        let out = std::env::temp_dir().join("tcrm-bench-tests").join(dir);
        let mut lab = Lab::new(true, out);
        // Shrink further for unit tests.
        lab.workload = lab.workload.with_num_jobs(40);
        lab
    }

    #[test]
    fn table1_is_static_and_lists_all_classes() {
        let lab = micro_lab("table1");
        let out = lab.table1();
        assert!(out.markdown.contains("cpu-heavy"));
        assert!(out.markdown.contains("ml-train"));
        assert_eq!(out.csv.lines().count(), 1 + 4 + 1 + 4);
        assert_eq!(lab.job_classes().len(), 4);
    }

    #[test]
    fn experiment_ids_resolve() {
        let lab = micro_lab("ids");
        assert!(lab.run("does-not-exist").is_none());
        for id in ALL_EXPERIMENTS {
            // Only check the cheap static ones here; the expensive ones are
            // exercised by the integration tests and the expdriver.
            if id == "table1" {
                assert!(lab.run(id).is_some());
            }
        }
    }
}
