//! # tcrm-bench — experiment harness and benchmark suite
//!
//! Regenerates every table and figure of the (reconstructed) evaluation:
//!
//! * [`policy`] — the composable policy registry: [`PolicyFactory`] entries
//!   (baselines, DRL agents, ad-hoc policies) resolved and composed with
//!   adapters through spec strings like `"edf+rigid"`;
//! * [`runner`] — the builder-style [`EvalSession`]: one flattened,
//!   work-stealing `(policy × workload × seed)` sweep with per-worker
//!   scratch reuse, streaming progress and versioned-JSON checkpoints;
//! * [`results`] — row/aggregate types plus CSV, markdown and versioned
//!   JSON emitters;
//! * [`experiments`] — one function per table/figure (`table1` … `fig11`),
//!   exactly as indexed in `DESIGN.md` and `EXPERIMENTS.md`;
//! * the `expdriver` binary — `cargo run -p tcrm-bench --release --bin
//!   expdriver -- <experiment|all> [--quick]`;
//! * Criterion benches (`benches/`) — engine throughput, per-scheduler
//!   decision latency vs cluster size, network forward/backward cost,
//!   training-update cost, workload-generation throughput and the
//!   flattened-vs-per-point sweep comparison.

pub mod cli;
pub mod experiments;
pub mod mproc;
pub mod policy;
pub mod results;
pub mod runner;

pub use policy::{AdapterSpec, PolicyError, PolicyFactory, PolicyRegistry, PolicySpec};
pub use results::{Aggregate, ResultRow, ResultTable, DEFAULT_SCENARIO, RESULT_SCHEMA_VERSION};
pub use runner::{EvalReport, EvalSession, ProgressCallback, SweepPlan, SweepScratch};
