//! # tcrm-bench — experiment harness and benchmark suite
//!
//! Regenerates every table and figure of the (reconstructed) evaluation:
//!
//! * [`runner`] — run `(scheduler × workload × seed)` grids in parallel and
//!   aggregate the summaries;
//! * [`results`] — row/aggregate types plus CSV and markdown emitters;
//! * [`experiments`] — one function per table/figure (`table1` … `fig9`),
//!   exactly as indexed in `DESIGN.md` and `EXPERIMENTS.md`;
//! * the `expdriver` binary — `cargo run -p tcrm-bench --release --bin
//!   expdriver -- <experiment|all> [--quick]`;
//! * Criterion benches (`benches/`) — engine throughput, per-scheduler
//!   decision latency vs cluster size, network forward/backward cost,
//!   training-update cost and workload-generation throughput.

pub mod experiments;
pub mod results;
pub mod runner;

pub use results::{Aggregate, ResultRow, ResultTable};
pub use runner::{evaluate, evaluate_grid, EvalConfig, SchedulerSpec};
