//! Experiment driver: regenerates the tables and figures of the evaluation.
//!
//! ```text
//! cargo run -p tcrm-bench --release --bin expdriver -- all --quick
//! cargo run -p tcrm-bench --release --bin expdriver -- table2 fig3 --out results
//! cargo run -p tcrm-bench --release --bin expdriver -- fig6 --full
//! ```
//!
//! `--quick` (default) trains small agents and uses small workloads so the
//! whole suite finishes in minutes; `--full` runs the paper-scale
//! configuration. Outputs are written as `<out>/<experiment>.{md,csv}` and a
//! combined `REPORT.md`.

use std::env;
use std::path::PathBuf;
use tcrm_bench::experiments::{ExperimentOutput, Lab, ALL_EXPERIMENTS};

fn usage() -> ! {
    eprintln!(
        "usage: expdriver <experiment ...|all> [--quick|--full] [--out <dir>]\n  experiments: {}",
        ALL_EXPERIMENTS.join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut quick = true;
    let mut out_dir = PathBuf::from("results");
    let mut experiments: Vec<String> = Vec::new();
    let mut iter = args.into_iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--full" => quick = false,
            "--out" => {
                out_dir = PathBuf::from(iter.next().unwrap_or_else(|| usage()));
            }
            "all" => experiments.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() {
        usage();
    }
    experiments.dedup();

    let mut lab = Lab::new(quick, &out_dir);
    // Stream sweep progress and resume statistics to stderr: interrupted
    // runs pick their shared grids back up from `<out>/main-grid-*.json`.
    lab.verbose = true;
    let lab = lab;
    println!(
        "# TCRM experiment driver — mode: {}, output: {}",
        if quick { "quick" } else { "full" },
        out_dir.display()
    );

    let mut report = String::from("# TCRM evaluation report\n\n");
    report.push_str(&format!(
        "Mode: **{}**. Regenerate with `cargo run -p tcrm-bench --release --bin expdriver -- all {}`.\n\n",
        if quick { "quick" } else { "full" },
        if quick { "--quick" } else { "--full" }
    ));

    let mut ran: Vec<ExperimentOutput> = Vec::new();
    for name in &experiments {
        let started = std::time::Instant::now();
        match lab.run(name) {
            Some(output) => {
                println!(
                    "== {} (done in {:.1}s) ==",
                    name,
                    started.elapsed().as_secs_f64()
                );
                println!("{}", output.markdown);
                if let Err(e) = output.write_to(&out_dir) {
                    eprintln!("warning: could not write {name}: {e}");
                }
                report.push_str(&output.markdown);
                report.push('\n');
                ran.push(output);
            }
            None => {
                eprintln!("unknown experiment '{name}' — skipping");
            }
        }
    }

    if let Err(e) = std::fs::create_dir_all(&out_dir)
        .and_then(|_| std::fs::write(out_dir.join("REPORT.md"), &report))
    {
        eprintln!("warning: could not write REPORT.md: {e}");
    }
    println!(
        "Wrote {} experiment outputs to {}",
        ran.len(),
        out_dir.display()
    );
}
